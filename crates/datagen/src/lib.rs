#![forbid(unsafe_code)]
//! # jocl-datagen
//!
//! Synthetic benchmark generator for the JOCL reproduction.
//!
//! The paper evaluates on **ReVerb45K** (ClueWeb09 extractions annotated
//! against Freebase) and **NYTimes2018** (Stanford OIE over NYT articles)
//! — neither is redistributable offline. Following the reproduction's
//! substitution rule, this crate builds a *generative world model* that
//! produces datasets with the same structural challenges:
//!
//! * entities with **ambiguous aliases** — initialisms ("University of
//!   Maryland" → "UM", colliding with "University of Michigan"), head-word
//!   drops ("Maryland"), abbreviations and typos;
//! * relations with **paraphrase sets** and surface variation (tense,
//!   auxiliaries, inserted modifiers: "be a member of" vs "was an early
//!   member of");
//! * a CKB with facts, **anchor popularity** statistics and entity types;
//! * OIE triples sampled from facts with Zipf-distributed entity
//!   popularity and controlled **out-of-KB** (NIL) rates;
//! * the auxiliary resources the paper's signals consume: a synthetic
//!   **PPDB**, **PATTY-style synsets**, a **training corpus** for the SGNS
//!   embeddings, and SIST-style **side information**;
//! * complete **gold labels**: NP/RP canonicalization clusters and
//!   entity/relation links.
//!
//! Presets: [`reverb45k_like`] and [`nytimes2018_like`] mirror the two
//! benchmark regimes (annotated vs unannotated, low vs high OOV rate);
//! both accept a `scale` so CI-speed runs and paper-scale runs share one
//! code path.

pub mod dataset;
pub mod options;
pub mod words;
pub mod world;

pub use dataset::{nytimes2018_like, reverb45k_like, stress_like, Dataset, Gold};
pub use options::WorldOptions;
pub use world::World;
