//! The generative world: entities, relations, facts.
//!
//! Entities come in three kinds with kind-specific alias grammars chosen
//! to reproduce the ambiguity patterns the paper motivates with the
//! "University of Maryland / UMD / Maryland" example (Figure 1a):
//!
//! * **places** — a single name word;
//! * **persons** — "First Last" plus the ambiguous "Last" and "F. Last";
//! * **organizations** — "University of ⟨Place⟩"-style templates whose
//!   aliases include the **initialism** (colliding across organizations
//!   sharing initial letters) and the **head-word drop** (colliding with
//!   the place itself).
//!
//! Relations are verb templates with synonym sets (the paraphrase
//! structure behind `Sim_AMIE`/`Sim_PPDB`) and type signatures; facts are
//! sampled respecting the signatures with Zipf-distributed entity
//! popularity. A configurable fraction of *shadow* entities exists only in
//! the world (not the CKB), producing out-of-KB mentions.

use crate::options::WorldOptions;
use crate::words::{capitalize, typo, WordPool, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Entity kind (drives alias grammar and relation signatures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityKind {
    /// A person ("First Last").
    Person,
    /// An organization (templated name).
    Organization,
    /// A place (single word).
    Place,
}

/// One world entity (CKB or shadow).
#[derive(Debug, Clone)]
pub struct WorldEntity {
    /// Kind.
    pub kind: EntityKind,
    /// Canonical lowercase name.
    pub name: String,
    /// Surface aliases (title case, first = canonical rendering).
    pub aliases: Vec<String>,
    /// Type labels (used by SIST side information).
    pub types: Vec<String>,
    /// Whether the entity exists in the CKB (false = shadow / NIL).
    pub in_ckb: bool,
}

/// Relation surface-template family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemplateKind {
    /// "⟨verb⟩ ⟨prep⟩" — e.g. "locate in" (renders "locates in",
    /// "was located in", …).
    VerbPrep,
    /// "be a ⟨noun⟩ ⟨prep⟩" — e.g. "be a member of" (renders "is a member
    /// of", "was an early member of", …).
    BeNounPrep,
}

/// One world relation.
#[derive(Debug, Clone)]
pub struct WorldRelation {
    /// Template family.
    pub kind: TemplateKind,
    /// Synonym word stems (paraphrases of each other).
    pub words: Vec<String>,
    /// Preposition.
    pub prep: &'static str,
    /// KBP-style category index.
    pub category: usize,
    /// Subject entity kind.
    pub subject_kind: EntityKind,
    /// Object entity kind.
    pub object_kind: EntityKind,
}

impl WorldRelation {
    /// Canonical relation name (for the CKB record).
    pub fn canonical_name(&self) -> String {
        format!("{}_{}", self.words[0], self.prep)
    }

    /// Base (uninflected) surface form for synonym `w`.
    pub fn base_surface(&self, w: &str) -> String {
        match self.kind {
            TemplateKind::VerbPrep => format!("{w} {}", self.prep),
            TemplateKind::BeNounPrep => format!("be a {w} {}", self.prep),
        }
    }

    /// All base surface forms.
    pub fn surface_forms(&self) -> Vec<String> {
        self.words.iter().map(|w| self.base_surface(w)).collect()
    }
}

/// One world fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorldFact {
    /// Subject world-entity index.
    pub subject: usize,
    /// Relation index.
    pub relation: usize,
    /// Object world-entity index.
    pub object: usize,
}

/// The generated world.
#[derive(Debug, Clone)]
pub struct World {
    /// Entities; the first [`World::num_ckb_entities`] are in the CKB,
    /// the rest are shadows.
    pub entities: Vec<WorldEntity>,
    /// Relations (all in the CKB).
    pub relations: Vec<WorldRelation>,
    /// Facts among CKB entities.
    pub facts: Vec<WorldFact>,
    /// Shadow facts (subject is a shadow entity).
    pub shadow_facts: Vec<WorldFact>,
    /// Popularity sampler over CKB entities (index = entity).
    pub zipf: Zipf,
    num_ckb: usize,
}

const PREPS: &[&str] = &["of", "in", "at", "with", "for", "by"];
const SIGNATURES: &[(EntityKind, EntityKind)] = &[
    (EntityKind::Organization, EntityKind::Place),
    (EntityKind::Person, EntityKind::Organization),
    (EntityKind::Organization, EntityKind::Organization),
    (EntityKind::Person, EntityKind::Place),
    (EntityKind::Place, EntityKind::Place),
    (EntityKind::Person, EntityKind::Person),
];
const ORG_TEMPLATES: &[(&str, &str)] = &[
    ("university of", "university"),
    ("institute of", "institute"),
    ("college of", "college"),
    ("bank of", "bank"),
];
const ORG_SUFFIX_TEMPLATES: &[(&str, &str)] =
    &[("corporation", "company"), ("society", "organization"), ("group", "company")];

impl World {
    /// Number of CKB entities (prefix of [`World::entities`]).
    pub fn num_ckb_entities(&self) -> usize {
        self.num_ckb
    }

    /// Is world entity `i` a CKB entity?
    pub fn is_ckb(&self, i: usize) -> bool {
        i < self.num_ckb
    }

    /// Generate a world from options.
    pub fn generate(opts: &WorldOptions) -> World {
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let num_shadow = ((opts.num_entities as f64 * opts.oov_rate).ceil() as usize).max(1);
        let total_entities = opts.num_entities + num_shadow;
        let pool = WordPool::generate(&mut rng, total_entities * 2 + opts.num_relations * 3 + 64);
        let mut next_word = 0usize;
        let take_word = |n: &mut usize| -> String {
            let w = pool.get(*n).to_string();
            *n += 1;
            w
        };

        // --- entities ---------------------------------------------------
        let num_places = (total_entities / 4).max(1);
        let num_orgs = (total_entities * 2 / 5).max(1);
        let mut entities: Vec<WorldEntity> = Vec::with_capacity(total_entities);
        let mut place_words: Vec<String> = Vec::with_capacity(num_places);
        for _ in 0..num_places {
            let w = take_word(&mut next_word);
            place_words.push(w.clone());
            entities.push(WorldEntity {
                kind: EntityKind::Place,
                name: w.clone(),
                aliases: vec![capitalize(&w)],
                types: vec!["place".into()],
                in_ckb: true,
            });
        }
        for i in 0..num_orgs {
            let use_prefix = rng.gen_bool(0.6);
            let (name, mut aliases, type_label) = if use_prefix {
                let (tpl, type_label) = ORG_TEMPLATES[rng.gen_range(0..ORG_TEMPLATES.len())];
                // Reference an existing place word 70% of the time to
                // create head-drop ambiguity with the place entity.
                let place = if rng.gen_bool(0.7) && !place_words.is_empty() {
                    place_words[rng.gen_range(0..place_words.len())].clone()
                } else {
                    take_word(&mut next_word)
                };
                let name = format!("{tpl} {place}");
                let full = title_case(&name);
                // Initialism: first letters of content tokens, e.g.
                // "University of Maryland" → "UM".
                let initialism: String = name
                    .split(' ')
                    .filter(|t| !jocl_text::stopwords::is_stopword(t))
                    .filter_map(|t| t.chars().next())
                    .map(|c| c.to_ascii_uppercase())
                    .collect();
                let mut aliases = vec![full, initialism];
                if rng.gen_bool(0.4) {
                    // Head-word drop: "University of Maryland" → "Maryland".
                    aliases.push(capitalize(&place));
                }
                (name, aliases, type_label)
            } else {
                let (suffix, type_label) =
                    ORG_SUFFIX_TEMPLATES[rng.gen_range(0..ORG_SUFFIX_TEMPLATES.len())];
                let w = take_word(&mut next_word);
                let name = format!("{w} {suffix}");
                let full = title_case(&name);
                let abbrev =
                    format!("{} {}", capitalize(&w), capitalize(&suffix[..4.min(suffix.len())]));
                let aliases = vec![full, abbrev, capitalize(&w)];
                (name, aliases, type_label)
            };
            aliases.dedup();
            let _ = i;
            entities.push(WorldEntity {
                kind: EntityKind::Organization,
                name,
                aliases,
                types: vec!["organization".into(), type_label.into()],
                in_ckb: true,
            });
        }
        let mut family_names: Vec<String> = Vec::new();
        while entities.len() < total_entities {
            let first = take_word(&mut next_word);
            // Families: some persons share a last name, so the bare
            // "Last" alias is genuinely ambiguous.
            let last = if !family_names.is_empty() && rng.gen_bool(0.3) {
                family_names[rng.gen_range(0..family_names.len())].clone()
            } else {
                let w = take_word(&mut next_word);
                family_names.push(w.clone());
                w
            };
            let full = format!("{} {}", capitalize(&first), capitalize(&last));
            let initial = format!(
                "{}. {}",
                first.chars().next().expect("nonempty").to_ascii_uppercase(),
                capitalize(&last)
            );
            entities.push(WorldEntity {
                kind: EntityKind::Person,
                name: format!("{first} {last}"),
                aliases: vec![full, capitalize(&last), initial],
                types: vec!["person".into()],
                in_ckb: true,
            });
        }
        // Shuffle-free shadow designation: mark the last `num_shadow`
        // entities of each kind region proportionally; simplest is to mark
        // a deterministic random subset.
        let mut shadow_left = num_shadow;
        let mut order: Vec<usize> = (0..entities.len()).collect();
        // Fisher-Yates with the world RNG for determinism.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for &i in &order {
            if shadow_left == 0 {
                break;
            }
            entities[i].in_ckb = false;
            shadow_left -= 1;
        }
        // Re-partition: CKB entities first, shadows last (stable).
        let mut ckb_entities: Vec<WorldEntity> = Vec::with_capacity(total_entities);
        let mut shadow_entities: Vec<WorldEntity> = Vec::new();
        for e in entities {
            if e.in_ckb {
                ckb_entities.push(e);
            } else {
                shadow_entities.push(e);
            }
        }
        let num_ckb = ckb_entities.len();
        ckb_entities.extend(shadow_entities);
        let entities = ckb_entities;

        // --- relations ---------------------------------------------------
        let mut relations = Vec::with_capacity(opts.num_relations);
        for r in 0..opts.num_relations {
            let num_synonyms = rng.gen_range(2..=4);
            let words: Vec<String> = (0..num_synonyms).map(|_| take_word(&mut next_word)).collect();
            let kind =
                if rng.gen_bool(0.5) { TemplateKind::VerbPrep } else { TemplateKind::BeNounPrep };
            let (subject_kind, object_kind) = SIGNATURES[rng.gen_range(0..SIGNATURES.len())];
            relations.push(WorldRelation {
                kind,
                words,
                prep: PREPS[rng.gen_range(0..PREPS.len())],
                category: r % opts.num_categories,
                subject_kind,
                object_kind,
            });
        }

        // --- facts --------------------------------------------------------
        let zipf = Zipf::new(num_ckb.max(1), opts.zipf_exponent);
        let by_kind = |es: &[WorldEntity], kind: EntityKind, ckb_only: bool| -> Vec<usize> {
            es.iter()
                .enumerate()
                .filter(|(i, e)| e.kind == kind && (!ckb_only || *i < num_ckb))
                .map(|(i, _)| i)
                .collect()
        };
        let kind_pools_ckb: Vec<(EntityKind, Vec<usize>)> =
            [EntityKind::Person, EntityKind::Organization, EntityKind::Place]
                .into_iter()
                .map(|k| (k, by_kind(&entities, k, true)))
                .collect();
        let pool_of = |k: EntityKind, pools: &[(EntityKind, Vec<usize>)]| -> Vec<usize> {
            pools.iter().find(|(kk, _)| *kk == k).map(|(_, v)| v.clone()).unwrap_or_default()
        };
        let mut facts = Vec::with_capacity(opts.num_facts);
        let mut seen = std::collections::HashSet::new();
        let mut attempts = 0usize;
        while facts.len() < opts.num_facts && attempts < opts.num_facts * 20 {
            attempts += 1;
            let r = rng.gen_range(0..relations.len());
            let spool = pool_of(relations[r].subject_kind, &kind_pools_ckb);
            let opool = pool_of(relations[r].object_kind, &kind_pools_ckb);
            if spool.is_empty() || opool.is_empty() {
                continue;
            }
            // Zipf-weighted pick within the kind pool.
            let s = spool[zipf_pick(&mut rng, &zipf, spool.len())];
            let o = opool[zipf_pick(&mut rng, &zipf, opool.len())];
            if s == o || !seen.insert((s, r, o)) {
                continue;
            }
            facts.push(WorldFact { subject: s, relation: r, object: o });
        }

        // Shadow facts: shadow subject, real relation + object.
        let shadows: Vec<usize> = (num_ckb..entities.len()).collect();
        let mut shadow_facts = Vec::new();
        if !shadows.is_empty() {
            let n_shadow_facts = ((opts.num_facts as f64 * opts.oov_rate).ceil() as usize).max(1);
            for _ in 0..n_shadow_facts {
                let r = rng.gen_range(0..relations.len());
                let opool = pool_of(relations[r].object_kind, &kind_pools_ckb);
                if opool.is_empty() {
                    continue;
                }
                let s = shadows[rng.gen_range(0..shadows.len())];
                let o = opool[zipf_pick(&mut rng, &zipf, opool.len())];
                shadow_facts.push(WorldFact { subject: s, relation: r, object: o });
            }
        }

        World { entities, relations, facts, shadow_facts, zipf, num_ckb }
    }

    /// Render a surface mention of entity `i` (alias choice + noise).
    pub fn render_np(&self, rng: &mut StdRng, i: usize, opts: &WorldOptions) -> String {
        let e = &self.entities[i];
        // Canonical rendering is most frequent; other aliases split the
        // rest (real OIE corpora are full of abbreviated/ambiguous
        // mentions, which is what makes the task hard).
        let alias = if e.aliases.len() == 1 || rng.gen_bool(0.35) {
            &e.aliases[0]
        } else {
            &e.aliases[1 + rng.gen_range(0..e.aliases.len() - 1)]
        };
        let mut s = alias.clone();
        if rng.gen_bool(opts.determiner_rate) && e.kind != EntityKind::Person {
            s = format!("the {s}");
        }
        if rng.gen_bool(opts.typo_rate) {
            // Typo one random token.
            let mut tokens: Vec<String> = s.split(' ').map(str::to_string).collect();
            let ti = rng.gen_range(0..tokens.len());
            tokens[ti] = typo(rng, &tokens[ti]);
            s = tokens.join(" ");
        }
        s
    }

    /// Render a surface mention of relation `r`.
    pub fn render_rp(&self, rng: &mut StdRng, r: usize, opts: &WorldOptions) -> String {
        let rel = &self.relations[r];
        let w = &rel.words[rng.gen_range(0..rel.words.len())];
        let modifier = if rng.gen_bool(opts.modifier_rate) { Some("early") } else { None };
        match rel.kind {
            TemplateKind::VerbPrep => {
                let form = match rng.gen_range(0..5) {
                    0 => format!("{w} {}", rel.prep),
                    1 => format!("{w}s {}", rel.prep),
                    2 => format!("{w}ed {}", rel.prep),
                    3 => format!("is {w}ed {}", rel.prep),
                    _ => format!("was {w}ed {}", rel.prep),
                };
                match modifier {
                    Some(m) => format!("{m} {form}"),
                    None => form,
                }
            }
            TemplateKind::BeNounPrep => {
                let aux = ["be", "is", "was", "are"][rng.gen_range(0..4)];
                match modifier {
                    Some(m) => format!("{aux} an {m} {w} {}", rel.prep),
                    None => format!("{aux} a {w} {}", rel.prep),
                }
            }
        }
    }
}

fn zipf_pick(rng: &mut StdRng, zipf: &Zipf, pool_len: usize) -> usize {
    // Re-sample the global Zipf until the rank fits the pool; bounded
    // retries keep it cheap, falling back to uniform.
    for _ in 0..8 {
        let r = zipf.sample(rng);
        if r < pool_len {
            return r;
        }
    }
    rng.gen_range(0..pool_len)
}

fn title_case(s: &str) -> String {
    s.split(' ')
        .map(|t| if jocl_text::stopwords::is_stopword(t) { t.to_string() } else { capitalize(t) })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> (World, WorldOptions) {
        let opts = WorldOptions::tiny(42);
        (World::generate(&opts), opts)
    }

    #[test]
    fn generation_is_deterministic() {
        let (w1, _) = world();
        let (w2, _) = world();
        assert_eq!(w1.entities.len(), w2.entities.len());
        assert_eq!(w1.facts, w2.facts);
        for (a, b) in w1.entities.iter().zip(&w2.entities) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.aliases, b.aliases);
        }
    }

    #[test]
    fn ckb_prefix_invariant() {
        let (w, _) = world();
        for (i, e) in w.entities.iter().enumerate() {
            assert_eq!(e.in_ckb, i < w.num_ckb_entities());
        }
        assert!(w.num_ckb_entities() >= 30, "shadows come on top of CKB size");
    }

    #[test]
    fn facts_respect_signatures() {
        let (w, _) = world();
        assert!(!w.facts.is_empty());
        for f in &w.facts {
            let rel = &w.relations[f.relation];
            assert_eq!(w.entities[f.subject].kind, rel.subject_kind);
            assert_eq!(w.entities[f.object].kind, rel.object_kind);
            assert!(w.is_ckb(f.subject) && w.is_ckb(f.object));
        }
    }

    #[test]
    fn shadow_facts_have_shadow_subjects() {
        let (w, _) = world();
        for f in &w.shadow_facts {
            assert!(!w.is_ckb(f.subject));
            assert!(w.is_ckb(f.object));
        }
    }

    #[test]
    fn every_entity_has_aliases() {
        let (w, _) = world();
        for e in &w.entities {
            assert!(!e.aliases.is_empty(), "{}", e.name);
            assert!(!e.types.is_empty());
        }
    }

    #[test]
    fn organizations_have_ambiguous_aliases() {
        let (w, _) = world();
        let orgs: Vec<&WorldEntity> =
            w.entities.iter().filter(|e| e.kind == EntityKind::Organization).collect();
        assert!(!orgs.is_empty());
        // At least one org should carry a short (initialism/abbrev) alias.
        assert!(
            orgs.iter().any(|e| e.aliases.iter().any(|a| a.len() <= 4)),
            "expected initialism aliases"
        );
    }

    #[test]
    fn np_rendering_produces_variants() {
        let (w, opts) = world();
        let mut rng = StdRng::seed_from_u64(5);
        let org = (0..w.entities.len())
            .find(|&i| {
                w.entities[i].kind == EntityKind::Organization && w.entities[i].aliases.len() > 1
            })
            .expect("an org with aliases");
        let variants: std::collections::HashSet<String> =
            (0..100).map(|_| w.render_np(&mut rng, org, &opts)).collect();
        assert!(variants.len() > 1, "rendering should vary: {variants:?}");
    }

    #[test]
    fn rp_rendering_stays_in_paraphrase_set() {
        let (w, opts) = world();
        let mut rng = StdRng::seed_from_u64(6);
        for r in 0..w.relations.len() {
            for _ in 0..20 {
                let s = w.render_rp(&mut rng, r, &opts);
                // The rendered form must contain one of the relation's
                // synonym stems.
                assert!(
                    w.relations[r].words.iter().any(|w2| s.contains(w2.as_str())),
                    "{s} should use a synonym of relation {r}"
                );
            }
        }
    }

    #[test]
    fn surface_forms_cover_synonyms() {
        let (w, _) = world();
        for rel in &w.relations {
            assert_eq!(rel.surface_forms().len(), rel.words.len());
        }
    }
}
