//! Generator configuration.

/// All knobs of the synthetic world. The two dataset presets
/// ([`crate::reverb45k_like`], [`crate::nytimes2018_like`]) are just
/// different option sets.
#[derive(Debug, Clone)]
pub struct WorldOptions {
    /// RNG seed — everything downstream is deterministic in it.
    pub seed: u64,
    /// Number of CKB entities.
    pub num_entities: usize,
    /// Number of CKB relations.
    pub num_relations: usize,
    /// Number of CKB facts.
    pub num_facts: usize,
    /// Number of OIE triples to render.
    pub num_triples: usize,
    /// Zipf exponent for entity popularity (higher = heavier head).
    pub zipf_exponent: f64,
    /// Probability that a rendered NP mention carries a typo.
    pub typo_rate: f64,
    /// Probability that a rendered NP mention gains a determiner.
    pub determiner_rate: f64,
    /// Probability that a rendered RP mention gains a spurious modifier.
    pub modifier_rate: f64,
    /// Fraction of triples about out-of-KB (NIL) entities.
    pub oov_rate: f64,
    /// Probability that an alias also accumulates anchor counts for a
    /// *wrong* entity (Wikipedia anchors are noisy: surface forms point
    /// to many targets). Higher = harder independent linking.
    pub anchor_noise: f64,
    /// Probability that a non-canonical alias is *missing* from the CKB
    /// alias dictionary (real CKBs have incomplete alias coverage; text
    /// keeps using the alias anyway). This is the main linking-difficulty
    /// knob: mentions rendered with a missing alias cannot be resolved by
    /// dictionary lookup or popularity.
    pub ckb_alias_gap: f64,
    /// Fraction of world facts actually recorded in the CKB (CKBs are
    /// incomplete — that is why OKB integration matters). Triples are
    /// extracted from the full world, so `1 - fact_coverage` of them have
    /// no supporting CKB fact.
    pub fact_coverage: f64,
    /// Fraction of phrases the synthetic PPDB covers.
    pub ppdb_recall: f64,
    /// Fraction of PPDB entries assigned to a *wrong* group (noise).
    pub ppdb_noise: f64,
    /// Sentences emitted per fact for the embedding corpus.
    pub corpus_sentences_per_fact: usize,
    /// Number of relation categories (KBP); relations share categories,
    /// so fewer categories = noisier `f_KBP`.
    pub num_categories: usize,
    /// Number of distractor entities in SIST-style side information.
    pub side_info_confusers: usize,
}

impl WorldOptions {
    /// A tiny world for unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            num_entities: 30,
            num_relations: 8,
            num_facts: 60,
            num_triples: 120,
            zipf_exponent: 1.0,
            typo_rate: 0.03,
            determiner_rate: 0.1,
            modifier_rate: 0.1,
            oov_rate: 0.05,
            anchor_noise: 0.25,
            ckb_alias_gap: 0.25,
            fact_coverage: 0.7,
            ppdb_recall: 0.7,
            ppdb_noise: 0.02,
            corpus_sentences_per_fact: 3,
            num_categories: 6,
            side_info_confusers: 2,
        }
    }

    /// Scale the counting knobs by `scale` (≥ 0), keeping rates fixed.
    pub fn scaled(mut self, scale: f64) -> Self {
        let s = scale.max(0.0);
        let apply = |x: usize| ((x as f64 * s).round() as usize).max(1);
        // The relation inventory shrinks slower (sqrt) so small-scale runs
        // keep a meaningful relation-linking search space.
        let apply_sqrt = |x: usize| ((x as f64 * s.sqrt()).round() as usize).max(1);
        self.num_entities = apply(self.num_entities);
        self.num_relations = apply_sqrt(self.num_relations).max(4);
        self.num_facts = apply(self.num_facts);
        self.num_triples = apply(self.num_triples);
        self.num_categories = apply_sqrt(self.num_categories).max(2);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_is_consistent() {
        let o = WorldOptions::tiny(1);
        assert!(o.num_entities > 0 && o.num_triples > 0);
        assert!(o.oov_rate < 1.0);
    }

    #[test]
    fn scaling_scales_counts_not_rates() {
        let o = WorldOptions::tiny(1).scaled(2.0);
        assert_eq!(o.num_entities, 60);
        assert_eq!(o.num_triples, 240);
        // Relations shrink/grow with sqrt(scale).
        assert_eq!(o.num_relations, (8.0f64 * 2.0f64.sqrt()).round() as usize);
        assert_eq!(o.typo_rate, WorldOptions::tiny(1).typo_rate);
    }

    #[test]
    fn scaling_never_hits_zero() {
        let o = WorldOptions::tiny(1).scaled(0.0001);
        assert!(o.num_entities >= 1);
        assert!(o.num_relations >= 4);
        assert!(o.num_categories >= 2);
    }
}
