//! Synthetic word generation.
//!
//! Produces a deterministic pool of pronounceable, pairwise-distinct word
//! stems (syllable concatenation) used as entity-name components and
//! relation verbs. Keeping the lexicon synthetic guarantees no accidental
//! collisions with the English function words the normalizer strips.

use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

const CONSONANTS: &[&str] = &[
    "b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "ch", "sh", "br", "dr",
    "st", "tr",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ia", "ar", "en", "or", "el"];

/// A pool of unique synthetic words.
#[derive(Debug, Clone, Default)]
pub struct WordPool {
    words: Vec<String>,
    seen: HashSet<String>,
}

impl WordPool {
    /// Generate `n` distinct words with 3–4 syllables. Longer words keep
    /// character-level similarities between *different* words realistic
    /// (short syllable soup would make Jaro-Winkler treat everything as a
    /// near-duplicate).
    pub fn generate(rng: &mut StdRng, n: usize) -> Self {
        let mut pool = Self::default();
        while pool.words.len() < n {
            let syllables = rng.gen_range(3..=4);
            let mut w = String::new();
            for _ in 0..syllables {
                w.push_str(CONSONANTS[rng.gen_range(0..CONSONANTS.len())]);
                w.push_str(VOWELS[rng.gen_range(0..VOWELS.len())]);
            }
            if pool.seen.insert(w.clone()) {
                pool.words.push(w);
            }
        }
        pool
    }

    /// The `i`-th word.
    pub fn get(&self, i: usize) -> &str {
        &self.words[i % self.words.len()]
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Slice view.
    pub fn words(&self) -> &[String] {
        &self.words
    }
}

/// Capitalize the first letter (title case for surface realization).
pub fn capitalize(w: &str) -> String {
    let mut chars = w.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Introduce a single character-level typo (swap or drop), deterministic
/// under the RNG. Words shorter than 4 characters are returned unchanged.
pub fn typo(rng: &mut StdRng, w: &str) -> String {
    let chars: Vec<char> = w.chars().collect();
    if chars.len() < 4 {
        return w.to_string();
    }
    let mut out = chars.clone();
    // Avoid mutating the first character so initial-based aliases survive.
    let i = rng.gen_range(1..out.len() - 1);
    if rng.gen_bool(0.5) {
        out.swap(i, i + 1);
    } else {
        out.remove(i);
    }
    out.into_iter().collect()
}

/// Zipf-like rank sampler: returns an index in `0..n` with
/// `P(i) ∝ 1 / (i + 1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        let z = acc;
        for c in &mut cumulative {
            *c /= z;
        }
        Self { cumulative }
    }

    /// Sample a rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        match self.cumulative.binary_search_by(|c| c.partial_cmp(&u).expect("finite")) {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Normalized weight of rank `i` (useful for popularity counts).
    pub fn weight(&self, i: usize) -> f64 {
        if i == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[i] - self.cumulative[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn pool_is_unique_and_sized() {
        let pool = WordPool::generate(&mut rng(), 500);
        assert_eq!(pool.len(), 500);
        let set: HashSet<&String> = pool.words().iter().collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn pool_is_deterministic() {
        let a = WordPool::generate(&mut rng(), 50);
        let b = WordPool::generate(&mut rng(), 50);
        assert_eq!(a.words(), b.words());
    }

    #[test]
    fn words_are_lowercase_alpha() {
        let pool = WordPool::generate(&mut rng(), 100);
        for w in pool.words() {
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
            assert!(w.len() >= 2);
        }
    }

    #[test]
    fn capitalize_basic() {
        assert_eq!(capitalize("maryland"), "Maryland");
        assert_eq!(capitalize(""), "");
    }

    #[test]
    fn typo_changes_long_words_only() {
        let mut r = rng();
        assert_eq!(typo(&mut r, "abc"), "abc");
        let t = typo(&mut r, "maryland");
        assert_ne!(t, "maryland");
        // First char survives.
        assert!(t.starts_with('m'));
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let z = Zipf::new(100, 1.0);
        let mut r = rng();
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[50] * 3, "head {} tail {}", counts[0], counts[50]);
        assert!((0..100).all(|i| z.weight(i) > 0.0));
    }

    #[test]
    fn zipf_weights_sum_to_one() {
        let z = Zipf::new(10, 1.2);
        let total: f64 = (0..10).map(|i| z.weight(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_zero_panics() {
        Zipf::new(0, 1.0);
    }
}
