//! Dataset assembly: world → (CKB, OKB, gold, resources).

use crate::options::WorldOptions;
use crate::words::Zipf;
use crate::world::World;
use jocl_cluster::Clustering;
use jocl_kb::{
    Ckb, CkbRelation, Entity, EntityId, Okb, RelationId, SideInfo, SideKb, Triple, TripleId,
};
use jocl_rules::ParaphraseStore;
use jocl_text::tokenize;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Gold annotations for one dataset.
#[derive(Debug, Clone)]
pub struct Gold {
    /// Per NP mention (dense index): the CKB entity it refers to, or
    /// `None` for out-of-KB mentions.
    pub np_entity: Vec<Option<EntityId>>,
    /// Per RP mention (dense index): the CKB relation.
    pub rp_relation: Vec<Option<RelationId>>,
    /// Per NP mention: gold cluster label (world entity index — includes
    /// shadow entities, so OOV mentions cluster correctly too).
    pub np_cluster_labels: Vec<u32>,
    /// Per RP mention: gold cluster label (world relation index).
    pub rp_cluster_labels: Vec<u32>,
}

impl Gold {
    /// Gold clustering of NP mentions.
    pub fn np_clustering(&self) -> Clustering {
        Clustering::from_labels(&self.np_cluster_labels)
    }

    /// Gold clustering of RP mentions.
    pub fn rp_clustering(&self) -> Clustering {
        Clustering::from_labels(&self.rp_cluster_labels)
    }
}

/// A complete synthetic benchmark: the inputs JOCL and every baseline
/// consume, plus gold labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (for reports).
    pub name: String,
    /// The curated KB.
    pub ckb: Ckb,
    /// The OIE triples.
    pub okb: Okb,
    /// Gold labels.
    pub gold: Gold,
    /// Synthetic PPDB (covers NP aliases and RP base forms, with
    /// configurable recall and noise).
    pub ppdb: ParaphraseStore,
    /// PATTY-style RP synsets (independent coverage draw).
    pub synsets: ParaphraseStore,
    /// Tokenized sentences for embedding training.
    pub corpus: Vec<Vec<String>>,
    /// The underlying world (kept for diagnostics and oracle experiments).
    pub world: World,
}

impl Dataset {
    /// Generate a dataset from options.
    pub fn generate(name: &str, opts: &WorldOptions) -> Dataset {
        let world = World::generate(opts);
        let mut rng = StdRng::seed_from_u64(opts.seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));

        // --- CKB -----------------------------------------------------------
        let mut ckb = Ckb::new();
        for e in &world.entities[..world.num_ckb_entities()] {
            // CKB alias coverage is incomplete: the canonical alias is
            // always known, every other alias is dropped with probability
            // `ckb_alias_gap` (text keeps using it — that is precisely
            // the hard case motivating joint canonicalization+linking).
            let aliases: Vec<String> = e
                .aliases
                .iter()
                .enumerate()
                .filter(|&(ai, _)| ai == 0 || !rng.gen_bool(opts.ckb_alias_gap))
                .map(|(_, a)| a.clone())
                .collect();
            ckb.add_entity(Entity { name: e.name.clone(), aliases, types: e.types.clone() });
        }
        for rel in &world.relations {
            // Like entity aliases, the CKB's surface-form inventory for a
            // relation is incomplete: paraphrases beyond the first are
            // dropped with probability `ckb_alias_gap`. RP mentions using
            // an uncovered paraphrase cannot be linked by string match.
            let surface_forms: Vec<String> = rel
                .surface_forms()
                .into_iter()
                .enumerate()
                .filter(|&(si, _)| si == 0 || !rng.gen_bool(opts.ckb_alias_gap))
                .map(|(_, sf)| sf)
                .collect();
            ckb.add_relation(CkbRelation {
                name: rel.canonical_name(),
                surface_forms,
                category: format!("cat{}", rel.category),
            });
        }
        for f in &world.facts {
            // CKB incompleteness: only `fact_coverage` of true facts are
            // recorded.
            if !rng.gen_bool(opts.fact_coverage) {
                continue;
            }
            ckb.add_fact(
                EntityId(f.subject as u32),
                RelationId(f.relation as u32),
                EntityId(f.object as u32),
            );
        }
        // Anchors: Zipf-weighted per entity, split across aliases
        // (canonical gets half). Ambiguous alias strings naturally split
        // their totals across the entities sharing them.
        for i in 0..world.num_ckb_entities() {
            let aliases = ckb.entity(EntityId(i as u32)).aliases.clone();
            let w = world.zipf.weight(i);
            let total = 5 + (w * world.num_ckb_entities() as f64 * 60.0).round() as u64;
            let others = aliases.len().saturating_sub(1).max(1) as u64;
            for (ai, alias) in aliases.iter().enumerate() {
                let count =
                    if ai == 0 { (total / 2).max(1) } else { (total / (2 * others)).max(1) };
                ckb.add_anchor(alias, EntityId(i as u32), count);
                // Anchor noise: the same surface form also points at a
                // wrong entity some of the time, as real anchors do.
                if rng.gen_bool(opts.anchor_noise) {
                    let wrong = rng.gen_range(0..world.num_ckb_entities());
                    if wrong != i {
                        // Noise magnitude comparable to the true counts so
                        // popularity alone cannot decide.
                        ckb.add_anchor(alias, EntityId(wrong as u32), count.max(2));
                    }
                }
            }
        }

        // --- OKB + gold ------------------------------------------------------
        let mut okb = Okb::new();
        let mut gold = Gold {
            np_entity: Vec::new(),
            rp_relation: Vec::new(),
            np_cluster_labels: Vec::new(),
            rp_cluster_labels: Vec::new(),
        };
        let n_ckb_pool: Vec<usize> = (0..world.num_ckb_entities()).collect();
        let fact_zipf = Zipf::new(world.facts.len().max(1), 0.6);
        for _ in 0..opts.num_triples {
            let use_shadow = !world.shadow_facts.is_empty() && rng.gen_bool(opts.oov_rate);
            let f = if use_shadow {
                world.shadow_facts[rng.gen_range(0..world.shadow_facts.len())]
            } else if world.facts.is_empty() {
                continue;
            } else {
                world.facts[fact_zipf.sample(&mut rng)]
            };
            let subject = world.render_np(&mut rng, f.subject, opts);
            let predicate = world.render_rp(&mut rng, f.relation, opts);
            let object = world.render_np(&mut rng, f.object, opts);
            // SIST-style side information: gold candidates + confusers.
            let side = SideInfo {
                subject_candidates: side_candidates(&mut rng, &world, f.subject, &n_ckb_pool, opts),
                object_candidates: side_candidates(&mut rng, &world, f.object, &n_ckb_pool, opts),
                domain: format!("domain{}", world.relations[f.relation].category),
            };
            okb.add_triple_with_side_info(Triple { subject, predicate, object }, side);
            // Gold.
            gold.np_entity.push(world.is_ckb(f.subject).then_some(EntityId(f.subject as u32)));
            gold.np_entity.push(world.is_ckb(f.object).then_some(EntityId(f.object as u32)));
            gold.np_cluster_labels.push(f.subject as u32);
            gold.np_cluster_labels.push(f.object as u32);
            gold.rp_relation.push(Some(RelationId(f.relation as u32)));
            gold.rp_cluster_labels.push(f.relation as u32);
        }

        // --- PPDB + synsets ---------------------------------------------------
        let mut ppdb = ParaphraseStore::new();
        let mut stray: Vec<String> = Vec::new();
        for e in &world.entities {
            let mut group: Vec<String> = Vec::new();
            for a in &e.aliases {
                if !rng.gen_bool(opts.ppdb_recall) {
                    continue;
                }
                if rng.gen_bool(opts.ppdb_noise) {
                    stray.push(a.clone());
                } else {
                    group.push(a.clone());
                }
            }
            if group.len() >= 2 {
                ppdb.add_group(group.iter().map(String::as_str));
            }
        }
        for rel in &world.relations {
            let group: Vec<String> = rel
                .surface_forms()
                .into_iter()
                .filter(|_| rng.gen_bool(opts.ppdb_recall))
                .collect();
            if group.len() >= 2 {
                ppdb.add_group(group.iter().map(String::as_str));
            }
        }
        // Noise: stray phrases get attached to random groups.
        if !stray.is_empty() {
            for chunk in stray.chunks(2) {
                ppdb.add_group(chunk.iter().map(String::as_str));
            }
        }
        let mut synsets = ParaphraseStore::new();
        for rel in &world.relations {
            let group: Vec<String> = rel
                .surface_forms()
                .into_iter()
                .filter(|_| rng.gen_bool((opts.ppdb_recall + 0.2).min(1.0)))
                .collect();
            if group.len() >= 2 {
                synsets.add_group(group.iter().map(String::as_str));
            }
        }

        // --- corpus -----------------------------------------------------------
        let mut corpus = Vec::new();
        for f in world.facts.iter().chain(&world.shadow_facts) {
            for _ in 0..opts.corpus_sentences_per_fact {
                let mut sent = tokenize(&world.render_np(&mut rng, f.subject, opts));
                sent.extend(tokenize(&world.render_rp(&mut rng, f.relation, opts)));
                sent.extend(tokenize(&world.render_np(&mut rng, f.object, opts)));
                corpus.push(sent);
            }
        }

        Dataset { name: name.to_string(), ckb, okb, gold, ppdb, synsets, corpus, world }
    }

    /// Split triples by gold subject entity: triples whose subject belongs
    /// to a sampled `frac` of entities form the validation set (paper
    /// §4.1: "the triples associated with 20% selected Freebase entities
    /// of ReVerb45K as the validation set").
    pub fn entity_split(&self, frac: f64, seed: u64) -> (Vec<TripleId>, Vec<TripleId>) {
        let mut entity_ids: Vec<u32> = self
            .gold
            .np_entity
            .iter()
            .flatten()
            .map(|e| e.0)
            .collect::<std::collections::BTreeSet<u32>>()
            .into_iter()
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..entity_ids.len()).rev() {
            let j = rng.gen_range(0..=i);
            entity_ids.swap(i, j);
        }
        let take = ((entity_ids.len() as f64 * frac).round() as usize).min(entity_ids.len());
        let validation_entities: std::collections::HashSet<u32> =
            entity_ids.into_iter().take(take).collect();
        let mut validation = Vec::new();
        let mut test = Vec::new();
        for (tid, _) in self.okb.triples() {
            let subj_gold = self.gold.np_entity[tid.idx() * 2];
            let in_val = subj_gold.is_some_and(|e| validation_entities.contains(&e.0));
            if in_val {
                validation.push(tid);
            } else {
                test.push(tid);
            }
        }
        (validation, test)
    }

    /// The **alias-dictionary preset**: an external side-information
    /// table that recovers exactly the aliases and relation paraphrases
    /// `ckb_alias_gap` dropped from the curated KB. The world knows the
    /// full inventory; the CKB kept an incomplete subset; the diff is
    /// what a CESI-style imported dictionary (Wikipedia redirects, PPDB)
    /// would contribute — surface forms the OKB keeps using that string
    /// match against the CKB can no longer resolve. Every row maps the
    /// dropped surface to the entity's (relation's) canonical CKB name
    /// with confidence `weight`.
    ///
    /// # Panics
    /// Panics unless `weight` is finite and in `(0, 1]` (the
    /// [`SideKb`] row contract).
    pub fn alias_side_kb(&self, weight: f64) -> SideKb {
        let mut side = SideKb::new();
        for i in 0..self.world.num_ckb_entities() {
            let id = EntityId(i as u32);
            let kept: std::collections::HashSet<String> =
                self.ckb.entity(id).aliases.iter().map(|a| a.to_lowercase()).collect();
            let name = &self.ckb.entity(id).name;
            for alias in &self.world.entities[i].aliases {
                if !kept.contains(&alias.to_lowercase()) {
                    side.add_entity_link(alias, name, weight);
                }
            }
        }
        for (r, rel) in self.world.relations.iter().enumerate() {
            let id = RelationId(r as u32);
            let kept: std::collections::HashSet<String> =
                self.ckb.relation(id).surface_forms.iter().map(|s| s.to_lowercase()).collect();
            let name = &self.ckb.relation(id).name;
            for sf in rel.surface_forms() {
                if !kept.contains(&sf.to_lowercase()) {
                    side.add_relation_link(&sf, name, weight);
                }
            }
        }
        side
    }

    /// Sample `n` NP mention indexes with gold labels (the paper's
    /// "randomly sample 100 … and manually label them" protocol for
    /// NYTimes2018).
    pub fn sample_np_mentions(&self, n: usize, seed: u64) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.gold.np_cluster_labels.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        idx.truncate(n);
        idx
    }
}

fn side_candidates(
    rng: &mut StdRng,
    world: &World,
    gold: usize,
    ckb_pool: &[usize],
    opts: &WorldOptions,
) -> Vec<EntityId> {
    let mut out = Vec::new();
    if world.is_ckb(gold) {
        out.push(EntityId(gold as u32));
    }
    for _ in 0..opts.side_info_confusers {
        if ckb_pool.is_empty() {
            break;
        }
        let pick = ckb_pool[rng.gen_range(0..ckb_pool.len())];
        let id = EntityId(pick as u32);
        if !out.contains(&id) {
            out.push(id);
        }
    }
    out
}

/// ReVerb45K-like preset: Freebase-annotated regime — low OOV, full gold
/// links. `scale = 1.0` ≈ the paper's 45K triples.
pub fn reverb45k_like(seed: u64, scale: f64) -> Dataset {
    let opts = WorldOptions {
        seed,
        num_entities: 7000,
        num_relations: 700,
        num_facts: 30_000,
        num_triples: 45_000,
        zipf_exponent: 1.05,
        typo_rate: 0.03,
        determiner_rate: 0.10,
        modifier_rate: 0.10,
        oov_rate: 0.06,
        anchor_noise: 0.55,
        ckb_alias_gap: 0.35,
        fact_coverage: 0.55,
        ppdb_recall: 0.7,
        ppdb_noise: 0.02,
        corpus_sentences_per_fact: 2,
        num_categories: 180,
        side_info_confusers: 2,
    }
    .scaled(scale);
    Dataset::generate("ReVerb45K-like", &opts)
}

/// Stress preset: the ReVerb45K-like regime blown up to **millions of
/// triples** (`scale = 1.0` ≈ 2.25M triples, ~350K entities) for
/// memory-wall profiling. The corpus knob is turned down — at this size
/// the embedding corpus would dominate generation time without changing
/// what the storage layer is being stressed on — and the rates stay the
/// paper regime's, so the per-triple arena shapes match the benchmark
/// presets. Sub-sample with `scale` like the other presets
/// (`stress_like(seed, 0.5)` ≈ 1.1M triples).
pub fn stress_like(seed: u64, scale: f64) -> Dataset {
    let opts = WorldOptions {
        seed,
        num_entities: 350_000,
        num_relations: 5_000,
        num_facts: 1_500_000,
        num_triples: 2_250_000,
        zipf_exponent: 1.05,
        typo_rate: 0.03,
        determiner_rate: 0.10,
        modifier_rate: 0.10,
        oov_rate: 0.06,
        anchor_noise: 0.55,
        ckb_alias_gap: 0.35,
        fact_coverage: 0.55,
        ppdb_recall: 0.7,
        ppdb_noise: 0.02,
        corpus_sentences_per_fact: 1,
        num_categories: 400,
        side_info_confusers: 2,
    }
    .scaled(scale);
    Dataset::generate("Stress", &opts)
}

/// NYTimes2018-like preset: unannotated-news regime — high OOV, noisier
/// surface forms, sparser resources. `scale = 1.0` ≈ 34K triples.
pub fn nytimes2018_like(seed: u64, scale: f64) -> Dataset {
    let opts = WorldOptions {
        seed,
        num_entities: 5000,
        num_relations: 500,
        num_facts: 20_000,
        num_triples: 34_000,
        zipf_exponent: 1.1,
        typo_rate: 0.05,
        determiner_rate: 0.15,
        modifier_rate: 0.15,
        oov_rate: 0.30,
        anchor_noise: 0.65,
        ckb_alias_gap: 0.45,
        fact_coverage: 0.45,
        ppdb_recall: 0.55,
        ppdb_noise: 0.04,
        corpus_sentences_per_fact: 2,
        num_categories: 120,
        side_info_confusers: 3,
    }
    .scaled(scale);
    Dataset::generate("NYTimes2018-like", &opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jocl_kb::NpMention;

    fn tiny() -> Dataset {
        Dataset::generate("tiny", &WorldOptions::tiny(3))
    }

    #[test]
    fn shapes_are_consistent() {
        let d = tiny();
        assert_eq!(d.gold.np_entity.len(), d.okb.num_np_mentions());
        assert_eq!(d.gold.rp_relation.len(), d.okb.num_rp_mentions());
        assert_eq!(d.gold.np_cluster_labels.len(), d.okb.num_np_mentions());
        assert_eq!(d.gold.rp_cluster_labels.len(), d.okb.num_rp_mentions());
        assert!(d.ckb.num_entities() > 0);
        assert!(d.ckb.num_facts() > 0);
        assert!(!d.corpus.is_empty());
    }

    #[test]
    fn gold_links_point_to_alias_holders() {
        let d = tiny();
        // For every linked NP mention, the mention surface must be
        // derived from the gold entity's alias set (up to noise tokens).
        let mut checked = 0;
        for m in d.okb.np_mentions() {
            let Some(gold) = d.gold.np_entity[m.dense()] else { continue };
            let phrase = d.okb.np_phrase(m).to_lowercase();
            let entity = d.ckb.entity(gold);
            let overlap = entity.aliases.iter().any(|a| {
                let a = a.to_lowercase();
                phrase.contains(&a)
                    || a.contains(phrase.trim_start_matches("the "))
                    || tokenize(&a).iter().any(|t| phrase.contains(t.as_str()))
            });
            if overlap {
                checked += 1;
            }
        }
        // Typos can break containment for a few mentions, but the vast
        // majority must match.
        let total = d.gold.np_entity.iter().flatten().count();
        assert!(
            checked as f64 > total as f64 * 0.9,
            "only {checked}/{total} mentions match their gold alias"
        );
    }

    #[test]
    fn oov_mentions_have_no_link_but_cluster() {
        let d = tiny();
        let oov: Vec<usize> =
            (0..d.gold.np_entity.len()).filter(|&i| d.gold.np_entity[i].is_none()).collect();
        assert!(!oov.is_empty(), "tiny world should contain OOV mentions");
        // Cluster labels exist for them (shadow entity ids).
        for &i in &oov {
            assert!(d.gold.np_cluster_labels[i] as usize >= d.world.num_ckb_entities());
        }
    }

    #[test]
    fn gold_clusterings_are_consistent_with_links() {
        let d = tiny();
        let c = d.gold.np_clustering();
        for i in 0..d.gold.np_entity.len() {
            for j in (i + 1)..d.gold.np_entity.len() {
                if let (Some(a), Some(b)) = (d.gold.np_entity[i], d.gold.np_entity[j]) {
                    assert_eq!(a == b, c.same(i, j), "link/cluster mismatch at {i},{j}");
                }
            }
        }
    }

    #[test]
    fn ppdb_helps_but_is_imperfect() {
        let d = tiny();
        // PPDB should contain some groups and cover some aliases.
        assert!(d.ppdb.num_groups() > 0);
        assert!(d.ppdb.num_phrases() > 0);
    }

    #[test]
    fn entity_split_partitions_triples() {
        let d = tiny();
        let (val, test) = d.entity_split(0.2, 9);
        assert_eq!(val.len() + test.len(), d.okb.len());
        assert!(!val.is_empty(), "20% split of tiny world should be nonempty");
        let vs: std::collections::HashSet<u32> = val.iter().map(|t| t.0).collect();
        assert!(test.iter().all(|t| !vs.contains(&t.0)));
    }

    #[test]
    fn sampled_mentions_are_unique_and_bounded() {
        let d = tiny();
        let s = d.sample_np_mentions(50, 4);
        assert_eq!(s.len(), 50.min(d.okb.num_np_mentions()));
        let set: std::collections::HashSet<usize> = s.iter().copied().collect();
        assert_eq!(set.len(), s.len());
    }

    #[test]
    fn popularity_is_usable_for_gold_entities() {
        let d = tiny();
        // For most linked mentions, the gold entity should have nonzero
        // anchor popularity under at least its canonical alias.
        let mut ok = 0;
        let mut total = 0;
        for m in d.okb.np_mentions() {
            if let Some(gold) = d.gold.np_entity[m.dense()] {
                total += 1;
                let canon = &d.ckb.entity(gold).aliases[0];
                if d.ckb.popularity(canon, gold) > 0.0 {
                    ok += 1;
                }
            }
        }
        assert!(ok as f64 > total as f64 * 0.95, "{ok}/{total}");
    }

    #[test]
    fn presets_scale() {
        let d = reverb45k_like(1, 0.01);
        assert_eq!(d.name, "ReVerb45K-like");
        assert_eq!(d.okb.len(), 450);
        let d = nytimes2018_like(1, 0.01);
        assert_eq!(d.okb.len(), 340);
        // NYTimes regime: more OOV.
        let oov = d.gold.np_entity.iter().filter(|e| e.is_none()).count();
        assert!(oov as f64 / d.gold.np_entity.len() as f64 > 0.1);
    }

    #[test]
    fn alias_side_kb_recovers_exactly_the_gap() {
        let d = reverb45k_like(5, 0.01);
        let side = d.alias_side_kb(0.9);
        assert!(!side.is_empty(), "gap 0.35 must drop some aliases at this scale");
        for (kind, surface, target, weight) in side.canonical_rows() {
            assert_eq!(weight, 0.9);
            if kind == 'e' {
                let id = d.ckb.entity_by_name(target).expect("targets are canonical CKB names");
                // Recovered rows are exactly the dropped aliases: known to
                // the world, absent from the CKB inventory.
                assert!(
                    d.ckb.entity(id).aliases.iter().all(|a| a.to_lowercase() != surface),
                    "{surface:?} was not dropped from {target:?}"
                );
                assert!(
                    d.world.entities[id.idx()].aliases.iter().any(|a| a.to_lowercase() == surface),
                    "{surface:?} is not a world alias of {target:?}"
                );
            } else {
                let id = d.ckb.relation_by_name(target).expect("canonical relation names");
                assert!(d
                    .ckb
                    .relation(id)
                    .surface_forms
                    .iter()
                    .all(|s| s.to_lowercase() != surface));
            }
        }
        // Deterministic: the dictionary is a pure function of the dataset.
        assert_eq!(side.fingerprint(), d.alias_side_kb(0.9).fingerprint());
        assert_ne!(side.fingerprint(), d.alias_side_kb(0.5).fingerprint());
    }

    #[test]
    fn determinism_across_generations() {
        let a = Dataset::generate("d", &WorldOptions::tiny(77));
        let b = Dataset::generate("d", &WorldOptions::tiny(77));
        assert_eq!(a.okb.len(), b.okb.len());
        for (ta, tb) in a.okb.triples().zip(b.okb.triples()) {
            assert_eq!(ta.1, tb.1);
        }
        assert_eq!(a.gold.np_cluster_labels, b.gold.np_cluster_labels);
    }

    #[test]
    fn subject_mention_dense_indexing_matches() {
        let d = tiny();
        for (tid, _) in d.okb.triples() {
            let m = NpMention { triple: tid, slot: jocl_kb::NpSlot::Subject };
            assert_eq!(m.dense(), tid.idx() * 2);
        }
    }
}
