//! Property tests for the sharded metrics: whatever the shape of a
//! concurrent workload, merged reads equal the sequential total.

use jocl_obs::metrics::Registry;
use proptest::prelude::*;
use std::sync::Arc;
use std::thread;

proptest! {
    /// Concurrent sharded-counter merge: split an arbitrary workload
    /// across threads, and the merged counter equals the sum a single
    /// sequential loop would produce.
    #[test]
    fn concurrent_counter_merge_equals_sequential(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(0u64..1000, 0..64),
            1..8,
        ),
    ) {
        let reg = Registry::new();
        let counter = reg.counter("prop_total", &[]);
        let expected: u64 = per_thread.iter().flatten().sum();

        let handles: Vec<_> = per_thread
            .into_iter()
            .map(|work| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    for n in work {
                        counter.add(n);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        prop_assert_eq!(counter.get(), expected);
    }

    /// Same invariant for histograms: concurrent recording merges to
    /// the sequential count/sum, and bucket totals equal the count.
    #[test]
    fn concurrent_histogram_merge_equals_sequential(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000, 0..32),
            1..6,
        ),
    ) {
        let reg = Registry::new();
        let hist = reg.histogram("prop_ns", &[]);
        let flat: Vec<u64> = per_thread.iter().flatten().copied().collect();
        let expected_count = flat.len() as u64;
        let expected_sum: u64 = flat.iter().sum();

        let handles: Vec<_> = per_thread
            .into_iter()
            .map(|work| {
                let hist = Arc::clone(&hist);
                thread::spawn(move || {
                    for v in work {
                        hist.record(v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, expected_count);
        prop_assert_eq!(snap.sum, expected_sum);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), expected_count);
    }
}
