//! Span tracing: scoped timers recorded into a bounded in-memory ring.
//!
//! A span is opened with the [`span!`] macro (or [`span`]) and closed
//! when its [`SpanGuard`] drops; the completed record carries the span
//! name, parent linkage (a per-thread stack tracks the innermost open
//! span), start offset from the process trace epoch, duration, and an
//! optional folded-in count (e.g. message updates inside an LBP sweep).
//!
//! Tracing is OFF by default (`JOCL_TRACE=on` enables it via
//! `jocl_bench::env`); while off, opening a span is a single relaxed
//! load and the guard is inert. The ring holds the most recent
//! [`RING_CAP`] completed spans under a poison-recovered mutex — this
//! is a debugging surface, not a hot path, and spans close at phase
//! granularity (dozens per run, not millions).
//!
//! [`take_trace_tsv`] drains the ring as TSV with a fixed header:
//!
//! ```text
//! span_id\tparent_id\tthread\tname\tstart_us\tdur_us\tcount
//! ```
//!
//! Rows are sorted by `(start_us, span_id)` so concurrent threads dump
//! in timeline order.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Maximum completed spans kept; older entries are evicted FIFO.
pub const RING_CAP: usize = 4096;

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

/// Enable or disable span recording process-wide (default off).
pub fn set_trace_enabled(on: bool) {
    TRACE_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// The trace epoch: first touch pins it, all `start_us` offsets are
/// relative to it. Monotonic, never wall-clock.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Small dense per-thread id for the TSV `thread` column (thread names
/// are not stable and `ThreadId` has no public integer).
fn thread_ord() -> u64 {
    thread_local! {
        static ORD: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    }
    ORD.with(|o| *o)
}

thread_local! {
    /// Stack of open span ids on this thread; the top is the parent of
    /// the next span opened here.
    static OPEN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

#[derive(Debug, Clone)]
struct SpanRecord {
    span_id: u64,
    parent_id: u64,
    thread: u64,
    name: &'static str,
    start_us: u64,
    dur_us: u64,
    count: u64,
}

fn ring() -> &'static Mutex<Vec<SpanRecord>> {
    static RING: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(Vec::new()))
}

fn push_record(rec: SpanRecord) {
    let mut ring = ring().lock().unwrap_or_else(PoisonError::into_inner);
    if ring.len() >= RING_CAP {
        // FIFO eviction; RING_CAP is large relative to phase-granular
        // span volume, so this is a safety valve, not a steady state.
        ring.remove(0);
    }
    ring.push(rec);
}

/// Guard for an open span; records on drop. Inert (and cost-free past
/// one atomic load) when tracing is disabled at open time.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    span_id: u64,
    parent_id: u64,
    name: &'static str,
    start: Instant,
    start_us: u64,
    count: u64,
}

/// Open a span. Prefer the [`span!`] macro, which reads as a labelled
/// scope at the call site.
pub fn span(name: &'static str) -> SpanGuard {
    if !trace_enabled() {
        return SpanGuard { active: None };
    }
    let ep = epoch();
    let now = Instant::now();
    let span_id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent_id = OPEN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied().unwrap_or(0);
        s.push(span_id);
        parent
    });
    let start_us = u64::try_from(now.duration_since(ep).as_micros()).unwrap_or(u64::MAX);
    SpanGuard {
        active: Some(ActiveSpan { span_id, parent_id, name, start: now, start_us, count: 0 }),
    }
}

impl SpanGuard {
    /// Fold a count into the span (e.g. message updates performed
    /// inside an LBP sweep). Accumulates across calls.
    pub fn add_count(&mut self, n: u64) {
        if let Some(a) = self.active.as_mut() {
            a.count += n;
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        OPEN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop our own id; guards drop in LIFO order within a
            // thread, but be defensive about a mismatched stack.
            if s.last() == Some(&a.span_id) {
                s.pop();
            } else if let Some(pos) = s.iter().rposition(|&id| id == a.span_id) {
                s.remove(pos);
            }
        });
        let dur_us = u64::try_from(a.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        push_record(SpanRecord {
            span_id: a.span_id,
            parent_id: a.parent_id,
            thread: thread_ord(),
            name: a.name,
            start_us: a.start_us,
            dur_us,
            count: a.count,
        });
    }
}

/// Open a named span whose guard records on scope exit:
///
/// ```
/// let _g = jocl_obs::span!("graph_build");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name)
    };
}

/// Drain every recorded span as TSV (header + rows sorted by
/// `(start_us, span_id)`), clearing the ring.
pub fn take_trace_tsv() -> String {
    let mut records = {
        let mut ring = ring().lock().unwrap_or_else(PoisonError::into_inner);
        std::mem::take(&mut *ring)
    };
    records.sort_by_key(|r| (r.start_us, r.span_id));
    let mut out = String::from("span_id\tparent_id\tthread\tname\tstart_us\tdur_us\tcount\n");
    for r in &records {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            r.span_id, r.parent_id, r.thread, r.name, r.start_us, r.dur_us, r.count
        ));
    }
    out
}

/// Discard all recorded spans (test isolation).
pub fn clear_trace() {
    let mut ring = ring().lock().unwrap_or_else(PoisonError::into_inner);
    ring.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace state is process-global, so every scenario runs inside one
    // test to avoid cross-test interference under the parallel runner.
    #[test]
    fn spans_record_nest_and_dump_as_tsv() {
        clear_trace();

        // Disabled: guards are inert, nothing is recorded.
        set_trace_enabled(false);
        {
            let mut g = span("ignored");
            g.add_count(5);
        }
        assert_eq!(take_trace_tsv().lines().count(), 1, "header only when disabled");

        // Enabled: nesting links parents, counts fold in.
        set_trace_enabled(true);
        {
            let mut outer = span("outer");
            outer.add_count(2);
            {
                let _inner = span("inner");
            }
            outer.add_count(3);
        }
        set_trace_enabled(false);

        let tsv = take_trace_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines[0], "span_id\tparent_id\tthread\tname\tstart_us\tdur_us\tcount");
        assert_eq!(lines.len(), 3, "two spans recorded: {tsv}");

        let row = |name: &str| -> Vec<String> {
            lines
                .iter()
                .find(|l| l.split('\t').nth(3) == Some(name))
                .unwrap_or_else(|| panic!("no row for {name} in {tsv}"))
                .split('\t')
                .map(str::to_string)
                .collect()
        };
        let outer = row("outer");
        let inner = row("inner");
        assert_eq!(outer[1], "0", "outer span has no parent");
        assert_eq!(inner[1], outer[0], "inner's parent is outer");
        assert_eq!(outer[6], "5", "counts accumulate");
        // Rows are timeline-sorted and the ring drained.
        assert!(outer[4].parse::<u64>().unwrap() <= inner[4].parse::<u64>().unwrap());
        assert_eq!(take_trace_tsv().lines().count(), 1, "drain clears the ring");
    }
}
