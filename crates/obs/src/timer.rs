//! The one timing idiom: a monotonic [`Stopwatch`] wrapping
//! `Instant::now()`, replacing the ad-hoc `ms(t0)` helpers that had
//! accumulated in `serve::engine` and the bench bins.
//!
//! Wall-clock (`SystemTime`) is deliberately absent — nothing in this
//! workspace may read it on a serialization path (lint rule R4), and
//! monotonic elapsed time is what every caller actually wants.

use std::time::Instant;

/// A started monotonic timer.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    t0: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch { t0: Instant::now() }
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX` (histograms and
    /// counters speak `u64`).
    pub fn ns(&self) -> u64 {
        u64::try_from(self.t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Elapsed whole milliseconds (for gauges and stats lines).
    pub fn ms_u64(&self) -> u64 {
        u64::try_from(self.t0.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Elapsed fractional milliseconds (for human-facing log lines;
    /// this is the old `ms(t0)` helper).
    pub fn ms(&self) -> f64 {
        self.t0.elapsed().as_secs_f64() * 1e3
    }

    /// Elapsed fractional seconds.
    pub fn secs(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotone_and_consistent() {
        let sw = Stopwatch::start();
        let a = sw.ns();
        let b = sw.ns();
        assert!(b >= a, "elapsed must be monotone");
        // The unit conversions agree to within rounding.
        let ms = sw.ms();
        let ns = sw.ns();
        assert!(ms >= 0.0);
        assert!(ns as f64 / 1e6 >= ms - 1.0, "ns and ms must describe the same clock");
    }
}
