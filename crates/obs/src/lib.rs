#![forbid(unsafe_code)]
//! # jocl-obs
//!
//! The unified observability subsystem (ROADMAP "metrics before the
//! remaining serving work can be measured rather than assumed"):
//! zero-dependency counters, gauges and log-bucketed histograms with
//! **sharded-atomic hot-path recording**, plus lightweight **span
//! tracing** for the pipeline phases and a process-wide [`registry`]
//! whose [`MetricsSnapshot`] iterates deterministically (sorted keys)
//! so the serving plane can expose it as byte-stable `metrics.v1`
//! frames.
//!
//! Design contracts, in order of importance:
//!
//! * **Observational only.** Nothing in the pipeline ever *reads* a
//!   metric to make a decision, so inference is bitwise-identical with
//!   metrics on, off, or across writer/replica. Metrics are never
//!   serialized into snapshots or the replication feed.
//! * **No locks on the hot path.** Recording into a [`Counter`] or
//!   [`Histogram`] is one relaxed `fetch_add` on a per-thread shard
//!   ([`metrics`] module docs); the registry mutex is touched only at
//!   handle-registration time (once per metric, at engine/bin startup)
//!   and on [`Registry::snapshot`]. LBP sweeps and socket readers never
//!   contend.
//! * **Deterministic read-out.** [`Registry::snapshot`] returns entries
//!   sorted by canonical key; two snapshots of an idle process are
//!   identical, which is what makes the `metrics` wire frames
//!   byte-stable (the `obs_scale` gate asserts exactly that).
//! * **Cheap when off.** [`set_metrics_enabled`]`(false)` (the
//!   `JOCL_METRICS=off` knob, parsed by `jocl_bench::env`) turns every
//!   record call into a single relaxed load + branch; [`trace`] is off
//!   by default and gated the same way (`JOCL_TRACE=on`).
//!
//! The phase spans ([`span!`]) cover blocking, graph build, per-schedule
//! LBP sweeps (message-update counts folded in), delta application,
//! compaction, snapshot save/restore and replica catch-up; the bounded
//! in-memory ring dumps as TSV ([`trace::take_trace_tsv`]) for offline
//! timeline inspection.

pub mod metrics;
pub mod timer;
pub mod trace;

pub use metrics::{
    metrics_enabled, registry, set_metrics_enabled, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricValue, MetricsSnapshot, Registry,
};
pub use timer::Stopwatch;
pub use trace::{clear_trace, set_trace_enabled, span, take_trace_tsv, trace_enabled, SpanGuard};
