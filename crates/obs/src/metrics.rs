//! Metrics core: sharded-atomic counters, gauges, log-bucketed
//! histograms, and the process-wide registry.
//!
//! ## Sharding
//!
//! Hot-path recording must not serialize the LBP worker threads or the
//! socket reader threads, so [`Counter`] and [`Histogram`] keep
//! `SHARDS` cache-line-padded atomic cells. Each thread hashes to a
//! fixed shard (assigned round-robin on first use) and records with a
//! relaxed `fetch_add`; readers merge all shards. Relaxed ordering is
//! fine because metrics are observational — a snapshot is allowed to
//! miss in-flight increments, it only has to be internally consistent
//! enough for monitoring (and exact once the process is idle, which is
//! what the byte-stability gate relies on).
//!
//! ## Buckets
//!
//! Histograms use log-base-2 buckets: bucket `i` holds values with
//! upper bound `2^i` (bucket 0 holds `v <= 1`). 42 buckets cover up to
//! ~2^41 ≈ 2.2e12, i.e. half an hour in nanoseconds or terabytes in
//! bytes — everything this pipeline records. The exposition layer
//! renders them as cumulative Prometheus-style `_bucket{le="..."}`
//! series plus `_count`/`_sum`.
//!
//! ## Canonical keys
//!
//! The registry keys metrics by `name{k="v",...}` with label pairs
//! sorted by key. [`Registry::snapshot`] iterates a `BTreeMap`, so the
//! read-out order is deterministic and two snapshots of an idle
//! process are identical.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Number of per-metric atomic cells. Eight covers the worker counts
/// this pipeline runs (LBP workers default to available parallelism,
/// capped well below this on CI machines) without bloating idle
/// metrics.
pub const SHARDS: usize = 8;

/// Number of log-base-2 histogram buckets (upper bounds `2^0 .. 2^41`,
/// last bucket is the overflow catch-all).
pub const BUCKETS: usize = 42;

/// One cache line per atomic so shards on different threads do not
/// false-share. 64 bytes matches every target this workspace builds on.
#[repr(align(64))]
struct PaddedAtomic(AtomicU64);

impl PaddedAtomic {
    const fn new() -> Self {
        PaddedAtomic(AtomicU64::new(0))
    }
}

/// Global kill switch, default ON (`JOCL_METRICS=off` clears it via
/// `jocl_bench::env`). Checked with a relaxed load at the top of every
/// record call.
static METRICS_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable or disable metrics recording process-wide.
///
/// Recording calls made while disabled are dropped; handles stay valid
/// and re-enable seamlessly. Registration is unaffected (the metric
/// inventory is stable either way, only the values stop moving).
pub fn set_metrics_enabled(on: bool) {
    METRICS_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metrics recording is currently enabled.
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Round-robin shard assignment: each thread takes the next index on
/// first use and keeps it for its lifetime. This spreads concurrent
/// recorders across cells without any per-record hashing.
fn shard_index() -> usize {
    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// Map a recorded value to its log-base-2 bucket.
///
/// `v <= 1` lands in bucket 0 (upper bound `2^0 = 1`); otherwise the
/// bucket is the number of bits needed to represent `v - 1`, clamped to
/// the overflow bucket. Upper bounds are inclusive: `bucket_index(2^k)
/// == k`.
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        let bits = (64 - (v - 1).leading_zeros()) as usize;
        bits.min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i`, or `None` for the overflow
/// bucket (exposed as `le="+Inf"`).
pub fn bucket_le(i: usize) -> Option<u64> {
    if i + 1 >= BUCKETS {
        None
    } else {
        Some(1u64 << i)
    }
}

/// Monotonic event counter with sharded recording.
pub struct Counter {
    shards: [PaddedAtomic; SHARDS],
}

impl Counter {
    fn new() -> Self {
        Counter { shards: [const { PaddedAtomic::new() }; SHARDS] }
    }

    /// Add `n` to the counter. One relaxed `fetch_add` on this thread's
    /// shard; no-op while metrics are disabled.
    pub fn add(&self, n: u64) {
        if !metrics_enabled() {
            return;
        }
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Merged total across all shards.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// Last-value gauge. Gauges are set from single-writer contexts (the
/// serve loop, the net accept loop), so a single atomic cell suffices.
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    fn new() -> Self {
        Gauge { value: AtomicU64::new(0) }
    }

    /// Set the gauge. Unlike counters this is NOT gated on
    /// [`metrics_enabled`]: gauges mirror existing state (connection
    /// counts, feed offsets) rather than accumulate events, and a
    /// disabled gauge that silently pins a stale value would be more
    /// misleading than a moving one. The byte-stability gate only
    /// requires that an *idle* process reads identically twice, which
    /// holds either way.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (saturating semantics are not needed; gauges here track
    /// small live counts).
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`, saturating at zero (decrements can race a reset).
    pub fn sub(&self, n: u64) {
        let mut cur = self.value.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self.value.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A histogram shard: one cell per bucket plus count and sum.
struct HistShard {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistShard {
    fn new() -> Self {
        HistShard {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Log-bucketed histogram with sharded recording. Values are plain
/// `u64` — nanoseconds for latencies, bytes for sizes, counts for
/// batch shapes; the unit lives in the metric name (`*_ns`, `*_bytes`).
pub struct Histogram {
    shards: Vec<HistShard>,
}

impl Histogram {
    fn new() -> Self {
        Histogram { shards: (0..SHARDS).map(|_| HistShard::new()).collect() }
    }

    /// Record one observation: three relaxed `fetch_add`s on this
    /// thread's shard; no-op while metrics are disabled.
    pub fn record(&self, v: u64) {
        if !metrics_enabled() {
            return;
        }
        let shard = &self.shards[shard_index()];
        shard.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Merge all shards into a point-in-time snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut count = 0u64;
        let mut sum = 0u64;
        for shard in &self.shards {
            for (acc, b) in buckets.iter_mut().zip(shard.buckets.iter()) {
                *acc += b.load(Ordering::Relaxed);
            }
            count += shard.count.load(Ordering::Relaxed);
            sum += shard.sum.load(Ordering::Relaxed);
        }
        HistogramSnapshot { buckets, count, sum }
    }
}

/// Merged histogram state at one point in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) observation counts.
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// A registered metric's value in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(u64),
    /// Boxed: a snapshot's bucket array dwarfs the scalar variants.
    Histogram(Box<HistogramSnapshot>),
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Point-in-time view of every registered metric, sorted by canonical
/// key (`name{k="v",...}`). Iteration order is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(canonical_key, value)` pairs in ascending key order.
    pub entries: Vec<(String, MetricValue)>,
}

/// Registry of named metrics. Handle lookup takes the internal mutex;
/// callers register once at startup and cache the returned `Arc`, so
/// the hot path never sees this lock.
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// Build the canonical key `name{k="v",...}` with labels sorted by
/// key. Bare names stay bare (no `{}` suffix).
pub fn canonical_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let mut key = String::with_capacity(name.len() + 16 * sorted.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push_str("=\"");
        key.push_str(v);
        key.push('"');
    }
    key.push('}');
    key
}

impl Registry {
    /// New empty registry (tests construct private ones; production
    /// code uses [`registry`]).
    pub fn new() -> Self {
        Registry { metrics: Mutex::new(BTreeMap::new()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Register (or fetch the existing) counter under `name{labels}`.
    ///
    /// Panics if the key is already registered as a different kind —
    /// that is a programming error, not a runtime condition.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = canonical_key(name, labels);
        let mut map = self.lock();
        match map.entry(key).or_insert_with(|| Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!(
                "metric {} already registered with a different kind",
                canonical_key(name, labels)
            ),
        }
    }

    /// Register (or fetch the existing) gauge under `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = canonical_key(name, labels);
        let mut map = self.lock();
        match map.entry(key).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!(
                "metric {} already registered with a different kind",
                canonical_key(name, labels)
            ),
        }
    }

    /// Register (or fetch the existing) histogram under `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = canonical_key(name, labels);
        let mut map = self.lock();
        match map.entry(key).or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!(
                "metric {} already registered with a different kind",
                canonical_key(name, labels)
            ),
        }
    }

    /// Merge every metric into a sorted point-in-time snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.lock();
        let entries = map
            .iter()
            .map(|(key, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                };
                (key.clone(), value)
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// The process-wide registry. All production metrics live here; the
/// serve exposition plane snapshots it to build `metrics.v1` frames.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bucket_boundaries_are_inclusive_powers_of_two() {
        // Bucket 0 holds v <= 1.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        // Upper bounds are inclusive: 2^k lands in bucket k, 2^k + 1
        // spills into bucket k+1, and 2^(k-1) + 1 is the low edge of
        // bucket k.
        for k in 1..(BUCKETS - 1) {
            let le = 1u64 << k;
            assert_eq!(bucket_index(le), k, "2^{k} must land in bucket {k}");
            assert_eq!(bucket_index(le / 2 + 1), k, "2^{}+1 is the low edge of bucket {k}", k - 1);
            if k + 1 < BUCKETS - 1 {
                assert_eq!(bucket_index(le + 1), k + 1, "2^{k}+1 goes one bucket up");
            }
        }
        // Everything beyond the last finite bound lands in the overflow bucket.
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(1u64 << 62), BUCKETS - 1);
    }

    #[test]
    fn bucket_le_matches_index() {
        assert_eq!(bucket_le(0), Some(1));
        assert_eq!(bucket_le(10), Some(1024));
        assert_eq!(bucket_le(BUCKETS - 1), None);
        // A value exactly at a finite bound maps to that bucket.
        for i in 0..BUCKETS - 1 {
            let le = bucket_le(i).unwrap();
            assert_eq!(bucket_index(le), i);
        }
    }

    #[test]
    fn histogram_count_and_sum_track_records() {
        let reg = Registry::new();
        let h = reg.histogram("t_ns", &[]);
        for v in [0u64, 1, 2, 3, 1000, 1 << 40, u64::MAX >> 1] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, 1 + 2 + 3 + 1000 + (1u64 << 40) + (u64::MAX >> 1));
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    }

    #[test]
    fn canonical_key_sorts_labels() {
        assert_eq!(canonical_key("x", &[]), "x");
        assert_eq!(canonical_key("x", &[("b", "2"), ("a", "1")]), "x{a=\"1\",b=\"2\"}");
    }

    #[test]
    fn registry_snapshot_is_sorted_and_stable() {
        let reg = Registry::new();
        reg.counter("zeta_total", &[]).add(3);
        reg.gauge("alpha_live", &[]).set(7);
        reg.counter("mid_total", &[("plane", "writer")]).inc();
        let s1 = reg.snapshot();
        let s2 = reg.snapshot();
        assert_eq!(s1, s2, "idle registry must snapshot identically twice");
        let keys: Vec<&str> = s1.entries.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "snapshot iteration must be sorted");
    }

    #[test]
    fn same_key_returns_same_handle() {
        let reg = Registry::new();
        let a = reg.counter("hits_total", &[("k", "v")]);
        let b = reg.counter("hits_total", &[("k", "v")]);
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.snapshot().entries.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x_total", &[]);
        reg.gauge("x_total", &[]);
    }

    #[test]
    fn disabled_metrics_drop_records_but_keep_handles() {
        let reg = Registry::new();
        let c = reg.counter("gated_total", &[]);
        let h = reg.histogram("gated_ns", &[]);
        set_metrics_enabled(false);
        c.add(10);
        h.record(10);
        set_metrics_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        c.add(1);
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn concurrent_counter_merge_equals_sequential_sum() {
        // The core sharding invariant: N threads adding concurrently
        // merge to exactly the sequential total.
        let reg = Registry::new();
        let c = reg.counter("conc_total", &[]);
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for i in 0..per_thread {
                        c.add(1 + (i % 3));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expect_per_thread: u64 = (0..per_thread).map(|i| 1 + (i % 3)).sum();
        assert_eq!(c.get(), expect_per_thread * threads as u64);
    }

    #[test]
    fn gauge_sub_saturates_at_zero() {
        let reg = Registry::new();
        let g = reg.gauge("live", &[]);
        g.add(2);
        g.sub(5);
        assert_eq!(g.get(), 0);
    }
}
