//! Candidate generation for linking variables.
//!
//! Each linking variable `e_si` (`r_pi`) has `|e_si|` possible states,
//! "each of which is a candidate entity in the CKB that NP s_i may refer
//! to" (paper §3.2.1). Candidates are retrieved here:
//!
//! * **entities** — exact alias matches plus fuzzy matches through the
//!   inverted token index, ranked by a blend of lexical similarity
//!   (Jaro-Winkler over aliases) and anchor popularity, truncated to
//!   `top_k`;
//! * **relations** — exact surface-form matches plus a full scan over the
//!   (small) relation inventory ranked by character n-gram / Levenshtein
//!   similarity over surface forms.
//!
//! Ordering is deterministic: score descending, id ascending.

use crate::ckb::{Ckb, EntityId, RelationId};
use jocl_text::fx::FxHashSet;
use jocl_text::sim::{jaro_winkler, levenshtein_sim_at_least_gated};
use jocl_text::{stopwords, tokenize};

/// Options for [`CandidateGen`].
#[derive(Debug, Clone)]
pub struct CandidateOptions {
    /// Maximum entity candidates per NP mention (paper-scale default 8).
    pub top_k_entities: usize,
    /// Maximum relation candidates per RP mention.
    pub top_k_relations: usize,
    /// Candidates scoring below this are dropped.
    pub min_score: f64,
    /// Weight of lexical similarity vs popularity in the entity score.
    pub lexical_weight: f64,
}

impl Default for CandidateOptions {
    fn default() -> Self {
        Self { top_k_entities: 8, top_k_relations: 8, min_score: 0.05, lexical_weight: 0.6 }
    }
}

/// A scored candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scored<T> {
    /// Candidate id.
    pub id: T,
    /// Retrieval score in `[0, 1]` (not a probability).
    pub score: f64,
}

/// A relation surface form with its precomputed comparison artifacts.
/// Trigrams are interned to `u32` ids (shared across all surface forms),
/// so the per-query Jaccard is an integer merge instead of string
/// comparisons — same values, no hashing-collision caveat.
#[derive(Debug, Clone)]
struct RelSurface {
    lc: String,
    /// `lc.chars().count()` (Levenshtein length bound).
    chars: usize,
    /// Sorted interned trigram ids.
    tri_ids: Vec<u32>,
}

/// Candidate generator over one CKB.
///
/// Relation retrieval is a full scan over the relation inventory, so the
/// generator precomputes each surface form's lowercase form and trigram
/// set once at construction; the per-query cost is then one merge
/// intersection (plus a length-pruned Levenshtein) per surface form
/// instead of tokenization and hashing per (query, surface) pair.
#[derive(Debug, Clone)]
pub struct CandidateGen<'c> {
    ckb: &'c Ckb,
    opts: CandidateOptions,
    /// Indexed by relation id: precomputed surface-form artifacts.
    rel_surfaces: Vec<Vec<RelSurface>>,
    /// Trigram → interned id over all relation surface forms.
    tri_interner: jocl_text::fx::FxHashMap<String, u32>,
}

/// A query phrase's trigram set mapped through the interner: the sorted
/// ids of grams that occur in *some* surface form, plus the count of
/// grams that occur in none (they enlarge the union but can never
/// intersect).
struct QueryTrigrams {
    known: Vec<u32>,
    total: usize,
}

impl QueryTrigrams {
    fn build(lc: &str, interner: &jocl_text::fx::FxHashMap<String, u32>) -> Self {
        let mut grams = jocl_text::tokenize::char_ngrams(lc, 3);
        grams.sort_unstable();
        grams.dedup();
        let total = grams.len();
        let mut known: Vec<u32> =
            grams.iter().filter_map(|g| interner.get(g.as_str()).copied()).collect();
        known.sort_unstable();
        Self { known, total }
    }

    /// Jaccard against a surface form's interned trigram set; identical
    /// to `NgramSet::jaccard` on the original gram sets (the unknown
    /// grams enlarge the union without intersecting, so the union is
    /// `total + |sf| − inter`, not `|known| + |sf| − inter`).
    fn jaccard(&self, sf: &[u32]) -> f64 {
        if self.total == 0 && sf.is_empty() {
            return 1.0;
        }
        if self.total == 0 || sf.is_empty() {
            return 0.0;
        }
        let inter = jocl_text::sim::sorted_intersection_count(&self.known, sf);
        let union = self.total + sf.len() - inter;
        inter as f64 / union as f64
    }
}

impl<'c> CandidateGen<'c> {
    /// Create a generator with options.
    pub fn new(ckb: &'c Ckb, opts: CandidateOptions) -> Self {
        let mut tri_interner = jocl_text::fx::FxHashMap::default();
        let mut rel_surfaces = vec![Vec::new(); ckb.num_relations()];
        for (id, rel) in ckb.relations() {
            rel_surfaces[id.0 as usize] = rel
                .surface_forms
                .iter()
                .map(|sf| {
                    let lc = sf.to_lowercase();
                    let mut grams = jocl_text::tokenize::char_ngrams(&lc, 3);
                    grams.sort_unstable();
                    grams.dedup();
                    let mut tri_ids: Vec<u32> = grams
                        .into_iter()
                        .map(|g| {
                            let next = tri_interner.len() as u32;
                            *tri_interner.entry(g).or_insert(next)
                        })
                        .collect();
                    tri_ids.sort_unstable();
                    let chars = lc.chars().count();
                    RelSurface { lc, chars, tri_ids }
                })
                .collect();
        }
        Self { ckb, opts, rel_surfaces, tri_interner }
    }

    /// Lexical similarity between a surface form and an entity: the best
    /// Jaro-Winkler score over the entity's aliases.
    fn entity_lexical(&self, surface: &str, e: EntityId) -> f64 {
        let surface_lc = surface.to_lowercase();
        self.ckb
            .entity(e)
            .aliases
            .iter()
            .map(|a| jaro_winkler(&surface_lc, &a.to_lowercase()))
            .fold(0.0, f64::max)
    }

    /// Entity candidates for an NP surface form.
    pub fn entity_candidates(&self, surface: &str) -> Vec<Scored<EntityId>> {
        let mut pool: FxHashSet<EntityId> = FxHashSet::default();
        pool.extend(self.ckb.entities_by_alias(surface).iter().copied());
        for tok in tokenize(surface) {
            if stopwords::is_stopword(&tok) {
                continue;
            }
            pool.extend(self.ckb.entities_by_token(&tok).iter().copied());
        }
        let w = self.opts.lexical_weight;
        let mut scored: Vec<Scored<EntityId>> = pool
            .into_iter()
            .map(|e| {
                let lex = self.entity_lexical(surface, e);
                let pop = self.ckb.popularity(surface, e);
                Scored { id: e, score: w * lex + (1.0 - w) * pop }
            })
            .filter(|s| s.score >= self.opts.min_score)
            .collect();
        sort_and_truncate(&mut scored, self.opts.top_k_entities);
        scored
    }

    /// Relation candidates for an RP surface form.
    ///
    /// Exact top-k without scoring the whole inventory exactly: a cheap
    /// first pass computes, per relation, the exact n-gram maximum and an
    /// upper bound on the final score (n-gram ∨ Levenshtein length
    /// bound); the second pass visits relations in descending bound order
    /// and runs the (pruned) Levenshtein only until the bound of the next
    /// relation falls strictly below the current k-th best score —
    /// everything after is provably outside the top k. The returned list
    /// is identical to scoring every relation exactly.
    pub fn relation_candidates(&self, surface: &str) -> Vec<Scored<RelationId>> {
        let surface_lc = surface.to_lowercase();
        let query_trigrams = QueryTrigrams::build(&surface_lc, &self.tri_interner);
        let query_chars = surface_lc.chars().count();
        let exact: FxHashSet<RelationId> =
            self.ckb.relations_by_surface(surface).iter().copied().collect();
        // Pass 1: exact n-gram max + score upper bound per relation.
        struct Prelim {
            id: u32,
            ngram_max: f64,
            bound: f64,
        }
        let mut prelim: Vec<Prelim> = (0..self.rel_surfaces.len() as u32)
            .map(|id| {
                if exact.contains(&RelationId(id)) {
                    // The exact-surface bonus replaces the lexical score.
                    return Prelim { id, ngram_max: 1.0, bound: 1.0 };
                }
                let (mut ngram_max, mut bound) = (0.0f64, 0.0f64);
                for sf in &self.rel_surfaces[id as usize] {
                    let ng = query_trigrams.jaccard(&sf.tri_ids);
                    ngram_max = ngram_max.max(ng);
                    let max_len = query_chars.max(sf.chars);
                    let lev_bound = if max_len == 0 {
                        1.0
                    } else {
                        1.0 - query_chars.abs_diff(sf.chars) as f64 / max_len as f64
                    };
                    bound = bound.max(ng.max(lev_bound));
                }
                Prelim { id, ngram_max, bound }
            })
            .collect();
        prelim.sort_by(|a, b| {
            b.bound
                .partial_cmp(&a.bound)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        // Pass 2: exact scores in descending bound order; `kth` tracks the
        // k-th best valid score seen so far (the stop threshold).
        let k = self.opts.top_k_relations;
        let mut top_scores: Vec<f64> = Vec::with_capacity(k + 1);
        let mut scored: Vec<Scored<RelationId>> = Vec::new();
        for p in prelim {
            if top_scores.len() >= k && p.bound < top_scores[k - 1] {
                break;
            }
            let id = RelationId(p.id);
            // Below the current k-th best score exactness is not needed
            // (such relations are truncated regardless), so the gate lets
            // the Levenshtein abort early; ties with the gate stay exact.
            let gate = if top_scores.len() >= k { top_scores[k - 1] } else { f64::NEG_INFINITY };
            let score = if exact.contains(&id) {
                1.0
            } else {
                self.rel_surfaces[p.id as usize].iter().fold(p.ngram_max, |best, sf| {
                    levenshtein_sim_at_least_gated(&surface_lc, &sf.lc, best, gate)
                })
            };
            if score < self.opts.min_score {
                continue;
            }
            scored.push(Scored { id, score });
            let pos = top_scores.partition_point(|&s| s >= score);
            top_scores.insert(pos, score);
            top_scores.truncate(k);
        }
        sort_and_truncate(&mut scored, k);
        scored
    }
}

fn sort_and_truncate<T: Copy + Ord>(scored: &mut Vec<Scored<T>>, k: usize) {
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id.cmp(&b.id))
    });
    scored.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ckb::{CkbRelation, Entity};

    fn ckb() -> Ckb {
        let mut ckb = Ckb::new();
        let umd = ckb.add_entity(Entity {
            name: "university of maryland".into(),
            aliases: vec!["University of Maryland".into(), "UMD".into()],
            types: vec!["university".into()],
        });
        let umich = ckb.add_entity(Entity {
            name: "university of michigan".into(),
            aliases: vec!["University of Michigan".into(), "UM".into()],
            types: vec!["university".into()],
        });
        let maryland = ckb.add_entity(Entity {
            name: "maryland".into(),
            aliases: vec!["Maryland".into()],
            types: vec!["state".into()],
        });
        ckb.add_anchor("university of maryland", umd, 50);
        ckb.add_anchor("umd", umd, 20);
        ckb.add_anchor("maryland", maryland, 30);
        ckb.add_anchor("maryland", umd, 5); // ambiguous anchor
        ckb.add_anchor("university of michigan", umich, 40);
        ckb.add_relation(CkbRelation {
            name: "location.containedby".into(),
            surface_forms: vec!["located in".into(), "is in".into()],
            category: "location".into(),
        });
        ckb.add_relation(CkbRelation {
            name: "organizations_founded".into(),
            surface_forms: vec!["be a member of".into(), "founded".into()],
            category: "membership".into(),
        });
        ckb
    }

    fn gen(ckb: &Ckb) -> CandidateGen<'_> {
        CandidateGen::new(ckb, CandidateOptions::default())
    }

    #[test]
    fn exact_alias_is_top_candidate() {
        let ckb = ckb();
        let g = gen(&ckb);
        let cands = g.entity_candidates("UMD");
        assert!(!cands.is_empty());
        assert_eq!(ckb.entity(cands[0].id).name, "university of maryland");
    }

    #[test]
    fn fuzzy_candidates_via_tokens() {
        let ckb = ckb();
        let g = gen(&ckb);
        let cands = g.entity_candidates("the University of Maryland campus");
        let names: Vec<&str> = cands.iter().map(|c| ckb.entity(c.id).name.as_str()).collect();
        assert!(names.contains(&"university of maryland"), "{names:?}");
    }

    #[test]
    fn ambiguous_surface_yields_both() {
        let ckb = ckb();
        let g = gen(&ckb);
        let cands = g.entity_candidates("Maryland");
        let names: Vec<&str> = cands.iter().map(|c| ckb.entity(c.id).name.as_str()).collect();
        assert!(names.contains(&"maryland"));
        assert!(names.contains(&"university of maryland"));
        // The state should outrank the university for the bare surface.
        assert_eq!(names[0], "maryland");
    }

    #[test]
    fn top_k_truncation() {
        let ckb = ckb();
        let g =
            CandidateGen::new(&ckb, CandidateOptions { top_k_entities: 1, ..Default::default() });
        assert_eq!(g.entity_candidates("university").len(), 1);
    }

    #[test]
    fn relation_exact_surface_wins() {
        let ckb = ckb();
        let g = gen(&ckb);
        let cands = g.relation_candidates("be a member of");
        assert_eq!(ckb.relation(cands[0].id).name, "organizations_founded");
        assert_eq!(cands[0].score, 1.0);
    }

    #[test]
    fn relation_fuzzy_match() {
        let ckb = ckb();
        let g = gen(&ckb);
        let cands = g.relation_candidates("be an early member of");
        assert_eq!(ckb.relation(cands[0].id).name, "organizations_founded");
    }

    #[test]
    fn unknown_surface_yields_nothing_or_weak() {
        let ckb = ckb();
        let g = gen(&ckb);
        let cands = g.entity_candidates("zzz qqq");
        assert!(cands.is_empty(), "{cands:?}");
    }

    #[test]
    fn scores_sorted_descending() {
        let ckb = ckb();
        let g = gen(&ckb);
        let cands = g.entity_candidates("university of maryland");
        for w in cands.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
