//! Candidate generation for linking variables.
//!
//! Each linking variable `e_si` (`r_pi`) has `|e_si|` possible states,
//! "each of which is a candidate entity in the CKB that NP s_i may refer
//! to" (paper §3.2.1). Candidates are retrieved here:
//!
//! * **entities** — exact alias matches plus fuzzy matches through the
//!   inverted token index, ranked by a blend of lexical similarity
//!   (Jaro-Winkler over aliases) and anchor popularity, truncated to
//!   `top_k`;
//! * **relations** — exact surface-form matches plus a full scan over the
//!   (small) relation inventory ranked by character n-gram / Levenshtein
//!   similarity over surface forms.
//!
//! Ordering is deterministic: score descending, id ascending.

use crate::ckb::{Ckb, EntityId, RelationId};
use jocl_text::fx::FxHashSet;
use jocl_text::sim::{jaro_winkler, levenshtein_sim, ngram_jaccard};
use jocl_text::{stopwords, tokenize};

/// Options for [`CandidateGen`].
#[derive(Debug, Clone)]
pub struct CandidateOptions {
    /// Maximum entity candidates per NP mention (paper-scale default 8).
    pub top_k_entities: usize,
    /// Maximum relation candidates per RP mention.
    pub top_k_relations: usize,
    /// Candidates scoring below this are dropped.
    pub min_score: f64,
    /// Weight of lexical similarity vs popularity in the entity score.
    pub lexical_weight: f64,
}

impl Default for CandidateOptions {
    fn default() -> Self {
        Self {
            top_k_entities: 8,
            top_k_relations: 8,
            min_score: 0.05,
            lexical_weight: 0.6,
        }
    }
}

/// A scored candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scored<T> {
    /// Candidate id.
    pub id: T,
    /// Retrieval score in `[0, 1]` (not a probability).
    pub score: f64,
}

/// Candidate generator over one CKB.
#[derive(Debug, Clone)]
pub struct CandidateGen<'c> {
    ckb: &'c Ckb,
    opts: CandidateOptions,
}

impl<'c> CandidateGen<'c> {
    /// Create a generator with options.
    pub fn new(ckb: &'c Ckb, opts: CandidateOptions) -> Self {
        Self { ckb, opts }
    }

    /// Lexical similarity between a surface form and an entity: the best
    /// Jaro-Winkler score over the entity's aliases.
    fn entity_lexical(&self, surface: &str, e: EntityId) -> f64 {
        let surface_lc = surface.to_lowercase();
        self.ckb
            .entity(e)
            .aliases
            .iter()
            .map(|a| jaro_winkler(&surface_lc, &a.to_lowercase()))
            .fold(0.0, f64::max)
    }

    /// Entity candidates for an NP surface form.
    pub fn entity_candidates(&self, surface: &str) -> Vec<Scored<EntityId>> {
        let mut pool: FxHashSet<EntityId> = FxHashSet::default();
        pool.extend(self.ckb.entities_by_alias(surface).iter().copied());
        for tok in tokenize(surface) {
            if stopwords::is_stopword(&tok) {
                continue;
            }
            pool.extend(self.ckb.entities_by_token(&tok).iter().copied());
        }
        let w = self.opts.lexical_weight;
        let mut scored: Vec<Scored<EntityId>> = pool
            .into_iter()
            .map(|e| {
                let lex = self.entity_lexical(surface, e);
                let pop = self.ckb.popularity(surface, e);
                Scored { id: e, score: w * lex + (1.0 - w) * pop }
            })
            .filter(|s| s.score >= self.opts.min_score)
            .collect();
        sort_and_truncate(&mut scored, self.opts.top_k_entities);
        scored
    }

    /// Relation candidates for an RP surface form.
    pub fn relation_candidates(&self, surface: &str) -> Vec<Scored<RelationId>> {
        let surface_lc = surface.to_lowercase();
        let exact: FxHashSet<RelationId> =
            self.ckb.relations_by_surface(surface).iter().copied().collect();
        let mut scored: Vec<Scored<RelationId>> = self
            .ckb
            .relations()
            .map(|(id, rel)| {
                let lex = rel
                    .surface_forms
                    .iter()
                    .map(|sf| {
                        let sf_lc = sf.to_lowercase();
                        ngram_jaccard(&surface_lc, &sf_lc)
                            .max(levenshtein_sim(&surface_lc, &sf_lc))
                    })
                    .fold(0.0, f64::max);
                let bonus = if exact.contains(&id) { 1.0 } else { lex };
                Scored { id, score: bonus }
            })
            .filter(|s| s.score >= self.opts.min_score)
            .collect();
        sort_and_truncate(&mut scored, self.opts.top_k_relations);
        scored
    }
}

fn sort_and_truncate<T: Copy + Ord>(scored: &mut Vec<Scored<T>>, k: usize) {
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id.cmp(&b.id))
    });
    scored.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ckb::{CkbRelation, Entity};

    fn ckb() -> Ckb {
        let mut ckb = Ckb::new();
        let umd = ckb.add_entity(Entity {
            name: "university of maryland".into(),
            aliases: vec!["University of Maryland".into(), "UMD".into()],
            types: vec!["university".into()],
        });
        let umich = ckb.add_entity(Entity {
            name: "university of michigan".into(),
            aliases: vec!["University of Michigan".into(), "UM".into()],
            types: vec!["university".into()],
        });
        let maryland = ckb.add_entity(Entity {
            name: "maryland".into(),
            aliases: vec!["Maryland".into()],
            types: vec!["state".into()],
        });
        ckb.add_anchor("university of maryland", umd, 50);
        ckb.add_anchor("umd", umd, 20);
        ckb.add_anchor("maryland", maryland, 30);
        ckb.add_anchor("maryland", umd, 5); // ambiguous anchor
        ckb.add_anchor("university of michigan", umich, 40);
        ckb.add_relation(CkbRelation {
            name: "location.containedby".into(),
            surface_forms: vec!["located in".into(), "is in".into()],
            category: "location".into(),
        });
        ckb.add_relation(CkbRelation {
            name: "organizations_founded".into(),
            surface_forms: vec!["be a member of".into(), "founded".into()],
            category: "membership".into(),
        });
        ckb
    }

    fn gen(ckb: &Ckb) -> CandidateGen<'_> {
        CandidateGen::new(ckb, CandidateOptions::default())
    }

    #[test]
    fn exact_alias_is_top_candidate() {
        let ckb = ckb();
        let g = gen(&ckb);
        let cands = g.entity_candidates("UMD");
        assert!(!cands.is_empty());
        assert_eq!(ckb.entity(cands[0].id).name, "university of maryland");
    }

    #[test]
    fn fuzzy_candidates_via_tokens() {
        let ckb = ckb();
        let g = gen(&ckb);
        let cands = g.entity_candidates("the University of Maryland campus");
        let names: Vec<&str> = cands.iter().map(|c| ckb.entity(c.id).name.as_str()).collect();
        assert!(names.contains(&"university of maryland"), "{names:?}");
    }

    #[test]
    fn ambiguous_surface_yields_both() {
        let ckb = ckb();
        let g = gen(&ckb);
        let cands = g.entity_candidates("Maryland");
        let names: Vec<&str> = cands.iter().map(|c| ckb.entity(c.id).name.as_str()).collect();
        assert!(names.contains(&"maryland"));
        assert!(names.contains(&"university of maryland"));
        // The state should outrank the university for the bare surface.
        assert_eq!(names[0], "maryland");
    }

    #[test]
    fn top_k_truncation() {
        let ckb = ckb();
        let g = CandidateGen::new(
            &ckb,
            CandidateOptions { top_k_entities: 1, ..Default::default() },
        );
        assert_eq!(g.entity_candidates("university").len(), 1);
    }

    #[test]
    fn relation_exact_surface_wins() {
        let ckb = ckb();
        let g = gen(&ckb);
        let cands = g.relation_candidates("be a member of");
        assert_eq!(ckb.relation(cands[0].id).name, "organizations_founded");
        assert_eq!(cands[0].score, 1.0);
    }

    #[test]
    fn relation_fuzzy_match() {
        let ckb = ckb();
        let g = gen(&ckb);
        let cands = g.relation_candidates("be an early member of");
        assert_eq!(ckb.relation(cands[0].id).name, "organizations_founded");
    }

    #[test]
    fn unknown_surface_yields_nothing_or_weak() {
        let ckb = ckb();
        let g = gen(&ckb);
        let cands = g.entity_candidates("zzz qqq");
        assert!(cands.is_empty(), "{cands:?}");
    }

    #[test]
    fn scores_sorted_descending() {
        let ckb = ckb();
        let g = gen(&ckb);
        let cands = g.entity_candidates("university of maryland");
        for w in cands.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
