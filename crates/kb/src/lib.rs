#![forbid(unsafe_code)]
//! # jocl-kb
//!
//! Knowledge-base substrate for the JOCL reproduction: the data models for
//! both sides of the task (paper §2).
//!
//! * [`ckb`] — the **curated knowledge base** (the paper uses Freebase /
//!   DBpedia): entities with aliases and types, relations with surface
//!   forms and categories, facts `<e_i, r_k, e_j>`, plus the indexes the
//!   paper's signals need — an alias index, Wikipedia-anchor-style
//!   **popularity counts** (`f_pop`, §3.2.3), a fact index (`U4`, §3.2.5)
//!   and an entity co-occurrence view (TagMe-style relatedness).
//! * [`okb`] — the **open knowledge base**: OIE triples
//!   `<s_i, p_i, o_i>` with NP/RP mention addressing and optional
//!   source-text side information (consumed by the SIST baseline).
//! * [`candidates`] — candidate entity/relation generation for linking
//!   variables (`|e_si|` states per mention, §3.2.1).
//! * [`side`] — imported external-KB side information (alias tables,
//!   link dictionaries à la CESI), interned and fingerprinted, fed into
//!   inference as additional factor potentials by `jocl_core`.
//! * [`tsv`] — a small, tested TSV codec so datasets can be persisted and
//!   reloaded without pulling in a serialization dependency.
//! * [`snap`] — the binary snapshot codec behind warm serving-session
//!   persistence (`jocl_serve`): length-prefixed little-endian sections
//!   with typed corruption errors, bit-exact for `f64` state.

pub mod candidates;
pub mod ckb;
pub mod error;
pub mod feed;
pub mod okb;
pub mod side;
pub mod snap;
pub mod tsv;

pub use candidates::{CandidateGen, CandidateOptions};
pub use ckb::{Ckb, CkbRelation, Entity, EntityId, RelationId};
pub use error::KbError;
pub use feed::FeedCursor;
pub use okb::{NpMention, NpSlot, Okb, RpMention, SideInfo, Triple, TripleId};
pub use side::{SideKb, SideLink};
