//! The open knowledge base (OKB) model.
//!
//! An OKB is a set of OIE triples `t_i = <s_i, p_i, o_i>` where `s_i`,
//! `o_i` are noun phrases (NPs) and `p_i` is a relation phrase (RP)
//! (paper §2). JOCL's variables are addressed per **mention**:
//!
//! * an [`NpMention`] is one NP occurrence — `(triple, Subject)` or
//!   `(triple, Object)`;
//! * an [`RpMention`] is the RP occurrence of one triple.
//!
//! The paper's canonicalization variables pair *subject mentions with
//! subject mentions* (`x_ij`), *predicates with predicates* (`y_ij`) and
//! *objects with objects* (`z_ij`); the mention addressing here makes that
//! pairing explicit.
//!
//! Optional [`SideInfo`] per triple carries what SIST (§4.2.1) extracts
//! from the original source text: candidate entities seen in context,
//! their types, and a domain tag. Our data generator emits it so the SIST
//! baseline has the same inputs it has in the paper.

use crate::ckb::EntityId;

/// Identifier of an OIE triple in an [`Okb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TripleId(pub u32);

impl TripleId {
    /// Index form for slice access.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Which NP slot of a triple a mention occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NpSlot {
    /// The subject NP `s_i`.
    Subject,
    /// The object NP `o_i`.
    Object,
}

/// One NP mention: a triple plus slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NpMention {
    /// Owning triple.
    pub triple: TripleId,
    /// Subject or object position.
    pub slot: NpSlot,
}

impl NpMention {
    /// Dense index: subjects come first (`2·t`), objects second (`2·t+1`).
    #[inline]
    pub fn dense(self) -> usize {
        self.triple.idx() * 2 + matches!(self.slot, NpSlot::Object) as usize
    }

    /// Inverse of [`NpMention::dense`].
    pub fn from_dense(i: usize) -> Self {
        NpMention {
            triple: TripleId((i / 2) as u32),
            slot: if i.is_multiple_of(2) { NpSlot::Subject } else { NpSlot::Object },
        }
    }
}

/// One RP mention: the predicate of a triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RpMention(pub TripleId);

impl RpMention {
    /// Dense index (= triple index).
    #[inline]
    pub fn dense(self) -> usize {
        self.0.idx()
    }
}

/// An OIE triple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Triple {
    /// Subject noun phrase.
    pub subject: String,
    /// Relation phrase.
    pub predicate: String,
    /// Object noun phrase.
    pub object: String,
}

impl Triple {
    /// Convenience constructor.
    pub fn new(subject: &str, predicate: &str, object: &str) -> Self {
        Self {
            subject: subject.to_string(),
            predicate: predicate.to_string(),
            object: object.to_string(),
        }
    }
}

/// Source-text side information for one triple (what SIST consumes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SideInfo {
    /// Entities plausibly referenced near the subject in the source text.
    pub subject_candidates: Vec<EntityId>,
    /// Entities plausibly referenced near the object.
    pub object_candidates: Vec<EntityId>,
    /// Domain tag of the source document (e.g. `"education"`).
    pub domain: String,
}

/// A set of OIE triples with optional per-triple side information.
#[derive(Debug, Clone, Default)]
pub struct Okb {
    triples: Vec<Triple>,
    side_info: Vec<Option<SideInfo>>,
    /// First triple id per distinct `<s, p, o>` — the dedup index behind
    /// [`Okb::ingest_triple`] and [`Okb::find_triple`]. Built lazily
    /// (covers `triples[..dedup_indexed]`) so the batch `add_triple`
    /// path never pays its memory or hashing cost.
    dedup: jocl_text::fx::FxHashMap<Triple, TripleId>,
    dedup_indexed: usize,
}

impl Okb {
    /// Empty OKB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a triple without side information.
    ///
    /// Duplicates are **allowed** (each call is one OIE *mention* — the
    /// batch datasets deliberately repeat popular triples); use
    /// [`Okb::ingest_triple`] where re-ingest must be a no-op instead.
    pub fn add_triple(&mut self, t: Triple) -> TripleId {
        let id = TripleId(u32::try_from(self.triples.len()).expect("too many triples"));
        self.triples.push(t);
        self.side_info.push(None);
        id
    }

    /// Extend the lazy dedup index over any triples appended since the
    /// last dedup query.
    fn ensure_dedup_index(&mut self) {
        for i in self.dedup_indexed..self.triples.len() {
            self.dedup.entry(self.triples[i].clone()).or_insert(TripleId(i as u32));
        }
        self.dedup_indexed = self.triples.len();
    }

    /// Id of the first triple equal to `t`, if any. (`&mut` because the
    /// dedup index is materialized on first use.)
    pub fn find_triple(&mut self, t: &Triple) -> Option<TripleId> {
        self.ensure_dedup_index();
        self.dedup.get(t).copied()
    }

    /// Idempotent append: if an identical triple is already present,
    /// return its id and `false` without touching the store (mirroring
    /// [`crate::Ckb::add_fact`]'s duplicate behaviour); otherwise append
    /// and return the fresh id and `true`.
    ///
    /// This is the ingest path of the streaming/serving pipeline, where
    /// re-delivered triples must not create a second set of mention
    /// variables or double-count evidence.
    pub fn ingest_triple(&mut self, t: Triple) -> (TripleId, bool) {
        match self.find_triple(&t) {
            Some(id) => (id, false),
            None => {
                let id = self.add_triple(t);
                self.ensure_dedup_index();
                (id, true)
            }
        }
    }

    /// Append a triple with side information.
    pub fn add_triple_with_side_info(&mut self, t: Triple, si: SideInfo) -> TripleId {
        let id = self.add_triple(t);
        self.side_info[id.idx()] = Some(si);
        id
    }

    /// Triple accessor.
    pub fn triple(&self, id: TripleId) -> &Triple {
        &self.triples[id.idx()]
    }

    /// Side info accessor.
    pub fn side_info(&self, id: TripleId) -> Option<&SideInfo> {
        self.side_info[id.idx()].as_ref()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// All triples with ids.
    pub fn triples(&self) -> impl Iterator<Item = (TripleId, &Triple)> {
        self.triples.iter().enumerate().map(|(i, t)| (TripleId(i as u32), t))
    }

    /// The phrase of an NP mention.
    pub fn np_phrase(&self, m: NpMention) -> &str {
        let t = self.triple(m.triple);
        match m.slot {
            NpSlot::Subject => &t.subject,
            NpSlot::Object => &t.object,
        }
    }

    /// The phrase of an RP mention.
    pub fn rp_phrase(&self, m: RpMention) -> &str {
        &self.triple(m.0).predicate
    }

    /// All NP mentions (2 per triple), in dense order.
    pub fn np_mentions(&self) -> impl Iterator<Item = NpMention> + '_ {
        (0..self.triples.len() * 2).map(NpMention::from_dense)
    }

    /// All RP mentions (1 per triple), in dense order.
    pub fn rp_mentions(&self) -> impl Iterator<Item = RpMention> + '_ {
        (0..self.triples.len()).map(|i| RpMention(TripleId(i as u32)))
    }

    /// Number of NP mentions.
    pub fn num_np_mentions(&self) -> usize {
        self.triples.len() * 2
    }

    /// Number of RP mentions.
    pub fn num_rp_mentions(&self) -> usize {
        self.triples.len()
    }

    /// The attribute set of an NP mention for the Attribute Overlap
    /// baseline: its `(relation phrase, other NP)` pair as one string.
    pub fn np_attribute(&self, m: NpMention) -> String {
        let t = self.triple(m.triple);
        match m.slot {
            NpSlot::Subject => format!("{}|{}", t.predicate, t.object),
            NpSlot::Object => format!("{}|{}", t.predicate, t.subject),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_okb() -> Okb {
        // The three triples of Figure 1(a).
        let mut okb = Okb::new();
        okb.add_triple(Triple::new("University of Maryland", "locate in", "Maryland"));
        okb.add_triple(Triple::new("UMD", "be a member of", "Universitas 21"));
        okb.add_triple(Triple::new("University of Virginia", "be an early member of", "U21"));
        okb
    }

    #[test]
    fn mention_addressing() {
        let okb = paper_okb();
        assert_eq!(okb.num_np_mentions(), 6);
        assert_eq!(okb.num_rp_mentions(), 3);
        let s2 = NpMention { triple: TripleId(1), slot: NpSlot::Subject };
        assert_eq!(okb.np_phrase(s2), "UMD");
        let o3 = NpMention { triple: TripleId(2), slot: NpSlot::Object };
        assert_eq!(okb.np_phrase(o3), "U21");
        assert_eq!(okb.rp_phrase(RpMention(TripleId(2))), "be an early member of");
    }

    #[test]
    fn dense_roundtrip() {
        for i in 0..10 {
            assert_eq!(NpMention::from_dense(i).dense(), i);
        }
    }

    #[test]
    fn np_mentions_enumerate_in_dense_order() {
        let okb = paper_okb();
        let mentions: Vec<NpMention> = okb.np_mentions().collect();
        assert_eq!(mentions.len(), 6);
        for (i, m) in mentions.iter().enumerate() {
            assert_eq!(m.dense(), i);
        }
    }

    #[test]
    fn attributes_pair_rp_with_other_np() {
        let okb = paper_okb();
        let s1 = NpMention { triple: TripleId(0), slot: NpSlot::Subject };
        assert_eq!(okb.np_attribute(s1), "locate in|Maryland");
        let o1 = NpMention { triple: TripleId(0), slot: NpSlot::Object };
        assert_eq!(okb.np_attribute(o1), "locate in|University of Maryland");
    }

    #[test]
    fn side_info_storage() {
        let mut okb = Okb::new();
        let si = SideInfo {
            subject_candidates: vec![EntityId(3)],
            object_candidates: vec![],
            domain: "education".into(),
        };
        let t =
            okb.add_triple_with_side_info(Triple::new("UMD", "be a member of", "U21"), si.clone());
        assert_eq!(okb.side_info(t), Some(&si));
        let t2 = okb.add_triple(Triple::new("a", "b", "c"));
        assert_eq!(okb.side_info(t2), None);
    }

    #[test]
    fn duplicate_triples_are_idempotent_under_ingest() {
        let mut okb = paper_okb();
        let before = okb.len();
        let dup = Triple::new("UMD", "be a member of", "Universitas 21");
        let (id, fresh) = okb.ingest_triple(dup.clone());
        assert!(!fresh, "re-ingest must be a no-op");
        assert_eq!(id, TripleId(1), "re-ingest returns the original id");
        assert_eq!(okb.len(), before);
        assert_eq!(okb.find_triple(&dup), Some(TripleId(1)));
        // A genuinely new triple still appends.
        let (id2, fresh2) = okb.ingest_triple(Triple::new("a", "b", "c"));
        assert!(fresh2);
        assert_eq!(id2.idx(), before);
    }

    #[test]
    fn add_triple_keeps_duplicates_but_indexes_first() {
        // Batch construction treats each triple as a mention: duplicates
        // stay, and the dedup index points at the first occurrence.
        let mut okb = Okb::new();
        let t = Triple::new("x", "r", "y");
        let a = okb.add_triple(t.clone());
        let b = okb.add_triple(t.clone());
        assert_ne!(a, b);
        assert_eq!(okb.len(), 2);
        assert_eq!(okb.find_triple(&t), Some(a));
    }

    #[test]
    fn empty_okb() {
        let okb = Okb::new();
        assert!(okb.is_empty());
        assert_eq!(okb.np_mentions().count(), 0);
        assert_eq!(okb.rp_mentions().count(), 0);
    }
}
