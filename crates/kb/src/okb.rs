//! The open knowledge base (OKB) model.
//!
//! An OKB is a set of OIE triples `t_i = <s_i, p_i, o_i>` where `s_i`,
//! `o_i` are noun phrases (NPs) and `p_i` is a relation phrase (RP)
//! (paper §2). JOCL's variables are addressed per **mention**:
//!
//! * an [`NpMention`] is one NP occurrence — `(triple, Subject)` or
//!   `(triple, Object)`;
//! * an [`RpMention`] is the RP occurrence of one triple.
//!
//! The paper's canonicalization variables pair *subject mentions with
//! subject mentions* (`x_ij`), *predicates with predicates* (`y_ij`) and
//! *objects with objects* (`z_ij`); the mention addressing here makes that
//! pairing explicit.
//!
//! Optional [`SideInfo`] per triple carries what SIST (§4.2.1) extracts
//! from the original source text: candidate entities seen in context,
//! their types, and a domain tag. Our data generator emits it so the SIST
//! baseline has the same inputs it has in the paper.

use crate::ckb::EntityId;
use crate::error::KbError;

/// Identifier of an OIE triple in an [`Okb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TripleId(pub u32);

impl TripleId {
    /// Index form for slice access.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Which NP slot of a triple a mention occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NpSlot {
    /// The subject NP `s_i`.
    Subject,
    /// The object NP `o_i`.
    Object,
}

/// One NP mention: a triple plus slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NpMention {
    /// Owning triple.
    pub triple: TripleId,
    /// Subject or object position.
    pub slot: NpSlot,
}

impl NpMention {
    /// Dense index: subjects come first (`2·t`), objects second (`2·t+1`).
    #[inline]
    pub fn dense(self) -> usize {
        self.triple.idx() * 2 + matches!(self.slot, NpSlot::Object) as usize
    }

    /// Inverse of [`NpMention::dense`].
    pub fn from_dense(i: usize) -> Self {
        NpMention {
            triple: TripleId((i / 2) as u32),
            slot: if i.is_multiple_of(2) { NpSlot::Subject } else { NpSlot::Object },
        }
    }
}

/// One RP mention: the predicate of a triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RpMention(pub TripleId);

impl RpMention {
    /// Dense index (= triple index).
    #[inline]
    pub fn dense(self) -> usize {
        self.0.idx()
    }
}

/// An OIE triple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Triple {
    /// Subject noun phrase.
    pub subject: String,
    /// Relation phrase.
    pub predicate: String,
    /// Object noun phrase.
    pub object: String,
}

impl Triple {
    /// Convenience constructor.
    pub fn new(subject: &str, predicate: &str, object: &str) -> Self {
        Self {
            subject: subject.to_string(),
            predicate: predicate.to_string(),
            object: object.to_string(),
        }
    }
}

/// Source-text side information for one triple (what SIST consumes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SideInfo {
    /// Entities plausibly referenced near the subject in the source text.
    pub subject_candidates: Vec<EntityId>,
    /// Entities plausibly referenced near the object.
    pub object_candidates: Vec<EntityId>,
    /// Domain tag of the source document (e.g. `"education"`).
    pub domain: String,
}

/// A set of OIE triples with optional per-triple side information.
#[derive(Debug, Clone, Default)]
pub struct Okb {
    triples: Vec<Triple>,
    side_info: Vec<Option<SideInfo>>,
    /// First triple id per distinct `<s, p, o>` — the dedup index behind
    /// [`Okb::ingest_triple`] and [`Okb::find_triple`]. Built lazily
    /// (covers `triples[..dedup_indexed]`) so the batch `add_triple`
    /// path never pays its memory or hashing cost — but once a dedup
    /// query has materialized it, [`Okb::add_triple`] maintains it
    /// incrementally, so mixing the batch and streaming ingest paths
    /// never re-scans the store.
    dedup: jocl_text::fx::FxHashMap<Triple, TripleId>,
    dedup_indexed: usize,
    /// Whether a dedup query has materialized the index yet (from then on
    /// `dedup_indexed == triples.len()` is an invariant).
    dedup_live: bool,
}

impl Okb {
    /// Empty OKB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a triple without side information.
    ///
    /// Duplicates are **allowed** (each call is one OIE *mention* — the
    /// batch datasets deliberately repeat popular triples); use
    /// [`Okb::ingest_triple`] where re-ingest must be a no-op instead.
    pub fn add_triple(&mut self, t: Triple) -> TripleId {
        let id = TripleId(u32::try_from(self.triples.len()).expect("too many triples"));
        // Once a dedup query has materialized the index, keep it current
        // inline: a batch append after streaming use must not leave a gap
        // that the next `ingest_triple` pays to re-scan (satellite fix —
        // the gap used to be closed by an O(appended) scan per query).
        if self.dedup_live {
            debug_assert_eq!(self.dedup_indexed, self.triples.len());
            self.dedup.entry(t.clone()).or_insert(id);
            self.dedup_indexed += 1;
        }
        self.triples.push(t);
        self.side_info.push(None);
        id
    }

    /// Extend the lazy dedup index over any triples appended before it
    /// was first materialized (afterwards [`Okb::add_triple`] maintains
    /// it inline and this is a no-op).
    fn ensure_dedup_index(&mut self) {
        for i in self.dedup_indexed..self.triples.len() {
            self.dedup.entry(self.triples[i].clone()).or_insert(TripleId(i as u32));
        }
        self.dedup_indexed = self.triples.len();
        self.dedup_live = true;
    }

    /// Id of the first triple equal to `t`, if any. (`&mut` because the
    /// dedup index is materialized on first use.)
    pub fn find_triple(&mut self, t: &Triple) -> Option<TripleId> {
        self.ensure_dedup_index();
        self.dedup.get(t).copied()
    }

    /// Idempotent append: if an identical triple is already present,
    /// return its id and `false` without touching the store (mirroring
    /// [`crate::Ckb::add_fact`]'s duplicate behaviour); otherwise append
    /// and return the fresh id and `true`.
    ///
    /// This is the ingest path of the streaming/serving pipeline, where
    /// re-delivered triples must not create a second set of mention
    /// variables or double-count evidence.
    pub fn ingest_triple(&mut self, t: Triple) -> (TripleId, bool) {
        match self.find_triple(&t) {
            Some(id) => (id, false),
            None => {
                let id = self.add_triple(t);
                debug_assert_eq!(self.dedup_indexed, self.triples.len());
                (id, true)
            }
        }
    }

    /// Remove `id` from the dedup index (the triple's text stays in the
    /// store so existing [`TripleId`]s keep resolving). This is the OKB
    /// half of a serving **retraction**: after it, [`Okb::find_triple`]
    /// no longer reports the content, so re-ingesting the same triple
    /// later appends a *fresh* id with fresh mention variables instead
    /// of resurrecting the tombstoned ones.
    ///
    /// Intended for ingest-built OKBs (one id per distinct content). If
    /// batch [`Okb::add_triple`] stored duplicates, only the indexed
    /// first occurrence can be forgotten; the content then simply stops
    /// being indexed.
    pub fn forget_triple(&mut self, id: TripleId) {
        self.ensure_dedup_index();
        let t = self.triples[id.idx()].clone();
        if self.dedup.get(&t) == Some(&id) {
            self.dedup.remove(&t);
        }
    }

    /// Append a triple with side information.
    pub fn add_triple_with_side_info(&mut self, t: Triple, si: SideInfo) -> TripleId {
        let id = self.add_triple(t);
        self.side_info[id.idx()] = Some(si);
        id
    }

    /// Triple accessor.
    pub fn triple(&self, id: TripleId) -> &Triple {
        &self.triples[id.idx()]
    }

    /// Side info accessor.
    pub fn side_info(&self, id: TripleId) -> Option<&SideInfo> {
        self.side_info[id.idx()].as_ref()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// All triples with ids.
    pub fn triples(&self) -> impl Iterator<Item = (TripleId, &Triple)> {
        self.triples.iter().enumerate().map(|(i, t)| (TripleId(i as u32), t))
    }

    /// The phrase of an NP mention.
    pub fn np_phrase(&self, m: NpMention) -> &str {
        let t = self.triple(m.triple);
        match m.slot {
            NpSlot::Subject => &t.subject,
            NpSlot::Object => &t.object,
        }
    }

    /// The phrase of an RP mention.
    pub fn rp_phrase(&self, m: RpMention) -> &str {
        &self.triple(m.0).predicate
    }

    /// All NP mentions (2 per triple), in dense order.
    pub fn np_mentions(&self) -> impl Iterator<Item = NpMention> + '_ {
        (0..self.triples.len() * 2).map(NpMention::from_dense)
    }

    /// All RP mentions (1 per triple), in dense order.
    pub fn rp_mentions(&self) -> impl Iterator<Item = RpMention> + '_ {
        (0..self.triples.len()).map(|i| RpMention(TripleId(i as u32)))
    }

    /// Number of NP mentions.
    pub fn num_np_mentions(&self) -> usize {
        self.triples.len() * 2
    }

    /// Number of RP mentions.
    pub fn num_rp_mentions(&self) -> usize {
        self.triples.len()
    }

    /// Resident heap bytes: triple strings, side info, and the dedup
    /// index (whose keys clone the triple strings). Capacity-based, so
    /// it reports what the allocator actually holds.
    pub fn heap_bytes(&self) -> usize {
        fn strings(t: &Triple) -> usize {
            t.subject.capacity() + t.predicate.capacity() + t.object.capacity()
        }
        self.triples.capacity() * std::mem::size_of::<Triple>()
            + self.triples.iter().map(strings).sum::<usize>()
            + self.side_info.capacity() * std::mem::size_of::<Option<SideInfo>>()
            + self
                .side_info
                .iter()
                .flatten()
                .map(|si| {
                    si.subject_candidates.capacity() * 4
                        + si.object_candidates.capacity() * 4
                        + si.domain.capacity()
                })
                .sum::<usize>()
            + self.dedup.capacity() * (std::mem::size_of::<(Triple, TripleId)>() + 1)
            + self.dedup.keys().map(strings).sum::<usize>()
    }

    /// Serialize the full OKB state — triples, side information and the
    /// dedup index (`&mut` because the index is materialized first) —
    /// into a snapshot section. With retraction in play the index is
    /// *not* derivable from the triples (forgotten entries must stay
    /// forgotten, re-added content must resolve to its new id), so it is
    /// part of the state, serialized as the sorted id list it covers.
    pub fn export_state(&mut self, w: &mut crate::snap::SnapWriter) {
        self.ensure_dedup_index();
        w.tag("OKB");
        w.usize(self.triples.len());
        for t in &self.triples {
            w.str(&t.subject);
            w.str(&t.predicate);
            w.str(&t.object);
        }
        for si in &self.side_info {
            match si {
                None => w.bool(false),
                Some(si) => {
                    w.bool(true);
                    let subj: Vec<u32> = si.subject_candidates.iter().map(|e| e.0).collect();
                    let obj: Vec<u32> = si.object_candidates.iter().map(|e| e.0).collect();
                    w.u32_slice_packed(&subj);
                    w.u32_slice_packed(&obj);
                    w.str(&si.domain);
                }
            }
        }
        let mut indexed: Vec<u32> = self.dedup.values().map(|t| t.0).collect();
        indexed.sort_unstable();
        w.u32_slice_delta(&indexed);
    }

    /// Rebuild an OKB from [`Okb::export_state`] bytes. Validates that
    /// every indexed id is in range and maps to its own content.
    pub fn import_state(r: &mut crate::snap::SnapReader<'_>) -> Result<Okb, KbError> {
        r.expect_tag("OKB")?;
        let n = r.seq_len(24)?;
        let mut okb = Okb::new();
        for _ in 0..n {
            let (s, p, o) = (r.str()?, r.str()?, r.str()?);
            okb.triples.push(Triple { subject: s, predicate: p, object: o });
        }
        for _ in 0..n {
            if r.bool()? {
                let subj = r.u32_vec_packed()?.into_iter().map(EntityId).collect();
                let obj = r.u32_vec_packed()?.into_iter().map(EntityId).collect();
                let domain = r.str()?;
                okb.side_info.push(Some(SideInfo {
                    subject_candidates: subj,
                    object_candidates: obj,
                    domain,
                }));
            } else {
                okb.side_info.push(None);
            }
        }
        for id in r.u32_vec_delta()? {
            if id as usize >= n {
                return Err(r.corrupt(format!("dedup id {id} out of range (have {n} triples)")));
            }
            let t = okb.triples[id as usize].clone();
            if let Some(prev) = okb.dedup.insert(t, TripleId(id)) {
                return Err(
                    r.corrupt(format!("dedup ids {} and {id} index identical content", prev.0))
                );
            }
        }
        okb.dedup_indexed = n;
        okb.dedup_live = true;
        Ok(okb)
    }

    /// The attribute set of an NP mention for the Attribute Overlap
    /// baseline: its `(relation phrase, other NP)` pair as one string.
    pub fn np_attribute(&self, m: NpMention) -> String {
        let t = self.triple(m.triple);
        match m.slot {
            NpSlot::Subject => format!("{}|{}", t.predicate, t.object),
            NpSlot::Object => format!("{}|{}", t.predicate, t.subject),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_okb() -> Okb {
        // The three triples of Figure 1(a).
        let mut okb = Okb::new();
        okb.add_triple(Triple::new("University of Maryland", "locate in", "Maryland"));
        okb.add_triple(Triple::new("UMD", "be a member of", "Universitas 21"));
        okb.add_triple(Triple::new("University of Virginia", "be an early member of", "U21"));
        okb
    }

    #[test]
    fn mention_addressing() {
        let okb = paper_okb();
        assert_eq!(okb.num_np_mentions(), 6);
        assert_eq!(okb.num_rp_mentions(), 3);
        let s2 = NpMention { triple: TripleId(1), slot: NpSlot::Subject };
        assert_eq!(okb.np_phrase(s2), "UMD");
        let o3 = NpMention { triple: TripleId(2), slot: NpSlot::Object };
        assert_eq!(okb.np_phrase(o3), "U21");
        assert_eq!(okb.rp_phrase(RpMention(TripleId(2))), "be an early member of");
    }

    #[test]
    fn dense_roundtrip() {
        for i in 0..10 {
            assert_eq!(NpMention::from_dense(i).dense(), i);
        }
    }

    #[test]
    fn np_mentions_enumerate_in_dense_order() {
        let okb = paper_okb();
        let mentions: Vec<NpMention> = okb.np_mentions().collect();
        assert_eq!(mentions.len(), 6);
        for (i, m) in mentions.iter().enumerate() {
            assert_eq!(m.dense(), i);
        }
    }

    #[test]
    fn attributes_pair_rp_with_other_np() {
        let okb = paper_okb();
        let s1 = NpMention { triple: TripleId(0), slot: NpSlot::Subject };
        assert_eq!(okb.np_attribute(s1), "locate in|Maryland");
        let o1 = NpMention { triple: TripleId(0), slot: NpSlot::Object };
        assert_eq!(okb.np_attribute(o1), "locate in|University of Maryland");
    }

    #[test]
    fn side_info_storage() {
        let mut okb = Okb::new();
        let si = SideInfo {
            subject_candidates: vec![EntityId(3)],
            object_candidates: vec![],
            domain: "education".into(),
        };
        let t =
            okb.add_triple_with_side_info(Triple::new("UMD", "be a member of", "U21"), si.clone());
        assert_eq!(okb.side_info(t), Some(&si));
        let t2 = okb.add_triple(Triple::new("a", "b", "c"));
        assert_eq!(okb.side_info(t2), None);
    }

    #[test]
    fn duplicate_triples_are_idempotent_under_ingest() {
        let mut okb = paper_okb();
        let before = okb.len();
        let dup = Triple::new("UMD", "be a member of", "Universitas 21");
        let (id, fresh) = okb.ingest_triple(dup.clone());
        assert!(!fresh, "re-ingest must be a no-op");
        assert_eq!(id, TripleId(1), "re-ingest returns the original id");
        assert_eq!(okb.len(), before);
        assert_eq!(okb.find_triple(&dup), Some(TripleId(1)));
        // A genuinely new triple still appends.
        let (id2, fresh2) = okb.ingest_triple(Triple::new("a", "b", "c"));
        assert!(fresh2);
        assert_eq!(id2.idx(), before);
    }

    #[test]
    fn add_triple_keeps_duplicates_but_indexes_first() {
        // Batch construction treats each triple as a mention: duplicates
        // stay, and the dedup index points at the first occurrence.
        let mut okb = Okb::new();
        let t = Triple::new("x", "r", "y");
        let a = okb.add_triple(t.clone());
        let b = okb.add_triple(t.clone());
        assert_ne!(a, b);
        assert_eq!(okb.len(), 2);
        assert_eq!(okb.find_triple(&t), Some(a));
    }

    #[test]
    fn empty_okb() {
        let okb = Okb::new();
        assert!(okb.is_empty());
        assert_eq!(okb.np_mentions().count(), 0);
        assert_eq!(okb.rp_mentions().count(), 0);
    }

    /// Satellite regression: once streaming use materializes the dedup
    /// index, later batch `add_triple` calls maintain it inline — mixing
    /// the two paths must stay consistent without re-scanning the store.
    #[test]
    fn mixed_batch_and_streaming_ingest_keeps_dedup_consistent() {
        let mut okb = Okb::new();
        // Batch prefix — index stays unmaterialized (pure lazy path).
        okb.add_triple(Triple::new("a", "r", "b"));
        okb.add_triple(Triple::new("c", "r", "d"));
        assert!(!okb.dedup_live, "batch appends must not materialize the index");
        // First streaming use: catch-up scan, then live maintenance.
        let (_, fresh) = okb.ingest_triple(Triple::new("e", "r", "f"));
        assert!(fresh);
        assert!(okb.dedup_live);
        // Batch appends *after* streaming use are indexed inline…
        let g = okb.add_triple(Triple::new("g", "r", "h"));
        assert_eq!(okb.dedup_indexed, okb.len(), "no gap left behind");
        assert_eq!(okb.find_triple(&Triple::new("g", "r", "h")), Some(g));
        // …including batch duplicates (first occurrence wins, as in the
        // lazy path).
        let dup_first = okb.add_triple(Triple::new("g", "r", "h"));
        assert_ne!(dup_first, g);
        let (id, fresh) = okb.ingest_triple(Triple::new("g", "r", "h"));
        assert!(!fresh);
        assert_eq!(id, g);
        // And streaming dedup still sees the batch prefix.
        let (id, fresh) = okb.ingest_triple(Triple::new("a", "r", "b"));
        assert!(!fresh);
        assert_eq!(id, TripleId(0));
        assert_eq!(okb.len(), 5);
    }

    /// Retraction contract: a forgotten triple stops resolving, and
    /// re-ingesting its content appends a fresh id instead of
    /// resurrecting the old one.
    #[test]
    fn forget_triple_unindexes_and_reingest_appends_fresh() {
        let mut okb = Okb::new();
        let t = Triple::new("UMD", "be a member of", "U21");
        let (first, _) = okb.ingest_triple(t.clone());
        okb.forget_triple(first);
        assert_eq!(okb.find_triple(&t), None, "forgotten content must not resolve");
        assert_eq!(okb.len(), 1, "the text stays in the store");
        let (second, fresh) = okb.ingest_triple(t.clone());
        assert!(fresh, "re-ingest after forget appends");
        assert_ne!(second, first);
        // Forgetting an id the index no longer points at is a no-op.
        okb.forget_triple(first);
        assert_eq!(okb.find_triple(&t), Some(second));
    }

    #[test]
    fn export_import_state_roundtrip_preserves_dedup_and_side_info() {
        let mut okb = Okb::new();
        let si = SideInfo {
            subject_candidates: vec![EntityId(3), EntityId(9)],
            object_candidates: vec![],
            domain: "education".into(),
        };
        okb.add_triple_with_side_info(Triple::new("UMD", "be a member of", "U21"), si.clone());
        let (dead, _) = okb.ingest_triple(Triple::new("gone", "r", "x"));
        let (_, _) = okb.ingest_triple(Triple::new("kept", "r", "y"));
        okb.forget_triple(dead);
        let (readded, _) = okb.ingest_triple(Triple::new("gone", "r", "x"));

        let mut w = crate::snap::SnapWriter::new();
        okb.export_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::snap::SnapReader::new(&bytes);
        let mut restored = Okb::import_state(&mut r).unwrap();
        r.expect_end().unwrap();

        assert_eq!(restored.len(), okb.len());
        for (id, t) in okb.triples() {
            assert_eq!(restored.triple(id), t);
            assert_eq!(restored.side_info(id), okb.side_info(id));
        }
        // The forgotten/re-added structure survives: content resolves to
        // the *new* id, not the tombstoned first occurrence.
        assert_eq!(restored.find_triple(&Triple::new("gone", "r", "x")), Some(readded));
        assert_ne!(readded, dead);
    }

    #[test]
    fn import_state_rejects_out_of_range_dedup_ids() {
        let mut okb = Okb::new();
        okb.ingest_triple(Triple::new("a", "r", "b"));
        let mut w = crate::snap::SnapWriter::new();
        okb.export_state(&mut w);
        let mut bytes = w.into_bytes();
        // The dedup list trails the section as varints: count 1, id 0.
        // Corrupt the id (a single varint byte) out of range.
        assert_eq!(&bytes[bytes.len() - 2..], &[1, 0]);
        let at = bytes.len() - 1;
        bytes[at] = 99;
        let mut r = crate::snap::SnapReader::new(&bytes);
        let msg = Okb::import_state(&mut r).unwrap_err().to_string();
        assert!(msg.contains("out of range"), "{msg}");
    }
}
