//! Minimal TSV persistence for OKBs and CKBs.
//!
//! The approved offline dependency set has no serialization format crate,
//! so datasets are stored as escaped tab-separated values:
//!
//! * `\\`, `\t`, `\n` escape backslash, tab, newline inside fields;
//! * `\p` escapes the `|` list separator used for alias/type lists.
//!
//! Layout:
//!
//! * **OKB** — one file, 3 columns (`subject  predicate  object`) or 6
//!   when side information is attached (`…  subj_cands  obj_cands
//!   domain`, candidate lists comma-separated entity ids).
//! * **CKB** — a directory with `entities.tsv` (`name  aliases  types`),
//!   `relations.tsv` (`name  surfaces  category`), `facts.tsv`
//!   (`s  r  o` ids) and `anchors.tsv` (`surface  entity  count`).

use crate::ckb::{Ckb, CkbRelation, Entity, EntityId, RelationId};
use crate::error::KbError;
use crate::okb::{Okb, SideInfo, Triple};
use crate::side::SideKb;
use std::fs;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Escape a field for TSV embedding.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '|' => out.push_str("\\p"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`]. Unknown escapes are an error.
pub fn unescape(s: &str, line: usize) -> Result<String, KbError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('p') => out.push('|'),
            other => {
                return Err(KbError::Parse {
                    line,
                    msg: format!(
                        "invalid escape sequence \\{}",
                        other.map(String::from).unwrap_or_default()
                    ),
                })
            }
        }
    }
    Ok(out)
}

fn split_fields(line: &str) -> Vec<&str> {
    line.split('\t').collect()
}

fn parse_u32(s: &str, line: usize, what: &str) -> Result<u32, KbError> {
    s.parse::<u32>().map_err(|_| KbError::Parse { line, msg: format!("invalid {what}: {s:?}") })
}

fn parse_u64(s: &str, line: usize, what: &str) -> Result<u64, KbError> {
    s.parse::<u64>().map_err(|_| KbError::Parse { line, msg: format!("invalid {what}: {s:?}") })
}

fn join_list(items: &[String]) -> String {
    items.iter().map(|s| escape(s)).collect::<Vec<_>>().join("|")
}

fn split_list(field: &str, line: usize) -> Result<Vec<String>, KbError> {
    if field.is_empty() {
        return Ok(Vec::new());
    }
    field.split('|').map(|p| unescape(p, line)).collect()
}

fn join_ids(ids: &[EntityId]) -> String {
    ids.iter().map(|e| e.0.to_string()).collect::<Vec<_>>().join(",")
}

fn split_ids(field: &str, line: usize) -> Result<Vec<EntityId>, KbError> {
    if field.is_empty() {
        return Ok(Vec::new());
    }
    field.split(',').map(|p| parse_u32(p, line, "entity id").map(EntityId)).collect()
}

/// Write an OKB to a TSV file.
pub fn write_okb(okb: &Okb, path: &Path) -> Result<(), KbError> {
    let mut w = BufWriter::new(fs::File::create(path)?);
    for (id, t) in okb.triples() {
        let base =
            format!("{}\t{}\t{}", escape(&t.subject), escape(&t.predicate), escape(&t.object));
        match okb.side_info(id) {
            Some(si) => writeln!(
                w,
                "{base}\t{}\t{}\t{}",
                join_ids(&si.subject_candidates),
                join_ids(&si.object_candidates),
                escape(&si.domain)
            )?,
            None => writeln!(w, "{base}")?,
        }
    }
    Ok(())
}

/// Read an OKB from a TSV file.
pub fn read_okb(path: &Path) -> Result<Okb, KbError> {
    let mut okb = Okb::new();
    let reader = BufReader::new(fs::File::open(path)?);
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        let fields = split_fields(&line);
        let triple = match fields.as_slice() {
            [s, p, o] | [s, p, o, ..] => Triple {
                subject: unescape(s, lineno)?,
                predicate: unescape(p, lineno)?,
                object: unescape(o, lineno)?,
            },
            _ => {
                return Err(KbError::Parse {
                    line: lineno,
                    msg: format!("expected 3 or 6 columns, got {}", fields.len()),
                })
            }
        };
        match fields.len() {
            3 => {
                okb.add_triple(triple);
            }
            6 => {
                let si = SideInfo {
                    subject_candidates: split_ids(fields[3], lineno)?,
                    object_candidates: split_ids(fields[4], lineno)?,
                    domain: unescape(fields[5], lineno)?,
                };
                okb.add_triple_with_side_info(triple, si);
            }
            n => {
                return Err(KbError::Parse {
                    line: lineno,
                    msg: format!("expected 3 or 6 columns, got {n}"),
                })
            }
        }
    }
    Ok(okb)
}

/// Write learned weight groups (e.g. factor-graph parameters) as TSV:
/// one line per group, first column the weight count, then the weights.
/// `f64` values are written with Rust's shortest-roundtrip formatting,
/// so [`read_weight_groups`] restores them bit-exactly.
pub fn write_weight_groups(groups: &[Vec<f64>], path: &Path) -> Result<(), KbError> {
    let mut w = BufWriter::new(fs::File::create(path)?);
    for g in groups {
        write!(w, "{}", g.len())?;
        for x in g {
            write!(w, "\t{x}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Read weight groups written by [`write_weight_groups`].
pub fn read_weight_groups(path: &Path) -> Result<Vec<Vec<f64>>, KbError> {
    let reader = BufReader::new(fs::File::open(path)?);
    let mut groups = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        let fields = split_fields(&line);
        let len = fields[0].parse::<usize>().map_err(|_| KbError::Parse {
            line: lineno,
            msg: format!("invalid weight count: {:?}", fields[0]),
        })?;
        if fields.len() != len + 1 {
            return Err(KbError::Parse {
                line: lineno,
                msg: format!("expected {} weights, got {}", len, fields.len() - 1),
            });
        }
        let weights = fields[1..]
            .iter()
            .map(|f| {
                let w = f.parse::<f64>().map_err(|_| KbError::Parse {
                    line: lineno,
                    msg: format!("invalid weight: {f:?}"),
                })?;
                // `f64::parse` accepts "inf"/"NaN"; a weight file holding
                // them is corrupt (training never persists non-finite
                // weights) and would otherwise poison every downstream
                // potential silently.
                if !w.is_finite() {
                    return Err(KbError::Parse {
                        line: lineno,
                        msg: format!("non-finite weight: {f:?}"),
                    });
                }
                Ok(w)
            })
            .collect::<Result<Vec<f64>, KbError>>()?;
        groups.push(weights);
    }
    Ok(groups)
}

/// Write a side-information table as TSV: one row per imported link,
/// 4 columns `kind  surface  target  weight` with kind `e` (entity) or
/// `r` (relation), in the table's canonical order. Weights use Rust's
/// shortest-roundtrip formatting, so [`read_side_kb`] restores them (and
/// the table's [`SideKb::fingerprint`]) bit-exactly.
pub fn write_side_kb(side: &SideKb, path: &Path) -> Result<(), KbError> {
    let mut w = BufWriter::new(fs::File::create(path)?);
    for (kind, surface, target, weight) in side.canonical_rows() {
        writeln!(w, "{kind}\t{}\t{}\t{weight}", escape(surface), escape(target))?;
    }
    Ok(())
}

/// Read a side-information table written by [`write_side_kb`] (or by
/// hand — external alias dictionaries import through this). Every
/// malformed row is a typed per-line [`KbError::Parse`]: wrong column
/// count, unknown kind, blank surface/target, or a weight outside
/// `(0, 1]` (non-finite included).
pub fn read_side_kb(path: &Path) -> Result<SideKb, KbError> {
    let mut side = SideKb::new();
    let reader = BufReader::new(fs::File::open(path)?);
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let f = split_fields(&line);
        if f.len() != 4 {
            return Err(KbError::Parse {
                line: lineno,
                msg: format!(
                    "side table expects 4 columns (kind surface target weight), got {}",
                    f.len()
                ),
            });
        }
        let surface = unescape(f[1], lineno)?;
        let target = unescape(f[2], lineno)?;
        if surface.trim().is_empty() || target.trim().is_empty() {
            return Err(KbError::Parse { line: lineno, msg: "blank surface or target".into() });
        }
        let weight = f[3].parse::<f64>().map_err(|_| KbError::Parse {
            line: lineno,
            msg: format!("invalid weight: {:?}", f[3]),
        })?;
        if !(weight.is_finite() && weight > 0.0 && weight <= 1.0) {
            return Err(KbError::Parse {
                line: lineno,
                msg: format!("weight must be in (0, 1], got {:?}", f[3]),
            });
        }
        match f[0] {
            "e" => side.add_entity_link(&surface, &target, weight),
            "r" => side.add_relation_link(&surface, &target, weight),
            other => {
                return Err(KbError::Parse {
                    line: lineno,
                    msg: format!("kind must be 'e' or 'r', got {other:?}"),
                })
            }
        };
    }
    Ok(side)
}

/// Write a CKB into a directory (created if absent).
pub fn write_ckb(ckb: &Ckb, dir: &Path) -> Result<(), KbError> {
    fs::create_dir_all(dir)?;
    let mut w = BufWriter::new(fs::File::create(dir.join("entities.tsv"))?);
    for (_, e) in ckb.entities() {
        writeln!(w, "{}\t{}\t{}", escape(&e.name), join_list(&e.aliases), join_list(&e.types))?;
    }
    let mut w = BufWriter::new(fs::File::create(dir.join("relations.tsv"))?);
    for (_, r) in ckb.relations() {
        writeln!(
            w,
            "{}\t{}\t{}",
            escape(&r.name),
            join_list(&r.surface_forms),
            escape(&r.category)
        )?;
    }
    let mut w = BufWriter::new(fs::File::create(dir.join("facts.tsv"))?);
    let mut facts: Vec<_> = ckb.facts().collect();
    facts.sort();
    for (s, r, o) in facts {
        writeln!(w, "{}\t{}\t{}", s.0, r.0, o.0)?;
    }
    let mut w = BufWriter::new(fs::File::create(dir.join("anchors.tsv"))?);
    let mut anchors: Vec<(String, EntityId, u64)> = Vec::new();
    for ((surface, entity), count) in ckb.raw_anchors() {
        anchors.push((surface.clone(), *entity, *count));
    }
    anchors.sort();
    for (surface, entity, count) in anchors {
        writeln!(w, "{}\t{}\t{}", escape(&surface), entity.0, count)?;
    }
    Ok(())
}

/// Read a CKB from a directory written by [`write_ckb`].
pub fn read_ckb(dir: &Path) -> Result<Ckb, KbError> {
    let mut ckb = Ckb::new();
    let reader = BufReader::new(fs::File::open(dir.join("entities.tsv"))?);
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        let f = split_fields(&line);
        if f.len() != 3 {
            return Err(KbError::Parse {
                line: lineno,
                msg: format!("entities.tsv expects 3 columns, got {}", f.len()),
            });
        }
        ckb.add_entity(Entity {
            name: unescape(f[0], lineno)?,
            aliases: split_list(f[1], lineno)?,
            types: split_list(f[2], lineno)?,
        });
    }
    let reader = BufReader::new(fs::File::open(dir.join("relations.tsv"))?);
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        let f = split_fields(&line);
        if f.len() != 3 {
            return Err(KbError::Parse {
                line: lineno,
                msg: format!("relations.tsv expects 3 columns, got {}", f.len()),
            });
        }
        ckb.add_relation(CkbRelation {
            name: unescape(f[0], lineno)?,
            surface_forms: split_list(f[1], lineno)?,
            category: unescape(f[2], lineno)?,
        });
    }
    let reader = BufReader::new(fs::File::open(dir.join("facts.tsv"))?);
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        let f = split_fields(&line);
        if f.len() != 3 {
            return Err(KbError::Parse {
                line: lineno,
                msg: format!("facts.tsv expects 3 columns, got {}", f.len()),
            });
        }
        let s = parse_u32(f[0], lineno, "entity id")?;
        let r = parse_u32(f[1], lineno, "relation id")?;
        let o = parse_u32(f[2], lineno, "entity id")?;
        if s as usize >= ckb.num_entities() || o as usize >= ckb.num_entities() {
            return Err(KbError::DanglingRef { kind: "entity", id: s.max(o) });
        }
        if r as usize >= ckb.num_relations() {
            return Err(KbError::DanglingRef { kind: "relation", id: r });
        }
        ckb.add_fact(EntityId(s), RelationId(r), EntityId(o));
    }
    let anchors_path = dir.join("anchors.tsv");
    if anchors_path.exists() {
        let reader = BufReader::new(fs::File::open(anchors_path)?);
        for (i, line) in reader.lines().enumerate() {
            let line = line?;
            let lineno = i + 1;
            if line.is_empty() {
                continue;
            }
            let f = split_fields(&line);
            if f.len() != 3 {
                return Err(KbError::Parse {
                    line: lineno,
                    msg: format!("anchors.tsv expects 3 columns, got {}", f.len()),
                });
            }
            let surface = unescape(f[0], lineno)?;
            let entity = parse_u32(f[1], lineno, "entity id")?;
            let count = parse_u64(f[2], lineno, "anchor count")?;
            if entity as usize >= ckb.num_entities() {
                return Err(KbError::DanglingRef { kind: "entity", id: entity });
            }
            ckb.add_anchor(&surface, EntityId(entity), count);
        }
    }
    Ok(ckb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrip() {
        for s in ["plain", "tab\there", "line\nbreak", "back\\slash", "pipe|sep", ""] {
            assert_eq!(unescape(&escape(s), 1).unwrap(), s);
        }
    }

    #[test]
    fn invalid_escape_is_error() {
        assert!(unescape("bad\\q", 7).is_err());
        assert!(unescape("trailing\\", 7).is_err());
    }

    #[test]
    fn okb_roundtrip() {
        let dir = std::env::temp_dir().join(format!("jocl-kb-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let mut okb = Okb::new();
        okb.add_triple(Triple::new("UMD", "be a member of", "U21"));
        okb.add_triple_with_side_info(
            Triple::new("a|b", "has\ttab", "c"),
            SideInfo {
                subject_candidates: vec![EntityId(1), EntityId(3)],
                object_candidates: vec![],
                domain: "education".into(),
            },
        );
        let path = dir.join("okb.tsv");
        write_okb(&okb, &path).unwrap();
        let loaded = read_okb(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.triple(crate::TripleId(0)), okb.triple(crate::TripleId(0)));
        assert_eq!(loaded.triple(crate::TripleId(1)), okb.triple(crate::TripleId(1)));
        assert_eq!(loaded.side_info(crate::TripleId(1)), okb.side_info(crate::TripleId(1)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ckb_roundtrip() {
        let dir = std::env::temp_dir().join(format!("jocl-ckb-test-{}", std::process::id()));
        let mut ckb = Ckb::new();
        let a = ckb.add_entity(Entity {
            name: "university of maryland".into(),
            aliases: vec!["UMD".into(), "Univ|Maryland".into()],
            types: vec!["university".into()],
        });
        let b = ckb.add_entity(Entity {
            name: "universitas 21".into(),
            aliases: vec!["U21".into()],
            types: vec![],
        });
        let r = ckb.add_relation(CkbRelation {
            name: "member_of".into(),
            surface_forms: vec!["be a member of".into()],
            category: "membership".into(),
        });
        ckb.add_fact(a, r, b);
        ckb.add_anchor("umd", a, 12);
        write_ckb(&ckb, &dir).unwrap();
        let loaded = read_ckb(&dir).unwrap();
        assert_eq!(loaded.num_entities(), 2);
        assert_eq!(loaded.num_relations(), 1);
        assert_eq!(loaded.num_facts(), 1);
        assert!(loaded.has_fact(a, r, b));
        assert_eq!(loaded.entity(a).aliases[1], "Univ|Maryland");
        assert!((loaded.popularity("UMD", a) - 1.0).abs() < 1e-12);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_okb_reports_line() {
        let dir = std::env::temp_dir().join(format!("jocl-corrupt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.tsv");
        fs::write(&path, "good\tp\to\nonly_two\tcolumns\n").unwrap();
        let err = read_okb(&path).unwrap_err();
        match err {
            KbError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dangling_fact_reference_is_error() {
        let dir = std::env::temp_dir().join(format!("jocl-dangle-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("entities.tsv"), "e0\te0\t\n").unwrap();
        fs::write(dir.join("relations.tsv"), "r0\tr0\tcat\n").unwrap();
        fs::write(dir.join("facts.tsv"), "0\t0\t5\n").unwrap();
        let err = read_ckb(&dir).unwrap_err();
        assert!(matches!(err, KbError::DanglingRef { .. }), "{err:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_okb(Path::new("/nonexistent/never/okb.tsv")).unwrap_err();
        assert!(matches!(err, KbError::Io(_)));
    }

    #[test]
    fn weight_groups_roundtrip_bit_exact() {
        let dir = std::env::temp_dir().join(format!("jocl-weights-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("params.tsv");
        let groups = vec![vec![2.0, -1.0 / 3.0, 1.0e-308], vec![], vec![0.1 + 0.2, f64::MAX, -0.0]];
        write_weight_groups(&groups, &path).unwrap();
        let loaded = read_weight_groups(&path).unwrap();
        assert_eq!(loaded.len(), groups.len());
        for (a, b) in groups.iter().zip(&loaded) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
            }
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn weight_groups_malformed_is_error() {
        let dir = std::env::temp_dir().join(format!("jocl-weights-bad-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.tsv");
        fs::write(&path, "2\t1.0\n").unwrap(); // count says 2, only 1 weight
        assert!(matches!(read_weight_groups(&path), Err(KbError::Parse { line: 1, .. })));
        fs::write(&path, "1\tnot-a-number\n").unwrap();
        assert!(read_weight_groups(&path).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn side_kb_roundtrip_preserves_fingerprint() {
        let dir = std::env::temp_dir().join(format!("jocl-side-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("side.tsv");
        let mut side = SideKb::new();
        side.add_entity_link("UMD", "University of Maryland", 0.9);
        side.add_entity_link("pipe|alias", "tab\tname", 1.0 / 3.0);
        side.add_relation_link("be part of", "member_of", 1.0);
        write_side_kb(&side, &path).unwrap();
        let loaded = read_side_kb(&path).unwrap();
        assert_eq!(loaded.num_entity_links(), 2);
        assert_eq!(loaded.num_relation_links(), 1);
        assert_eq!(loaded.fingerprint(), side.fingerprint(), "bit-exact roundtrip");
        assert_eq!(loaded.entity_links("umd")[0].weight, 0.9);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn side_kb_malformed_rows_are_typed_errors() {
        let dir = std::env::temp_dir().join(format!("jocl-side-bad-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.tsv");
        for (bad, what) in [
            ("e\tumd\tuniversity of maryland\n", "3 columns"),
            ("x\tumd\tu\t0.5\n", "unknown kind"),
            ("e\t \tu\t0.5\n", "blank surface"),
            ("e\tumd\tu\tlots\n", "non-numeric weight"),
            ("e\tumd\tu\t0\n", "zero weight"),
            ("e\tumd\tu\t1.5\n", "out-of-range weight"),
            ("e\tumd\tu\tNaN\n", "non-finite weight"),
            ("e\tbad\\q\tu\t0.5\n", "invalid escape"),
        ] {
            fs::write(&path, format!("e\tok\tfine\t0.5\n{bad}")).unwrap();
            match read_side_kb(&path) {
                Err(KbError::Parse { line, .. }) => assert_eq!(line, 2, "{what}"),
                other => panic!("{what}: expected line-2 parse error, got {other:?}"),
            }
        }
        // Comments and blank lines are fine.
        fs::write(&path, "# alias dictionary\n\ne\tumd\tuniversity of maryland\t0.9\n").unwrap();
        assert_eq!(read_side_kb(&path).unwrap().num_entity_links(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn weight_groups_non_finite_is_error() {
        // `f64::parse` happily produces inf/NaN — a weight file holding
        // them must be rejected with a typed parse error, not loaded as
        // garbage.
        let dir = std::env::temp_dir().join(format!("jocl-weights-inf-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inf.tsv");
        for bad in ["1\tinf\n", "1\t-inf\n", "1\tNaN\n", "2\t0.5\tnan\n"] {
            fs::write(&path, bad).unwrap();
            assert!(
                matches!(read_weight_groups(&path), Err(KbError::Parse { line: 1, .. })),
                "{bad:?} must be a parse error"
            );
        }
        fs::remove_dir_all(&dir).ok();
    }
}
