//! Binary snapshot codec for warm serving-session state.
//!
//! The serving subsystem (`jocl_serve`, ROADMAP "session persistence")
//! freezes a whole warm canonicalization session — OKB, blocking index,
//! factor graph, committed LBP messages — so a restarted process resumes
//! without a cold rebuild. Those states are large, numeric and exact
//! (restore must be *bitwise* identical, or the resumed messages are not
//! the committed fixed point), which rules out the TSV codec: floats
//! round-trip through shortest-decimal fine, but a multi-megabyte graph
//! would pay string parsing on the restart hot path.
//!
//! This module is the shared low-level layer: a length-prefixed
//! little-endian binary format with four-byte **section tags**, so a
//! truncated or mixed-up snapshot fails with the section and byte offset
//! it died at ([`KbError::Snapshot`]) instead of garbage state. Framing
//! rules:
//!
//! * integers are `u64` LE (one width everywhere; snapshots are
//!   I/O-bound, not size-bound), `f64` as raw bits;
//! * sequences are a `u64` length followed by the elements;
//! * strings are length-prefixed UTF-8;
//! * composite states start with a tag ([`SnapWriter::tag`] /
//!   [`SnapReader::expect_tag`]) naming the writer that produced them.
//!
//! Writers are infallible (they build a `Vec<u8>`); every reader returns
//! `Result<_, KbError>` and never panics on malformed input — corrupt
//! snapshots are an *operational* condition (killed writer, wrong file),
//! not a programming error.

use crate::error::KbError;

/// Serializer half of the codec: appends to an owned byte buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish and take the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True before the first write.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a four-byte section tag (pad/truncate to 4 bytes).
    pub fn tag(&mut self, tag: &str) {
        let mut b = [b' '; 4];
        for (dst, src) in b.iter_mut().zip(tag.bytes()) {
            *dst = src;
        }
        self.buf.extend_from_slice(&b);
    }

    /// Write one `u64` (LE).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write one `usize` (as `u64`).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write one `u32` (widened to `u64`).
    pub fn u32(&mut self, v: u32) {
        self.u64(v as u64);
    }

    /// Write one `bool` (as `u64` 0/1).
    pub fn bool(&mut self, v: bool) {
        self.u64(u64::from(v));
    }

    /// Write one `f64` as raw bits (bit-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write a varint-length-prefixed UTF-8 string (one length byte for
    /// anything under 128 bytes, vs. the fixed 8 of [`SnapWriter::str`]).
    pub fn vstr(&mut self, s: &str) {
        self.vu64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write a length-prefixed `f64` slice.
    pub fn f64_slice(&mut self, xs: &[f64]) {
        self.usize(xs.len());
        for &x in xs {
            self.f64(x);
        }
    }

    /// Write a length-prefixed `u32` slice.
    pub fn u32_slice(&mut self, xs: &[u32]) {
        self.usize(xs.len());
        for &x in xs {
            self.u32(x);
        }
    }

    /// Write a length-prefixed bool slice.
    pub fn bool_slice(&mut self, xs: &[bool]) {
        self.usize(xs.len());
        for &x in xs {
            self.bool(x);
        }
    }

    /// Write one `u64` as a LEB128 varint (1–10 bytes; small values
    /// dominate snapshot payloads, so this is the packed-section
    /// workhorse).
    pub fn vu64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Write a `u32` slice as varints (length + values). ~1–2 bytes per
    /// small id instead of the 8 the legacy [`SnapWriter::u32_slice`]
    /// spends.
    pub fn u32_slice_packed(&mut self, xs: &[u32]) {
        self.vu64(xs.len() as u64);
        for &x in xs {
            self.vu64(x as u64);
        }
    }

    /// Write a **non-decreasing** `u32` slice as first value + varint
    /// deltas. Sorted id runs (owners, links, pair columns) collapse to
    /// ~1 byte per element. Panics in debug builds if the input is not
    /// sorted; release builds would produce a stream the reader rejects.
    pub fn u32_slice_delta(&mut self, xs: &[u32]) {
        self.vu64(xs.len() as u64);
        let mut prev = 0u32;
        for (i, &x) in xs.iter().enumerate() {
            debug_assert!(i == 0 || x >= prev, "u32_slice_delta input must be non-decreasing");
            self.vu64(if i == 0 { x as u64 } else { (x - prev) as u64 });
            prev = x;
        }
    }

    /// Write an `f64` slice XOR-delta packed: each value's bits are
    /// XORed with the previous value's bits and written as a varint.
    /// Near-converged arenas (runs of equal or close values sharing
    /// sign/exponent/high-mantissa bits) collapse to a byte or two per
    /// element; incompressible data falls back to the raw image via a
    /// mode byte, so the packed form is never more than one byte worse.
    /// Bit-exact either way.
    pub fn f64_slice_packed(&mut self, xs: &[f64]) {
        let mut packed = 0usize;
        let mut prev = 0u64;
        for &x in xs {
            let word = x.to_bits() ^ prev;
            packed += varint_len(word);
            prev = x.to_bits();
        }
        if packed < xs.len() * 8 {
            self.buf.push(1);
            self.vu64(xs.len() as u64);
            let mut prev = 0u64;
            for &x in xs {
                self.vu64(x.to_bits() ^ prev);
                prev = x.to_bits();
            }
        } else {
            self.buf.push(0);
            self.vu64(xs.len() as u64);
            for &x in xs {
                self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
    }

    /// Write an `f32` slice as raw bits (bit-exact; quantized residuals
    /// are already dense, so no further packing).
    pub fn f32_slice(&mut self, xs: &[f32]) {
        self.vu64(xs.len() as u64);
        for &x in xs {
            self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }

    /// Write a bool slice as a bitset (1 bit per flag instead of the
    /// 8 bytes the legacy [`SnapWriter::bool_slice`] spends).
    pub fn bool_slice_packed(&mut self, xs: &[bool]) {
        self.vu64(xs.len() as u64);
        let mut byte = 0u8;
        for (i, &x) in xs.iter().enumerate() {
            byte |= (x as u8) << (i % 8);
            if i % 8 == 7 {
                self.buf.push(byte);
                byte = 0;
            }
        }
        if !xs.len().is_multiple_of(8) {
            self.buf.push(byte);
        }
    }

    /// Write a raw byte blob (length-prefixed, verbatim).
    pub fn bytes(&mut self, xs: &[u8]) {
        self.vu64(xs.len() as u64);
        self.buf.extend_from_slice(xs);
    }
}

/// Encoded length of one LEB128 varint.
fn varint_len(v: u64) -> usize {
    (64 - (v | 1).leading_zeros() as usize).div_ceil(7).max(1)
}

/// Deserializer half: a cursor over a byte slice. Every accessor checks
/// bounds and reports the failing offset.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current byte offset (for error context).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Error constructor pinned to the current offset.
    pub fn corrupt(&self, msg: impl Into<String>) -> KbError {
        KbError::Snapshot { offset: self.pos, msg: msg.into() }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], KbError> {
        if self.buf.len() - self.pos < n {
            return Err(self.corrupt(format!(
                "truncated: need {n} more bytes for {what}, {} left",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read and verify a four-byte section tag.
    pub fn expect_tag(&mut self, tag: &str) -> Result<(), KbError> {
        let at = self.pos;
        let got = self.take(4, "section tag")?;
        let mut want = [b' '; 4];
        for (dst, src) in want.iter_mut().zip(tag.bytes()) {
            *dst = src;
        }
        if got != want {
            return Err(KbError::Snapshot {
                offset: at,
                msg: format!("expected section {tag:?}, found {:?}", String::from_utf8_lossy(got)),
            });
        }
        Ok(())
    }

    /// Read one `u64`.
    pub fn u64(&mut self) -> Result<u64, KbError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Read one `usize` (written as `u64`).
    pub fn usize(&mut self) -> Result<usize, KbError> {
        let at = self.pos;
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| KbError::Snapshot { offset: at, msg: format!("{v} overflows usize") })
    }

    /// Read one `u32` (written widened).
    pub fn u32(&mut self) -> Result<u32, KbError> {
        let at = self.pos;
        let v = self.u64()?;
        u32::try_from(v)
            .map_err(|_| KbError::Snapshot { offset: at, msg: format!("{v} overflows u32") })
    }

    /// Read one bool (0/1).
    pub fn bool(&mut self) -> Result<bool, KbError> {
        let at = self.pos;
        match self.u64()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(KbError::Snapshot { offset: at, msg: format!("bool must be 0/1, got {v}") }),
        }
    }

    /// Read one `f64` from raw bits.
    pub fn f64(&mut self) -> Result<f64, KbError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a sequence length, sanity-capped against the remaining bytes
    /// (`min_elem_bytes` per element) so corrupt lengths fail here rather
    /// than in an allocation.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, KbError> {
        let at = self.pos;
        let n = self.usize()?;
        let left = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes.max(1)) > left {
            return Err(KbError::Snapshot {
                offset: at,
                msg: format!("sequence length {n} exceeds the {left} bytes remaining"),
            });
        }
        Ok(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, KbError> {
        let n = self.seq_len(1)?;
        let at = self.pos;
        let b = self.take(n, "string payload")?;
        String::from_utf8(b.to_vec())
            .map_err(|e| KbError::Snapshot { offset: at, msg: format!("invalid utf-8: {e}") })
    }

    /// Read a varint-length-prefixed UTF-8 string.
    pub fn vstr(&mut self) -> Result<String, KbError> {
        let n = self.vseq_len(1)?;
        let at = self.pos;
        let b = self.take(n, "string payload")?;
        String::from_utf8(b.to_vec())
            .map_err(|e| KbError::Snapshot { offset: at, msg: format!("invalid utf-8: {e}") })
    }

    /// Read a length-prefixed `f64` vector.
    pub fn f64_vec(&mut self) -> Result<Vec<f64>, KbError> {
        let n = self.seq_len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Read a length-prefixed `u32` vector.
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, KbError> {
        let n = self.seq_len(8)?;
        (0..n).map(|_| self.u32()).collect()
    }

    /// Read a length-prefixed bool vector.
    pub fn bool_vec(&mut self) -> Result<Vec<bool>, KbError> {
        let n = self.seq_len(8)?;
        (0..n).map(|_| self.bool()).collect()
    }

    /// Read one LEB128 varint `u64`.
    pub fn vu64(&mut self) -> Result<u64, KbError> {
        let at = self.pos;
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.take(1, "varint byte")?[0];
            let low = (b & 0x7f) as u64;
            if shift == 63 && low > 1 {
                return Err(KbError::Snapshot {
                    offset: at,
                    msg: "varint overflows u64".to_string(),
                });
            }
            v |= low << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(KbError::Snapshot { offset: at, msg: "varint runs past 10 bytes".to_string() })
    }

    /// Read a packed-sequence length (varint), sanity-capped against the
    /// remaining bytes at `min_elem_bytes` per element.
    pub fn vseq_len(&mut self, min_elem_bytes: usize) -> Result<usize, KbError> {
        let at = self.pos;
        let v = self.vu64()?;
        let n = usize::try_from(v)
            .map_err(|_| KbError::Snapshot { offset: at, msg: format!("{v} overflows usize") })?;
        let left = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes.max(1)) > left {
            return Err(KbError::Snapshot {
                offset: at,
                msg: format!("packed sequence length {n} exceeds the {left} bytes remaining"),
            });
        }
        Ok(n)
    }

    /// Read a varint-packed `u32` vector ([`SnapWriter::u32_slice_packed`]).
    pub fn u32_vec_packed(&mut self) -> Result<Vec<u32>, KbError> {
        let n = self.vseq_len(1)?;
        (0..n)
            .map(|_| {
                let at = self.pos;
                let v = self.vu64()?;
                u32::try_from(v).map_err(|_| KbError::Snapshot {
                    offset: at,
                    msg: format!("{v} overflows u32"),
                })
            })
            .collect()
    }

    /// Read a delta-packed non-decreasing `u32` vector
    /// ([`SnapWriter::u32_slice_delta`]).
    pub fn u32_vec_delta(&mut self) -> Result<Vec<u32>, KbError> {
        let n = self.vseq_len(1)?;
        let mut out = Vec::with_capacity(n);
        let mut prev = 0u64;
        for i in 0..n {
            let at = self.pos;
            let d = self.vu64()?;
            let v = if i == 0 { d } else { prev + d };
            if v > u32::MAX as u64 {
                return Err(KbError::Snapshot {
                    offset: at,
                    msg: format!("delta sequence climbs past u32 ({v})"),
                });
            }
            out.push(v as u32);
            prev = v;
        }
        Ok(out)
    }

    /// Read a packed `f64` vector ([`SnapWriter::f64_slice_packed`]).
    pub fn f64_vec_packed(&mut self) -> Result<Vec<f64>, KbError> {
        let at = self.pos;
        let mode = self.take(1, "f64 slice mode byte")?[0];
        match mode {
            0 => {
                let n = self.vseq_len(8)?;
                (0..n)
                    .map(|_| {
                        let b = self.take(8, "raw f64")?;
                        Ok(f64::from_bits(u64::from_le_bytes(b.try_into().expect("8-byte slice"))))
                    })
                    .collect()
            }
            1 => {
                let n = self.vseq_len(1)?;
                let mut out = Vec::with_capacity(n);
                let mut prev = 0u64;
                for _ in 0..n {
                    prev ^= self.vu64()?;
                    out.push(f64::from_bits(prev));
                }
                Ok(out)
            }
            m => Err(KbError::Snapshot { offset: at, msg: format!("unknown f64 slice mode {m}") }),
        }
    }

    /// Read an `f32` vector ([`SnapWriter::f32_slice`]).
    pub fn f32_vec(&mut self) -> Result<Vec<f32>, KbError> {
        let n = self.vseq_len(4)?;
        (0..n)
            .map(|_| {
                let b = self.take(4, "raw f32")?;
                Ok(f32::from_bits(u32::from_le_bytes(b.try_into().expect("4-byte slice"))))
            })
            .collect()
    }

    /// Read a bitset-packed bool vector ([`SnapWriter::bool_slice_packed`]).
    pub fn bool_vec_packed(&mut self) -> Result<Vec<bool>, KbError> {
        let at = self.pos;
        let v = self.vu64()?;
        let n = usize::try_from(v)
            .map_err(|_| KbError::Snapshot { offset: at, msg: format!("{v} overflows usize") })?;
        // The bitset spends one *bit* per flag, so cap against bitset
        // bytes rather than the 1-byte-per-element vseq_len floor.
        let nb = n.div_ceil(8);
        if nb > self.buf.len() - self.pos {
            return Err(KbError::Snapshot {
                offset: at,
                msg: format!(
                    "bitset length {n} needs {nb} bytes, {} remaining",
                    self.buf.len() - self.pos
                ),
            });
        }
        let at = self.pos;
        let bytes = self.take(nb, "bool bitset")?;
        if !n.is_multiple_of(8) && bytes[nb - 1] >> (n % 8) != 0 {
            return Err(KbError::Snapshot {
                offset: at + nb - 1,
                msg: "nonzero padding bits in bool bitset".to_string(),
            });
        }
        Ok((0..n).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1).collect())
    }

    /// Read a length-prefixed raw byte blob ([`SnapWriter::bytes`]).
    pub fn bytes(&mut self) -> Result<Vec<u8>, KbError> {
        let n = self.vseq_len(1)?;
        Ok(self.take(n, "byte blob")?.to_vec())
    }

    /// Fail unless every byte was consumed — a snapshot with trailing
    /// garbage was produced by a different writer than this reader.
    pub fn expect_end(&self) -> Result<(), KbError> {
        if self.is_done() {
            Ok(())
        } else {
            Err(self.corrupt(format!(
                "{} trailing bytes after the last section",
                self.buf.len() - self.pos
            )))
        }
    }
}

/// FNV-1a checksum over a byte slice — cheap integrity guard appended to
/// snapshot files so a torn write fails loudly at restore time.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip_is_bit_exact() {
        let mut w = SnapWriter::new();
        w.tag("TEST");
        w.u64(u64::MAX);
        w.u32(7);
        w.bool(true);
        w.f64(0.1 + 0.2);
        w.f64(-0.0);
        w.str("universität 🦀");
        w.f64_slice(&[1.5, f64::MIN_POSITIVE]);
        w.u32_slice(&[0, 42]);
        w.bool_slice(&[true, false]);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        r.expect_tag("TEST").unwrap();
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.u32().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.str().unwrap(), "universität 🦀");
        assert_eq!(r.f64_vec().unwrap(), vec![1.5, f64::MIN_POSITIVE]);
        assert_eq!(r.u32_vec().unwrap(), vec![0, 42]);
        assert_eq!(r.bool_vec().unwrap(), vec![true, false]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_reports_offset() {
        let mut w = SnapWriter::new();
        w.u64(1);
        let mut bytes = w.into_bytes();
        bytes.truncate(5);
        let mut r = SnapReader::new(&bytes);
        match r.u64() {
            Err(KbError::Snapshot { offset: 0, msg }) => {
                assert!(msg.contains("truncated"), "{msg}")
            }
            other => panic!("expected truncation error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_tag_names_both_sections() {
        let mut w = SnapWriter::new();
        w.tag("OKB");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let msg = r.expect_tag("PLAN").unwrap_err().to_string();
        assert!(msg.contains("PLAN") && msg.contains("OKB"), "{msg}");
    }

    #[test]
    fn hostile_length_is_rejected_before_allocation() {
        let mut w = SnapWriter::new();
        w.u64(u64::MAX); // claimed sequence length
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let msg = r.f64_vec().unwrap_err().to_string();
        assert!(msg.contains("exceeds"), "{msg}");
    }

    #[test]
    fn non_utf8_string_is_a_typed_error() {
        let mut w = SnapWriter::new();
        w.usize(2);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        let mut r = SnapReader::new(&bytes);
        assert!(r.str().unwrap_err().to_string().contains("utf-8"));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut w = SnapWriter::new();
        w.u64(3);
        let mut bytes = w.into_bytes();
        bytes.push(0);
        let mut r = SnapReader::new(&bytes);
        r.u64().unwrap();
        assert!(r.expect_end().unwrap_err().to_string().contains("trailing"));
    }

    #[test]
    fn packed_roundtrip_is_bit_exact() {
        let ids: Vec<u32> = vec![0, 1, 127, 128, 16384, u32::MAX];
        let sorted: Vec<u32> = vec![0, 0, 3, 900, 900, 1_000_000, u32::MAX];
        let floats = vec![-0.69, -0.69, -0.6900000001, f64::NEG_INFINITY, f64::NAN, -0.0, 1e300];
        let small: Vec<f32> = vec![0.5, -0.0, f32::NAN, f32::INFINITY];
        let flags: Vec<bool> = (0..19).map(|i| i % 3 == 0).collect();
        let mut w = SnapWriter::new();
        w.vu64(0);
        w.vu64(u64::MAX);
        w.u32_slice_packed(&ids);
        w.u32_slice_delta(&sorted);
        w.f64_slice_packed(&floats);
        w.f32_slice(&small);
        w.bool_slice_packed(&flags);
        w.bytes(&[7, 0, 255]);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.vu64().unwrap(), 0);
        assert_eq!(r.vu64().unwrap(), u64::MAX);
        assert_eq!(r.u32_vec_packed().unwrap(), ids);
        assert_eq!(r.u32_vec_delta().unwrap(), sorted);
        let back = r.f64_vec_packed().unwrap();
        assert_eq!(back.len(), floats.len());
        for (a, b) in floats.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let back = r.f32_vec().unwrap();
        for (a, b) in small.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(r.bool_vec_packed().unwrap(), flags);
        assert_eq!(r.bytes().unwrap(), vec![7, 0, 255]);
        r.expect_end().unwrap();
    }

    #[test]
    fn packed_encodings_actually_shrink() {
        // Sorted ids: delta varints ≈ 1 byte each vs 8.
        let sorted: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        let mut w = SnapWriter::new();
        w.u32_slice_delta(&sorted);
        assert!(w.len() < 1000 * 2, "{} bytes for 1000 sorted ids", w.len());
        // A near-converged arena: long runs of identical values XOR to
        // zero words.
        let arena: Vec<f64> = (0..1000).map(|i| -0.693 - ((i / 100) as f64) * 1e-9).collect();
        let mut w = SnapWriter::new();
        w.f64_slice_packed(&arena);
        assert!(w.len() < 1000 * 4, "{} bytes for 1000 near-equal f64s", w.len());
        // Incompressible data falls back to raw + mode byte.
        let noise: Vec<f64> = (0..100)
            .map(|i| f64::from_bits(0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 | 1)))
            .collect();
        let mut w = SnapWriter::new();
        w.f64_slice_packed(&noise);
        assert!(w.len() <= 100 * 8 + 3, "{} bytes for 100 raw f64s", w.len());
        // Bitset: 8 flags per byte.
        let mut w = SnapWriter::new();
        w.bool_slice_packed(&vec![true; 800]);
        assert_eq!(w.len(), 2 + 100);
    }

    #[test]
    fn packed_corruption_is_typed_never_a_panic() {
        // Unterminated varint (all continuation bits).
        let mut r = SnapReader::new(&[0xff; 11]);
        assert!(r.vu64().unwrap_err().to_string().contains("varint"));
        // Varint overflowing u64 in the 10th byte.
        let mut r = SnapReader::new(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f]);
        assert!(r.vu64().unwrap_err().to_string().contains("overflows u64"));
        // Hostile packed length.
        let mut w = SnapWriter::new();
        w.vu64(u64::MAX / 2);
        let bytes = w.into_bytes();
        assert!(SnapReader::new(&bytes)
            .u32_vec_packed()
            .unwrap_err()
            .to_string()
            .contains("exceeds"));
        // Delta sequence climbing past u32.
        let mut w = SnapWriter::new();
        w.vu64(2);
        w.vu64(u32::MAX as u64);
        w.vu64(1);
        let bytes = w.into_bytes();
        assert!(SnapReader::new(&bytes)
            .u32_vec_delta()
            .unwrap_err()
            .to_string()
            .contains("past u32"));
        // Unknown f64 mode byte.
        let mut r = SnapReader::new(&[9]);
        assert!(r.f64_vec_packed().unwrap_err().to_string().contains("mode"));
        // Nonzero padding bits in a bitset.
        let mut w = SnapWriter::new();
        w.vu64(3);
        let mut bytes = w.into_bytes();
        bytes.push(0xf0);
        assert!(SnapReader::new(&bytes)
            .bool_vec_packed()
            .unwrap_err()
            .to_string()
            .contains("padding"));
        // Hostile bitset length against a short buffer.
        let mut w = SnapWriter::new();
        w.vu64(1 << 40);
        let bytes = w.into_bytes();
        assert!(SnapReader::new(&bytes)
            .bool_vec_packed()
            .unwrap_err()
            .to_string()
            .contains("bitset"));
        // Truncated f32 payload: the length sanity cap catches it before
        // any element read.
        let mut w = SnapWriter::new();
        w.f32_slice(&[1.0, 2.0]);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..bytes.len() - 2]);
        assert!(r.f32_vec().unwrap_err().to_string().contains("exceeds"));
    }

    #[test]
    fn fnv_detects_single_bit_flips() {
        let mut w = SnapWriter::new();
        w.f64_slice(&[1.0, 2.0, 3.0]);
        let mut bytes = w.into_bytes();
        let sum = fnv1a(&bytes);
        bytes[9] ^= 1;
        assert_ne!(fnv1a(&bytes), sum);
    }
}
