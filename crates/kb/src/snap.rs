//! Binary snapshot codec for warm serving-session state.
//!
//! The serving subsystem (`jocl_serve`, ROADMAP "session persistence")
//! freezes a whole warm canonicalization session — OKB, blocking index,
//! factor graph, committed LBP messages — so a restarted process resumes
//! without a cold rebuild. Those states are large, numeric and exact
//! (restore must be *bitwise* identical, or the resumed messages are not
//! the committed fixed point), which rules out the TSV codec: floats
//! round-trip through shortest-decimal fine, but a multi-megabyte graph
//! would pay string parsing on the restart hot path.
//!
//! This module is the shared low-level layer: a length-prefixed
//! little-endian binary format with four-byte **section tags**, so a
//! truncated or mixed-up snapshot fails with the section and byte offset
//! it died at ([`KbError::Snapshot`]) instead of garbage state. Framing
//! rules:
//!
//! * integers are `u64` LE (one width everywhere; snapshots are
//!   I/O-bound, not size-bound), `f64` as raw bits;
//! * sequences are a `u64` length followed by the elements;
//! * strings are length-prefixed UTF-8;
//! * composite states start with a tag ([`SnapWriter::tag`] /
//!   [`SnapReader::expect_tag`]) naming the writer that produced them.
//!
//! Writers are infallible (they build a `Vec<u8>`); every reader returns
//! `Result<_, KbError>` and never panics on malformed input — corrupt
//! snapshots are an *operational* condition (killed writer, wrong file),
//! not a programming error.

use crate::error::KbError;

/// Serializer half of the codec: appends to an owned byte buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish and take the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True before the first write.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a four-byte section tag (pad/truncate to 4 bytes).
    pub fn tag(&mut self, tag: &str) {
        let mut b = [b' '; 4];
        for (dst, src) in b.iter_mut().zip(tag.bytes()) {
            *dst = src;
        }
        self.buf.extend_from_slice(&b);
    }

    /// Write one `u64` (LE).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write one `usize` (as `u64`).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write one `u32` (widened to `u64`).
    pub fn u32(&mut self, v: u32) {
        self.u64(v as u64);
    }

    /// Write one `bool` (as `u64` 0/1).
    pub fn bool(&mut self, v: bool) {
        self.u64(u64::from(v));
    }

    /// Write one `f64` as raw bits (bit-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write a length-prefixed `f64` slice.
    pub fn f64_slice(&mut self, xs: &[f64]) {
        self.usize(xs.len());
        for &x in xs {
            self.f64(x);
        }
    }

    /// Write a length-prefixed `u32` slice.
    pub fn u32_slice(&mut self, xs: &[u32]) {
        self.usize(xs.len());
        for &x in xs {
            self.u32(x);
        }
    }

    /// Write a length-prefixed bool slice.
    pub fn bool_slice(&mut self, xs: &[bool]) {
        self.usize(xs.len());
        for &x in xs {
            self.bool(x);
        }
    }
}

/// Deserializer half: a cursor over a byte slice. Every accessor checks
/// bounds and reports the failing offset.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current byte offset (for error context).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Error constructor pinned to the current offset.
    pub fn corrupt(&self, msg: impl Into<String>) -> KbError {
        KbError::Snapshot { offset: self.pos, msg: msg.into() }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], KbError> {
        if self.buf.len() - self.pos < n {
            return Err(self.corrupt(format!(
                "truncated: need {n} more bytes for {what}, {} left",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read and verify a four-byte section tag.
    pub fn expect_tag(&mut self, tag: &str) -> Result<(), KbError> {
        let at = self.pos;
        let got = self.take(4, "section tag")?;
        let mut want = [b' '; 4];
        for (dst, src) in want.iter_mut().zip(tag.bytes()) {
            *dst = src;
        }
        if got != want {
            return Err(KbError::Snapshot {
                offset: at,
                msg: format!("expected section {tag:?}, found {:?}", String::from_utf8_lossy(got)),
            });
        }
        Ok(())
    }

    /// Read one `u64`.
    pub fn u64(&mut self) -> Result<u64, KbError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Read one `usize` (written as `u64`).
    pub fn usize(&mut self) -> Result<usize, KbError> {
        let at = self.pos;
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| KbError::Snapshot { offset: at, msg: format!("{v} overflows usize") })
    }

    /// Read one `u32` (written widened).
    pub fn u32(&mut self) -> Result<u32, KbError> {
        let at = self.pos;
        let v = self.u64()?;
        u32::try_from(v)
            .map_err(|_| KbError::Snapshot { offset: at, msg: format!("{v} overflows u32") })
    }

    /// Read one bool (0/1).
    pub fn bool(&mut self) -> Result<bool, KbError> {
        let at = self.pos;
        match self.u64()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(KbError::Snapshot { offset: at, msg: format!("bool must be 0/1, got {v}") }),
        }
    }

    /// Read one `f64` from raw bits.
    pub fn f64(&mut self) -> Result<f64, KbError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a sequence length, sanity-capped against the remaining bytes
    /// (`min_elem_bytes` per element) so corrupt lengths fail here rather
    /// than in an allocation.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, KbError> {
        let at = self.pos;
        let n = self.usize()?;
        let left = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes.max(1)) > left {
            return Err(KbError::Snapshot {
                offset: at,
                msg: format!("sequence length {n} exceeds the {left} bytes remaining"),
            });
        }
        Ok(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, KbError> {
        let n = self.seq_len(1)?;
        let at = self.pos;
        let b = self.take(n, "string payload")?;
        String::from_utf8(b.to_vec())
            .map_err(|e| KbError::Snapshot { offset: at, msg: format!("invalid utf-8: {e}") })
    }

    /// Read a length-prefixed `f64` vector.
    pub fn f64_vec(&mut self) -> Result<Vec<f64>, KbError> {
        let n = self.seq_len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Read a length-prefixed `u32` vector.
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, KbError> {
        let n = self.seq_len(8)?;
        (0..n).map(|_| self.u32()).collect()
    }

    /// Read a length-prefixed bool vector.
    pub fn bool_vec(&mut self) -> Result<Vec<bool>, KbError> {
        let n = self.seq_len(8)?;
        (0..n).map(|_| self.bool()).collect()
    }

    /// Fail unless every byte was consumed — a snapshot with trailing
    /// garbage was produced by a different writer than this reader.
    pub fn expect_end(&self) -> Result<(), KbError> {
        if self.is_done() {
            Ok(())
        } else {
            Err(self.corrupt(format!(
                "{} trailing bytes after the last section",
                self.buf.len() - self.pos
            )))
        }
    }
}

/// FNV-1a checksum over a byte slice — cheap integrity guard appended to
/// snapshot files so a torn write fails loudly at restore time.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip_is_bit_exact() {
        let mut w = SnapWriter::new();
        w.tag("TEST");
        w.u64(u64::MAX);
        w.u32(7);
        w.bool(true);
        w.f64(0.1 + 0.2);
        w.f64(-0.0);
        w.str("universität 🦀");
        w.f64_slice(&[1.5, f64::MIN_POSITIVE]);
        w.u32_slice(&[0, 42]);
        w.bool_slice(&[true, false]);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        r.expect_tag("TEST").unwrap();
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.u32().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.str().unwrap(), "universität 🦀");
        assert_eq!(r.f64_vec().unwrap(), vec![1.5, f64::MIN_POSITIVE]);
        assert_eq!(r.u32_vec().unwrap(), vec![0, 42]);
        assert_eq!(r.bool_vec().unwrap(), vec![true, false]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_reports_offset() {
        let mut w = SnapWriter::new();
        w.u64(1);
        let mut bytes = w.into_bytes();
        bytes.truncate(5);
        let mut r = SnapReader::new(&bytes);
        match r.u64() {
            Err(KbError::Snapshot { offset: 0, msg }) => {
                assert!(msg.contains("truncated"), "{msg}")
            }
            other => panic!("expected truncation error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_tag_names_both_sections() {
        let mut w = SnapWriter::new();
        w.tag("OKB");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let msg = r.expect_tag("PLAN").unwrap_err().to_string();
        assert!(msg.contains("PLAN") && msg.contains("OKB"), "{msg}");
    }

    #[test]
    fn hostile_length_is_rejected_before_allocation() {
        let mut w = SnapWriter::new();
        w.u64(u64::MAX); // claimed sequence length
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let msg = r.f64_vec().unwrap_err().to_string();
        assert!(msg.contains("exceeds"), "{msg}");
    }

    #[test]
    fn non_utf8_string_is_a_typed_error() {
        let mut w = SnapWriter::new();
        w.usize(2);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        let mut r = SnapReader::new(&bytes);
        assert!(r.str().unwrap_err().to_string().contains("utf-8"));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut w = SnapWriter::new();
        w.u64(3);
        let mut bytes = w.into_bytes();
        bytes.push(0);
        let mut r = SnapReader::new(&bytes);
        r.u64().unwrap();
        assert!(r.expect_end().unwrap_err().to_string().contains("trailing"));
    }

    #[test]
    fn fnv_detects_single_bit_flips() {
        let mut w = SnapWriter::new();
        w.f64_slice(&[1.0, 2.0, 3.0]);
        let mut bytes = w.into_bytes();
        let sum = fnv1a(&bytes);
        bytes[9] ^= 1;
        assert_ne!(fnv1a(&bytes), sum);
    }
}
