//! The curated knowledge base (CKB) model.
//!
//! Mirrors the role Freebase/DBpedia play in the paper: a set of
//! canonicalized entities `E`, relations `R` and facts
//! `<e_i, r_k, e_j>` (§2), enriched with the lookup structures the JOCL
//! signals require:
//!
//! * **alias index** — exact surface form → entities (candidate
//!   generation);
//! * **anchor counts** — per `(surface, entity)` popularity counts that
//!   simulate Wikipedia anchor links and implement `f_pop` (§3.2.3):
//!   `f_pop(s, e) = count(s, e) / count(s)`;
//! * **fact index** — O(1) membership for the fact-inclusion factor `U4`
//!   (§3.2.5);
//! * **co-occurrence** — entity adjacency through facts, used by the
//!   TagMe/EARL/KBPearl linking baselines (relatedness / connection
//!   density);
//! * **token index** — inverted token → entity index for fuzzy candidate
//!   lookup.

use jocl_text::fx::{FxHashMap, FxHashSet};
use jocl_text::tokenize;

/// Identifier of a CKB entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

impl EntityId {
    /// Index form for slice access.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a CKB relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationId(pub u32);

impl RelationId {
    /// Index form for slice access.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A canonicalized entity.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Canonical (unique) name, e.g. `"university of maryland"`.
    pub name: String,
    /// Known aliases (canonical name included by convention).
    pub aliases: Vec<String>,
    /// Semantic types, e.g. `["organization", "university"]` (used by the
    /// SIST baseline's type-compatibility side information).
    pub types: Vec<String>,
}

/// A canonicalized relation.
#[derive(Debug, Clone)]
pub struct CkbRelation {
    /// Canonical name, e.g. `"organizations_founded"`.
    pub name: String,
    /// Textual surface forms that may express the relation.
    pub surface_forms: Vec<String>,
    /// Coarse category (the Stanford-KBP-style relation category used by
    /// the `f_KBP` signal, §3.1.4). Relations in the same category are
    /// considered equivalent by that signal.
    pub category: String,
}

/// The curated knowledge base.
#[derive(Debug, Default, Clone)]
pub struct Ckb {
    entities: Vec<Entity>,
    relations: Vec<CkbRelation>,
    facts: FxHashSet<(u32, u32, u32)>,
    /// surface form → entities carrying it as an alias.
    alias_index: FxHashMap<String, Vec<EntityId>>,
    /// (surface, entity) → anchor count; surface → total anchor count.
    anchor_counts: FxHashMap<(String, EntityId), u64>,
    anchor_totals: FxHashMap<String, u64>,
    /// token → entities whose aliases contain the token.
    token_index: FxHashMap<String, Vec<EntityId>>,
    /// surface form → relations carrying it.
    rel_surface_index: FxHashMap<String, Vec<RelationId>>,
    /// entity → entities co-occurring in at least one fact.
    cooccur: Vec<FxHashSet<u32>>,
    /// lowercased canonical name → entity (first entity wins; canonical
    /// names are unique by convention). Resolves external side-info rows.
    name_index: FxHashMap<String, EntityId>,
    /// lowercased canonical name → relation (first relation wins).
    rel_name_index: FxHashMap<String, RelationId>,
}

impl Ckb {
    /// Empty CKB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an entity; aliases are indexed (lowercased) for lookup.
    pub fn add_entity(&mut self, entity: Entity) -> EntityId {
        let id = EntityId(u32::try_from(self.entities.len()).expect("too many entities"));
        for alias in &entity.aliases {
            let key = alias.to_lowercase();
            self.alias_index.entry(key).or_default().push(id);
            for tok in tokenize(alias) {
                let list = self.token_index.entry(tok).or_default();
                if list.last() != Some(&id) {
                    list.push(id);
                }
            }
        }
        self.name_index.entry(entity.name.to_lowercase()).or_insert(id);
        self.entities.push(entity);
        self.cooccur.push(FxHashSet::default());
        id
    }

    /// Add a relation; surface forms are indexed (lowercased).
    pub fn add_relation(&mut self, relation: CkbRelation) -> RelationId {
        let id = RelationId(u32::try_from(self.relations.len()).expect("too many relations"));
        for sf in &relation.surface_forms {
            self.rel_surface_index.entry(sf.to_lowercase()).or_default().push(id);
        }
        self.rel_name_index.entry(relation.name.to_lowercase()).or_insert(id);
        self.relations.push(relation);
        id
    }

    /// Record the fact `<s, r, o>`. Idempotent.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn add_fact(&mut self, s: EntityId, r: RelationId, o: EntityId) {
        assert!(s.idx() < self.entities.len(), "unknown subject entity");
        assert!(o.idx() < self.entities.len(), "unknown object entity");
        assert!(r.idx() < self.relations.len(), "unknown relation");
        if self.facts.insert((s.0, r.0, o.0)) {
            self.cooccur[s.idx()].insert(o.0);
            self.cooccur[o.idx()].insert(s.0);
        }
    }

    /// Record `count` anchor occurrences of `surface` pointing at `entity`
    /// (simulating Wikipedia anchor links).
    pub fn add_anchor(&mut self, surface: &str, entity: EntityId, count: u64) {
        let key = surface.to_lowercase();
        *self.anchor_counts.entry((key.clone(), entity)).or_insert(0) += count;
        *self.anchor_totals.entry(key).or_insert(0) += count;
    }

    /// `f_pop(surface, entity) = count(surface, entity) / count(surface)`
    /// (paper §3.2.3). Zero when the surface was never an anchor.
    pub fn popularity(&self, surface: &str, entity: EntityId) -> f64 {
        let key = surface.to_lowercase();
        let total = match self.anchor_totals.get(&key) {
            Some(&t) if t > 0 => t,
            _ => return 0.0,
        };
        let count = self.anchor_counts.get(&(key, entity)).copied().unwrap_or(0);
        count as f64 / total as f64
    }

    /// Is `<s, r, o>` a known fact? (the `u4` test of §3.2.5)
    pub fn has_fact(&self, s: EntityId, r: RelationId, o: EntityId) -> bool {
        self.facts.contains(&(s.0, r.0, o.0))
    }

    /// Do two entities co-occur in any fact? (TagMe-style relatedness)
    pub fn cooccurs(&self, a: EntityId, b: EntityId) -> bool {
        self.cooccur.get(a.idx()).is_some_and(|set| set.contains(&b.0))
    }

    /// Number of distinct fact-neighbors of `e` (EARL-style connection
    /// density).
    pub fn degree(&self, e: EntityId) -> usize {
        self.cooccur.get(e.idx()).map_or(0, FxHashSet::len)
    }

    /// Entities whose alias exactly equals `surface` (case-insensitive).
    pub fn entities_by_alias(&self, surface: &str) -> &[EntityId] {
        self.alias_index.get(&surface.to_lowercase()).map_or(&[], Vec::as_slice)
    }

    /// Entities that share the token `tok` in some alias.
    pub fn entities_by_token(&self, tok: &str) -> &[EntityId] {
        self.token_index.get(tok).map_or(&[], Vec::as_slice)
    }

    /// Relations whose surface form equals `surface` (case-insensitive).
    pub fn relations_by_surface(&self, surface: &str) -> &[RelationId] {
        self.rel_surface_index.get(&surface.to_lowercase()).map_or(&[], Vec::as_slice)
    }

    /// The entity whose **canonical name** equals `name`
    /// (case-insensitive). Resolves imported side-information targets.
    pub fn entity_by_name(&self, name: &str) -> Option<EntityId> {
        self.name_index.get(&name.to_lowercase()).copied()
    }

    /// The relation whose canonical name equals `name` (case-insensitive).
    pub fn relation_by_name(&self, name: &str) -> Option<RelationId> {
        self.rel_name_index.get(&name.to_lowercase()).copied()
    }

    /// Entity accessor.
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.idx()]
    }

    /// Relation accessor.
    pub fn relation(&self, id: RelationId) -> &CkbRelation {
        &self.relations[id.idx()]
    }

    /// All entities with ids.
    pub fn entities(&self) -> impl Iterator<Item = (EntityId, &Entity)> {
        self.entities.iter().enumerate().map(|(i, e)| (EntityId(i as u32), e))
    }

    /// All relations with ids.
    pub fn relations(&self) -> impl Iterator<Item = (RelationId, &CkbRelation)> {
        self.relations.iter().enumerate().map(|(i, r)| (RelationId(i as u32), r))
    }

    /// All facts.
    pub fn facts(&self) -> impl Iterator<Item = (EntityId, RelationId, EntityId)> + '_ {
        self.facts.iter().map(|&(s, r, o)| (EntityId(s), RelationId(r), EntityId(o)))
    }

    /// Raw anchor statistics `((surface, entity), count)`, used by the TSV
    /// writer.
    pub fn raw_anchors(&self) -> impl Iterator<Item = (&(String, EntityId), &u64)> {
        self.anchor_counts.iter()
    }

    /// Entity count.
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Relation count.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Fact count.
    pub fn num_facts(&self) -> usize {
        self.facts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entity(name: &str, aliases: &[&str]) -> Entity {
        Entity {
            name: name.into(),
            aliases: aliases.iter().map(|s| s.to_string()).collect(),
            types: vec!["organization".into()],
        }
    }

    fn sample() -> (Ckb, EntityId, EntityId, RelationId) {
        let mut ckb = Ckb::new();
        let umd =
            ckb.add_entity(entity("university of maryland", &["University of Maryland", "UMD"]));
        let u21 = ckb.add_entity(entity("universitas 21", &["Universitas 21", "U21"]));
        let member = ckb.add_relation(CkbRelation {
            name: "organizations_founded".into(),
            surface_forms: vec!["be a member of".into(), "founded".into()],
            category: "membership".into(),
        });
        ckb.add_fact(umd, member, u21);
        (ckb, umd, u21, member)
    }

    #[test]
    fn alias_lookup_is_case_insensitive() {
        let (ckb, umd, _, _) = sample();
        assert_eq!(ckb.entities_by_alias("umd"), &[umd]);
        assert_eq!(ckb.entities_by_alias("UMD"), &[umd]);
        assert!(ckb.entities_by_alias("nothing").is_empty());
    }

    #[test]
    fn fact_membership() {
        let (ckb, umd, u21, member) = sample();
        assert!(ckb.has_fact(umd, member, u21));
        assert!(!ckb.has_fact(u21, member, umd), "facts are directed");
    }

    #[test]
    fn popularity_is_normalized() {
        let (mut ckb, umd, u21, _) = sample();
        ckb.add_anchor("umd", umd, 9);
        ckb.add_anchor("umd", u21, 1); // ambiguous surface
        assert!((ckb.popularity("UMD", umd) - 0.9).abs() < 1e-12);
        assert!((ckb.popularity("umd", u21) - 0.1).abs() < 1e-12);
        assert_eq!(ckb.popularity("unseen", umd), 0.0);
    }

    #[test]
    fn cooccurrence_from_facts() {
        let (ckb, umd, u21, _) = sample();
        assert!(ckb.cooccurs(umd, u21));
        assert!(ckb.cooccurs(u21, umd));
        assert_eq!(ckb.degree(umd), 1);
    }

    #[test]
    fn token_index_finds_partial_matches() {
        let (ckb, umd, _, _) = sample();
        assert!(ckb.entities_by_token("maryland").contains(&umd));
        assert!(ckb.entities_by_token("zzz").is_empty());
    }

    #[test]
    fn relation_surface_lookup() {
        let (ckb, _, _, member) = sample();
        assert_eq!(ckb.relations_by_surface("Be A Member Of"), &[member]);
    }

    #[test]
    fn canonical_name_lookup_is_case_insensitive() {
        let (ckb, umd, u21, member) = sample();
        assert_eq!(ckb.entity_by_name("University of Maryland"), Some(umd));
        assert_eq!(ckb.entity_by_name("universitas 21"), Some(u21));
        assert_eq!(ckb.relation_by_name("ORGANIZATIONS_FOUNDED"), Some(member));
        assert_eq!(ckb.entity_by_name("umd"), None, "aliases are not canonical names");
        assert_eq!(ckb.relation_by_name("nope"), None);
    }

    #[test]
    fn duplicate_facts_are_idempotent() {
        let (mut ckb, umd, u21, member) = sample();
        let before = ckb.num_facts();
        ckb.add_fact(umd, member, u21);
        assert_eq!(ckb.num_facts(), before);
    }

    #[test]
    #[should_panic(expected = "unknown relation")]
    fn dangling_fact_panics() {
        let (mut ckb, umd, u21, _) = sample();
        ckb.add_fact(umd, RelationId(99), u21);
    }

    #[test]
    fn iterators_cover_everything() {
        let (ckb, _, _, _) = sample();
        assert_eq!(ckb.entities().count(), ckb.num_entities());
        assert_eq!(ckb.relations().count(), ckb.num_relations());
        assert_eq!(ckb.facts().count(), ckb.num_facts());
    }
}
