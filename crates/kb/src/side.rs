//! External-KB **side information**: imported alias tables and link
//! dictionaries, in the CESI style — outside knowledge that is fed into
//! inference as additional factor potentials rather than bolted on
//! beside it.
//!
//! A [`SideKb`] maps *surface forms* to curated-KB *target names* with a
//! confidence weight in `(0, 1]`:
//!
//! * entity rows back NP linking variables (alias dictionaries,
//!   external-KB link imports);
//! * relation rows back RP linking variables (paraphrase dictionaries).
//!
//! All strings are interned through [`jocl_text::Interner`] and keys are
//! canonicalized to lowercase, so lookups on the inference hot path
//! compare 4-byte symbols, not strings. Iteration order is the sorted
//! canonical order — deterministic regardless of insertion order — and
//! [`SideKb::fingerprint`] hashes exactly that canonical serialization,
//! which is what the serve snapshot config fingerprint pins.

use jocl_text::{Interner, Sym};

/// One imported link: a target name in the curated KB plus the import's
/// confidence weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SideLink {
    /// Interned lowercase target name (entity or relation canonical name).
    pub target: Sym,
    /// Import confidence in `(0, 1]`.
    pub weight: f64,
}

/// An imported side-information table (alias dictionaries, external-KB
/// links). See the module docs.
#[derive(Debug, Default, Clone)]
pub struct SideKb {
    strings: Interner,
    /// surface → imported entity links (first import of a
    /// (surface, target) pair wins; later duplicates are ignored).
    entity_links: jocl_text::fx::FxHashMap<Sym, Vec<SideLink>>,
    /// surface → imported relation links.
    relation_links: jocl_text::fx::FxHashMap<Sym, Vec<SideLink>>,
    num_entity_rows: usize,
    num_relation_rows: usize,
}

fn validate_weight(weight: f64) -> f64 {
    assert!(
        weight.is_finite() && weight > 0.0 && weight <= 1.0,
        "side-information weight must be in (0, 1], got {weight}"
    );
    weight
}

impl SideKb {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    fn add(
        strings: &mut Interner,
        links: &mut jocl_text::fx::FxHashMap<Sym, Vec<SideLink>>,
        surface: &str,
        target: &str,
        weight: f64,
    ) -> bool {
        let weight = validate_weight(weight);
        let surface = strings.intern(surface.to_lowercase().trim());
        let target = strings.intern(target.to_lowercase().trim());
        let list = links.entry(surface).or_default();
        if list.iter().any(|l| l.target == target) {
            return false; // first import wins
        }
        list.push(SideLink { target, weight });
        true
    }

    /// Import `surface → entity_name` with confidence `weight`. Keys are
    /// trimmed and lowercased; re-importing an existing (surface, target)
    /// pair is ignored (first import wins). Returns whether the row was
    /// new.
    ///
    /// # Panics
    /// Panics unless `weight` is finite and in `(0, 1]`.
    pub fn add_entity_link(&mut self, surface: &str, entity_name: &str, weight: f64) -> bool {
        let added =
            Self::add(&mut self.strings, &mut self.entity_links, surface, entity_name, weight);
        self.num_entity_rows += added as usize;
        added
    }

    /// Import `surface → relation_name` with confidence `weight`. Same
    /// contract as [`SideKb::add_entity_link`].
    pub fn add_relation_link(&mut self, surface: &str, relation_name: &str, weight: f64) -> bool {
        let added =
            Self::add(&mut self.strings, &mut self.relation_links, surface, relation_name, weight);
        self.num_relation_rows += added as usize;
        added
    }

    /// Imported entity links for a surface form (`surface` is lowercased
    /// for lookup; the empty slice when none).
    pub fn entity_links(&self, surface: &str) -> &[SideLink] {
        self.lookup(&self.entity_links, surface)
    }

    /// Imported relation links for a surface form.
    pub fn relation_links(&self, surface: &str) -> &[SideLink] {
        self.lookup(&self.relation_links, surface)
    }

    fn lookup<'a>(
        &'a self,
        links: &'a jocl_text::fx::FxHashMap<Sym, Vec<SideLink>>,
        surface: &str,
    ) -> &'a [SideLink] {
        let key = surface.trim().to_lowercase();
        self.strings.get(&key).and_then(|sym| links.get(&sym)).map_or(&[], Vec::as_slice)
    }

    /// Resolve an interned name back to its string.
    pub fn resolve(&self, sym: Sym) -> &str {
        self.strings.resolve(sym)
    }

    /// Number of imported entity rows.
    pub fn num_entity_links(&self) -> usize {
        self.num_entity_rows
    }

    /// Number of imported relation rows.
    pub fn num_relation_links(&self) -> usize {
        self.num_relation_rows
    }

    /// True when no rows were imported. An empty table is contractually
    /// inert: inference with `Some(empty)` is bitwise-identical to
    /// inference with `None`.
    pub fn is_empty(&self) -> bool {
        self.num_entity_rows == 0 && self.num_relation_rows == 0
    }

    /// All rows in canonical order: `(kind, surface, target, weight)`
    /// sorted by `(kind, surface, target)` with kind `'e'` before `'r'`.
    /// This is the serialization the TSV writer emits and the
    /// [`fingerprint`](SideKb::fingerprint) hashes.
    pub fn canonical_rows(&self) -> Vec<(char, &str, &str, f64)> {
        let mut rows = Vec::with_capacity(self.num_entity_rows + self.num_relation_rows);
        for (kind, links) in [('e', &self.entity_links), ('r', &self.relation_links)] {
            for (&surface, list) in links {
                for l in list {
                    rows.push((
                        kind,
                        self.strings.resolve(surface),
                        self.resolve(l.target),
                        l.weight,
                    ));
                }
            }
        }
        rows.sort_by(|a, b| (a.0, a.1, a.2).cmp(&(b.0, b.1, b.2)));
        rows
    }

    /// FNV-1a hash of the canonical serialization — stable across
    /// insertion orders, sensitive to every row and weight bit. The serve
    /// snapshot config fingerprint stores this to pin the side-info
    /// source a session was built with.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for (kind, surface, target, weight) in self.canonical_rows() {
            eat(&[kind as u8]);
            eat(surface.as_bytes());
            eat(&[0]);
            eat(target.as_bytes());
            eat(&[0]);
            eat(&weight.to_bits().to_le_bytes());
        }
        h
    }

    /// Approximate resident heap bytes.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let links: usize = self
            .entity_links
            .values()
            .chain(self.relation_links.values())
            .map(|v| v.capacity() * size_of::<SideLink>())
            .sum();
        self.strings.heap_bytes()
            + links
            + (self.entity_links.capacity() + self.relation_links.capacity())
                * (size_of::<Sym>() + size_of::<Vec<SideLink>>() + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SideKb {
        let mut side = SideKb::new();
        assert!(side.add_entity_link("UMD", "University of Maryland", 0.9));
        assert!(side.add_entity_link("the terps", "university of maryland", 0.6));
        assert!(side.add_relation_link("be part of", "member_of", 0.8));
        side
    }

    #[test]
    fn lookup_is_case_insensitive_and_trimmed() {
        let side = sample();
        let links = side.entity_links("  umd ");
        assert_eq!(links.len(), 1);
        assert_eq!(side.resolve(links[0].target), "university of maryland");
        assert_eq!(links[0].weight, 0.9);
        assert!(side.entity_links("unknown").is_empty());
        assert_eq!(side.relation_links("BE PART OF").len(), 1);
    }

    #[test]
    fn duplicate_rows_first_import_wins() {
        let mut side = sample();
        assert!(!side.add_entity_link("umd", "UNIVERSITY OF MARYLAND", 0.1));
        assert_eq!(side.num_entity_links(), 2);
        assert_eq!(side.entity_links("umd")[0].weight, 0.9, "original weight kept");
    }

    #[test]
    fn fingerprint_is_insertion_order_invariant() {
        let a = sample();
        let mut b = SideKb::new();
        b.add_relation_link("be part of", "member_of", 0.8);
        b.add_entity_link("the terps", "university of maryland", 0.6);
        b.add_entity_link("UMD", "University of Maryland", 0.9);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = sample();
        c.add_entity_link("umd", "u21", 0.9);
        assert_ne!(a.fingerprint(), c.fingerprint(), "new row changes the hash");
        let mut d = SideKb::new();
        d.add_entity_link("UMD", "University of Maryland", 0.91);
        d.add_entity_link("the terps", "university of maryland", 0.6);
        d.add_relation_link("be part of", "member_of", 0.8);
        assert_ne!(a.fingerprint(), d.fingerprint(), "weight bits change the hash");
    }

    #[test]
    fn empty_table_is_flagged_inert() {
        assert!(SideKb::new().is_empty());
        assert_eq!(SideKb::new().fingerprint(), SideKb::default().fingerprint());
        assert!(!sample().is_empty());
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn zero_weight_is_rejected() {
        SideKb::new().add_entity_link("a", "b", 0.0);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn non_finite_weight_is_rejected() {
        SideKb::new().add_relation_link("a", "b", f64::NAN);
    }

    #[test]
    fn canonical_rows_are_sorted() {
        let side = sample();
        let rows = side.canonical_rows();
        let keys: Vec<_> = rows.iter().map(|r| (r.0, r.1, r.2)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], ('e', "the terps", "university of maryland", 0.6));
        assert_eq!(rows[2], ('r', "be part of", "member_of", 0.8));
    }
}
