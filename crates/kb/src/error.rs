//! Error type for KB loading and validation.

use std::fmt;

/// Errors raised by the KB substrate (mostly TSV parsing).
#[derive(Debug)]
pub enum KbError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed input at a specific line (1-based).
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A reference to an unknown entity/relation id.
    DanglingRef {
        /// What kind of id was referenced.
        kind: &'static str,
        /// The offending id value.
        id: u32,
    },
    /// Malformed binary snapshot data (`crate::snap`): truncation, a
    /// wrong section tag, an impossible length. Carries the byte offset
    /// the reader died at so a corrupt warm-session snapshot points at
    /// the failing section, not just "restore failed".
    Snapshot {
        /// Byte offset of the failing read.
        offset: usize,
        /// Human-readable description.
        msg: String,
    },
    /// Another [`KbError`] annotated with the file it came from. Loaders
    /// that know the path (e.g. `jocl_core::persist::load_params`) wrap
    /// their I/O and parse failures so a serving misconfiguration names
    /// the offending file instead of a bare "parse error at line 1".
    WithPath {
        /// The file involved (display form).
        path: String,
        /// The underlying failure.
        source: Box<KbError>,
    },
}

impl KbError {
    /// Wrap `self` with the path of the file being processed.
    pub fn with_path(self, path: &std::path::Path) -> KbError {
        KbError::WithPath { path: path.display().to_string(), source: Box::new(self) }
    }
}

impl fmt::Display for KbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbError::Io(e) => write!(f, "i/o error: {e}"),
            KbError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            KbError::DanglingRef { kind, id } => {
                write!(f, "dangling {kind} reference: {id}")
            }
            KbError::Snapshot { offset, msg } => {
                write!(f, "snapshot corrupt at byte {offset}: {msg}")
            }
            KbError::WithPath { path, source } => write!(f, "{path}: {source}"),
        }
    }
}

impl std::error::Error for KbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KbError::Io(e) => Some(e),
            KbError::WithPath { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for KbError {
    fn from(e: std::io::Error) -> Self {
        KbError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = KbError::Parse { line: 3, msg: "bad column count".into() };
        assert!(e.to_string().contains("line 3"));
        let e = KbError::DanglingRef { kind: "entity", id: 42 };
        assert!(e.to_string().contains("entity"));
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn with_path_prefixes_and_chains() {
        let inner = KbError::Parse { line: 2, msg: "bad".into() };
        let e = inner.with_path(std::path::Path::new("/tmp/weights.tsv"));
        let msg = e.to_string();
        assert!(msg.contains("/tmp/weights.tsv"), "{msg}");
        assert!(msg.contains("line 2"), "{msg}");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: KbError = io.into();
        assert!(matches!(e, KbError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
