//! Error type for KB loading and validation.

use std::fmt;

/// Errors raised by the KB substrate (mostly TSV parsing).
#[derive(Debug)]
pub enum KbError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed input at a specific line (1-based).
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A reference to an unknown entity/relation id.
    DanglingRef {
        /// What kind of id was referenced.
        kind: &'static str,
        /// The offending id value.
        id: u32,
    },
}

impl fmt::Display for KbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbError::Io(e) => write!(f, "i/o error: {e}"),
            KbError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            KbError::DanglingRef { kind, id } => {
                write!(f, "dangling {kind} reference: {id}")
            }
        }
    }
}

impl std::error::Error for KbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KbError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for KbError {
    fn from(e: std::io::Error) -> Self {
        KbError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = KbError::Parse { line: 3, msg: "bad column count".into() };
        assert!(e.to_string().contains("line 3"));
        let e = KbError::DanglingRef { kind: "entity", id: 42 };
        assert!(e.to_string().contains("entity"));
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: KbError = io.into();
        assert!(matches!(e, KbError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
