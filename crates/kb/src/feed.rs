//! Feed-cursor files: the typed sidecar that pins a serving process's
//! position in a replication feed.
//!
//! PR 5's `serve` bin persisted its generator-feed position as a bare
//! decimal string next to the snapshot (`session.snap.cursor`). With the
//! networked serving plane that sidecar became load-bearing — a read
//! replica resumes **both** the generator feed and the writer's delta
//! feed from it — so the ad-hoc string grew into a real codec: magic +
//! two offsets + checksum, written atomically, every failure a typed
//! [`KbError`] naming the file. A half-written or hand-edited cursor
//! must fail loudly at open time, not silently replay (or skip) part of
//! the feed.
//!
//! The cursor deliberately stays a *sidecar* of the snapshot rather
//! than a section inside it: the snapshot payload is transport-agnostic
//! session state (`jocl_core::IncrementalJocl::export_state`), while the
//! cursor describes the *process's* position in feeds the session knows
//! nothing about.

use crate::error::KbError;
use crate::snap::{fnv1a, SnapReader, SnapWriter};
use std::path::Path;

/// File magic; the trailing digit is the format version.
const MAGIC: &[u8; 8] = b"JOCLCUR1";

/// A serving process's position in its input feeds at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FeedCursor {
    /// Triples already consumed from the generated source pool (the
    /// `ingest` command's feed).
    pub pool_cursor: u64,
    /// Byte offset into the delta-feed log (`feed.log`) up to which the
    /// snapshot already contains every operation. A replica restoring
    /// from the snapshot starts following the log here.
    pub feed_offset: u64,
}

impl FeedCursor {
    /// Serialize to sidecar-file bytes (magic + payload + checksum).
    pub fn to_bytes(self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.tag("CURS");
        w.u64(self.pool_cursor);
        w.u64(self.feed_offset);
        let payload = w.into_bytes();
        let mut bytes = Vec::with_capacity(MAGIC.len() + payload.len() + 8);
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        bytes
    }

    /// Parse sidecar-file bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, KbError> {
        let corrupt = |offset: usize, msg: String| KbError::Snapshot { offset, msg };
        if bytes.len() < MAGIC.len() + 8 {
            return Err(corrupt(0, format!("cursor file of {} bytes is too short", bytes.len())));
        }
        let (magic, rest) = bytes.split_at(MAGIC.len());
        if magic != MAGIC {
            return Err(corrupt(
                0,
                format!(
                    "bad magic {:?} (expected {:?} — not a cursor file, or a different version)",
                    String::from_utf8_lossy(magic),
                    String::from_utf8_lossy(MAGIC)
                ),
            ));
        }
        let (payload, sum) = rest.split_at(rest.len() - 8);
        let stored = u64::from_le_bytes(sum.try_into().expect("8 bytes"));
        let actual = fnv1a(payload);
        if stored != actual {
            return Err(corrupt(
                MAGIC.len() + payload.len(),
                format!("checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"),
            ));
        }
        let mut r = SnapReader::new(payload);
        r.expect_tag("CURS")?;
        let pool_cursor = r.u64()?;
        let feed_offset = r.u64()?;
        r.expect_end()?;
        Ok(Self { pool_cursor, feed_offset })
    }

    /// Write the cursor to `path` atomically (unique temp file + rename,
    /// like snapshot files: a crash mid-write never leaves a torn cursor
    /// under the final name). Failures name the file.
    pub fn save(self, path: &Path) -> Result<(), KbError> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = path.with_extension(format!(
            "tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let write = || -> Result<(), std::io::Error> {
            std::fs::write(&tmp, self.to_bytes())?;
            std::fs::rename(&tmp, path)
        };
        write().map_err(|e| {
            std::fs::remove_file(&tmp).ok();
            KbError::from(e).with_path(path)
        })
    }

    /// Read a cursor from `path`. Every failure — I/O, bad magic,
    /// checksum, truncation — is wrapped with the file path.
    pub fn load(path: &Path) -> Result<Self, KbError> {
        let bytes = std::fs::read(path).map_err(|e| KbError::from(e).with_path(path))?;
        Self::from_bytes(&bytes).map_err(|e| e.with_path(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_bytes_and_files() {
        let cur = FeedCursor { pool_cursor: 123, feed_offset: 9_876_543_210 };
        assert_eq!(FeedCursor::from_bytes(&cur.to_bytes()).unwrap(), cur);

        let dir = std::env::temp_dir().join(format!("jocl-cursor-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.cursor");
        cur.save(&path).unwrap();
        assert_eq!(FeedCursor::load(&path).unwrap(), cur);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_a_typed_error() {
        let cur = FeedCursor { pool_cursor: 7, feed_offset: 42 };
        let bytes = cur.to_bytes();

        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(FeedCursor::from_bytes(&bad).unwrap_err().to_string().contains("magic"));

        // Flipped payload bit.
        let mut bad = bytes.clone();
        bad[MAGIC.len() + 4] ^= 1;
        assert!(FeedCursor::from_bytes(&bad).unwrap_err().to_string().contains("checksum"));

        // Truncation.
        let mut bad = bytes.clone();
        bad.truncate(10);
        assert!(FeedCursor::from_bytes(&bad).unwrap_err().to_string().contains("short"));

        // Trailing garbage shifts the checksum window.
        let mut bad = bytes;
        bad.push(0);
        assert!(FeedCursor::from_bytes(&bad).is_err());
    }

    #[test]
    fn load_failures_name_the_file() {
        let path = std::env::temp_dir().join("jocl-cursor-does-not-exist.cursor");
        let msg = FeedCursor::load(&path).unwrap_err().to_string();
        assert!(msg.contains("jocl-cursor-does-not-exist"), "{msg}");
    }
}
