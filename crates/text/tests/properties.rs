//! Property-based tests for the string-similarity kernels.

use jocl_text::sim::{jaro, jaro_winkler, levenshtein, levenshtein_sim, ngram_jaccard};
use jocl_text::stem::porter;
use jocl_text::{morph_normalize, tokenize, IdfIndex};
use proptest::prelude::*;

fn word() -> impl Strategy<Value = String> {
    "[a-z]{1,12}"
}

fn phrase() -> impl Strategy<Value = String> {
    proptest::collection::vec(word(), 1..5).prop_map(|ws| ws.join(" "))
}

proptest! {
    #[test]
    fn levenshtein_symmetric(a in phrase(), b in phrase()) {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
    }

    #[test]
    fn levenshtein_identity(a in phrase()) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein_sim(&a, &a), 1.0);
    }

    #[test]
    fn levenshtein_triangle(a in word(), b in word(), c in word()) {
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn levenshtein_sim_bounds(a in phrase(), b in phrase()) {
        let s = levenshtein_sim(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn jaro_bounds_and_symmetry(a in phrase(), b in phrase()) {
        let j = jaro(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((j - jaro(&b, &a)).abs() < 1e-12);
        let jw = jaro_winkler(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&jw));
        prop_assert!(jw >= j - 1e-12, "winkler must not decrease jaro");
    }

    #[test]
    fn ngram_bounds_symmetry_identity(a in phrase(), b in phrase()) {
        let s = ngram_jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((s - ngram_jaccard(&b, &a)).abs() < 1e-12);
        prop_assert_eq!(ngram_jaccard(&a, &a), 1.0);
    }

    #[test]
    fn idf_bounds_symmetry_identity(
        corpus in proptest::collection::vec(phrase(), 1..20),
        a in phrase(),
        b in phrase(),
    ) {
        let idx = IdfIndex::build(corpus.iter().map(String::as_str));
        let s = idx.sim(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&s), "sim={s}");
        prop_assert!((s - idx.sim(&b, &a)).abs() < 1e-12);
        prop_assert!((idx.sim(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn porter_is_ascii_and_bounded(w in word()) {
        let s = porter(&w);
        prop_assert!(s.is_ascii());
        prop_assert!(s.len() <= w.len() + 1, "{w} -> {s}");
        prop_assert!(!s.is_empty());
        // Deterministic.
        prop_assert_eq!(porter(&w), s);
    }

    #[test]
    fn tokenize_roundtrip_is_lowercase(s in "[ a-zA-Z0-9,.-]{0,40}") {
        for t in tokenize(&s) {
            prop_assert_eq!(t.clone(), t.to_lowercase());
            prop_assert!(!t.is_empty());
        }
    }

    #[test]
    fn normalize_deterministic_and_single_spaced(p in phrase()) {
        let n = morph_normalize(&p);
        prop_assert_eq!(morph_normalize(&p), n.clone());
        prop_assert!(!n.contains("  "));
    }
}
