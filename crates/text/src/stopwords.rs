//! A compact English stop-word and function-word inventory.
//!
//! Used by morphological normalization (strip determiners, auxiliaries and
//! modifiers — paper §4.2.2 describes RP equivalence "after removing tense,
//! pluralization, auxiliary verb, determiner, and modifier") and by the
//! relation-phrase signals.

/// Determiners stripped by morphological normalization.
pub const DETERMINERS: &[&str] = &[
    "a", "an", "the", "this", "that", "these", "those", "some", "any", "each", "every", "no",
    "its", "his", "her", "their", "our", "my", "your",
];

/// Auxiliary / copular verbs stripped from relation phrases.
pub const AUXILIARIES: &[&str] = &[
    "be", "is", "am", "are", "was", "were", "been", "being", "do", "does", "did", "have", "has",
    "had", "having", "will", "would", "shall", "should", "can", "could", "may", "might", "must",
    "get", "gets", "got",
];

/// Common adverbial modifiers stripped from relation phrases ("be an
/// *early* member of" vs "be a member of").
pub const MODIFIERS: &[&str] = &[
    "early",
    "late",
    "new",
    "old",
    "former",
    "current",
    "currently",
    "recently",
    "originally",
    "also",
    "still",
    "already",
    "once",
    "first",
    "just",
    "very",
    "really",
    "now",
    "then",
    "founding",
    "longtime",
];

/// General stop words (union of the above plus prepositions/conjunctions);
/// used when weighting tokens for embeddings.
pub const STOPWORDS: &[&str] = &[
    "a", "an", "the", "of", "in", "on", "at", "to", "for", "by", "with", "from", "as", "and", "or",
    "is", "are", "was", "were", "be", "been", "being", "it", "its", "that", "this", "these",
    "those", "he", "she", "they", "we", "you", "i",
];

/// Is `w` a determiner?
pub fn is_determiner(w: &str) -> bool {
    DETERMINERS.contains(&w)
}

/// Is `w` an auxiliary verb?
pub fn is_auxiliary(w: &str) -> bool {
    AUXILIARIES.contains(&w)
}

/// Is `w` a strippable modifier?
pub fn is_modifier(w: &str) -> bool {
    MODIFIERS.contains(&w)
}

/// Is `w` a general stop word?
pub fn is_stopword(w: &str) -> bool {
    STOPWORDS.contains(&w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_behave() {
        assert!(is_determiner("the"));
        assert!(!is_determiner("maryland"));
        assert!(is_auxiliary("was"));
        assert!(!is_auxiliary("member"));
        assert!(is_modifier("early"));
        assert!(is_stopword("of"));
        assert!(!is_stopword("buffett"));
    }

    #[test]
    fn lists_are_lowercase_and_unique() {
        for list in [DETERMINERS, AUXILIARIES, MODIFIERS, STOPWORDS] {
            let mut seen = std::collections::HashSet::new();
            for w in list {
                assert_eq!(*w, w.to_lowercase());
                assert!(seen.insert(*w), "duplicate stop word {w}");
            }
        }
    }
}
