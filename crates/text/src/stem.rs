//! Porter stemmer.
//!
//! Morphological normalization (the Morph Norm baseline of Fader et al.,
//! and the input normal form required by the AMIE rule miner, paper §3.1.4)
//! needs suffix stripping: "members" → "member", "founded" → "found".
//! This is a from-scratch implementation of the classic Porter (1980)
//! algorithm — steps 1a, 1b, 1c, 2, 3, 4, 5a, 5b — operating on ASCII
//! lowercase words. Non-ASCII words are returned unchanged.

/// Stem a single lowercase word with the Porter algorithm.
///
/// ```
/// use jocl_text::stem::porter;
/// assert_eq!(porter("caresses"), "caress");
/// assert_eq!(porter("ponies"), "poni");
/// assert_eq!(porter("relational"), "relat");
/// assert_eq!(porter("university"), "univers");
/// ```
pub fn porter(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut w: Vec<u8> = word.as_bytes().to_vec();
    step1a(&mut w);
    step1b(&mut w);
    step1c(&mut w);
    step2(&mut w);
    step3(&mut w);
    step4(&mut w);
    step5a(&mut w);
    step5b(&mut w);
    String::from_utf8(w).expect("ascii in, ascii out")
}

/// Is `w[i]` a consonant in Porter's sense?
fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !is_consonant(w, i - 1),
        _ => true,
    }
}

/// Porter's measure m of `w[..len]`: the number of VC sequences.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < len && !is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // Skip consonants — completes one VC.
        while i < len && is_consonant(w, i) {
            i += 1;
        }
        m += 1;
    }
}

/// Does `w[..len]` contain a vowel?
fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

/// Does `w[..len]` end in a double consonant?
fn ends_double_consonant(w: &[u8], len: usize) -> bool {
    len >= 2 && w[len - 1] == w[len - 2] && is_consonant(w, len - 1)
}

/// Does `w[..len]` end consonant-vowel-consonant where the final consonant
/// is not w, x or y? (Porter's *o condition.)
fn ends_cvc(w: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    is_consonant(w, len - 3)
        && !is_consonant(w, len - 2)
        && is_consonant(w, len - 1)
        && !matches!(w[len - 1], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], suffix: &[u8]) -> bool {
    w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix
}

/// If the word ends with `suffix` and the stem before it has measure > `m`,
/// replace the suffix with `repl` and return true.
fn replace_if_m(w: &mut Vec<u8>, suffix: &[u8], repl: &[u8], m: usize) -> bool {
    if ends_with(w, suffix) {
        let stem_len = w.len() - suffix.len();
        if measure(w, stem_len) > m {
            w.truncate(stem_len);
            w.extend_from_slice(repl);
        }
        // Suffix matched (whether or not the condition held): stop trying
        // alternative suffixes in this step.
        return true;
    }
    false
}

fn step1a(w: &mut Vec<u8>) {
    if ends_with(w, b"sses") || ends_with(w, b"ies") {
        w.truncate(w.len() - 2);
    } else if ends_with(w, b"ss") {
        // unchanged
    } else if ends_with(w, b"s") {
        w.truncate(w.len() - 1);
    }
}

fn step1b(w: &mut Vec<u8>) {
    let mut cleanup = false;
    if ends_with(w, b"eed") {
        let stem_len = w.len() - 3;
        if measure(w, stem_len) > 0 {
            w.truncate(w.len() - 1);
        }
    } else if ends_with(w, b"ed") {
        let stem_len = w.len() - 2;
        if has_vowel(w, stem_len) {
            w.truncate(stem_len);
            cleanup = true;
        }
    } else if ends_with(w, b"ing") {
        let stem_len = w.len() - 3;
        if has_vowel(w, stem_len) {
            w.truncate(stem_len);
            cleanup = true;
        }
    }
    if cleanup {
        if ends_with(w, b"at") || ends_with(w, b"bl") || ends_with(w, b"iz") {
            w.push(b'e');
        } else if ends_double_consonant(w, w.len()) && !matches!(w[w.len() - 1], b'l' | b's' | b'z')
        {
            w.truncate(w.len() - 1);
        } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
            w.push(b'e');
        }
    }
}

fn step1c(w: &mut [u8]) {
    if ends_with(w, b"y") && has_vowel(w, w.len() - 1) {
        let n = w.len();
        w[n - 1] = b'i';
    }
}

fn step2(w: &mut Vec<u8>) {
    const RULES: &[(&[u8], &[u8])] = &[
        (b"ational", b"ate"),
        (b"tional", b"tion"),
        (b"enci", b"ence"),
        (b"anci", b"ance"),
        (b"izer", b"ize"),
        (b"abli", b"able"),
        (b"alli", b"al"),
        (b"entli", b"ent"),
        (b"eli", b"e"),
        (b"ousli", b"ous"),
        (b"ization", b"ize"),
        (b"ation", b"ate"),
        (b"ator", b"ate"),
        (b"alism", b"al"),
        (b"iveness", b"ive"),
        (b"fulness", b"ful"),
        (b"ousness", b"ous"),
        (b"aliti", b"al"),
        (b"iviti", b"ive"),
        (b"biliti", b"ble"),
    ];
    for (suf, rep) in RULES {
        if replace_if_m(w, suf, rep, 0) {
            return;
        }
    }
}

fn step3(w: &mut Vec<u8>) {
    const RULES: &[(&[u8], &[u8])] = &[
        (b"icate", b"ic"),
        (b"ative", b""),
        (b"alize", b"al"),
        (b"iciti", b"ic"),
        (b"ical", b"ic"),
        (b"ful", b""),
        (b"ness", b""),
    ];
    for (suf, rep) in RULES {
        if replace_if_m(w, suf, rep, 0) {
            return;
        }
    }
}

fn step4(w: &mut Vec<u8>) {
    const RULES: &[&[u8]] = &[
        b"al", b"ance", b"ence", b"er", b"ic", b"able", b"ible", b"ant", b"ement", b"ment", b"ent",
        b"ou", b"ism", b"ate", b"iti", b"ous", b"ive", b"ize",
    ];
    // "ion" requires the stem to end in s or t.
    if ends_with(w, b"ion") {
        let stem_len = w.len() - 3;
        if stem_len > 0 && matches!(w[stem_len - 1], b's' | b't') && measure(w, stem_len) > 1 {
            w.truncate(stem_len);
        }
        return;
    }
    for suf in RULES {
        if ends_with(w, suf) {
            let stem_len = w.len() - suf.len();
            if measure(w, stem_len) > 1 {
                w.truncate(stem_len);
            }
            return;
        }
    }
}

fn step5a(w: &mut Vec<u8>) {
    if ends_with(w, b"e") {
        let stem_len = w.len() - 1;
        let m = measure(w, stem_len);
        if m > 1 || (m == 1 && !ends_cvc(w, stem_len)) {
            w.truncate(stem_len);
        }
    }
}

fn step5b(w: &mut Vec<u8>) {
    if ends_with(w, b"ll") && measure(w, w.len()) > 1 {
        w.truncate(w.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Vectors from Porter's original paper / the canonical test suite.
    #[test]
    fn canonical_vectors() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(porter(input), expected, "porter({input})");
        }
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(porter("at"), "at");
        assert_eq!(porter("by"), "by");
        assert_eq!(porter(""), "");
    }

    #[test]
    fn non_ascii_untouched() {
        assert_eq!(porter("café"), "café");
        assert_eq!(porter("naïve"), "naïve");
    }

    #[test]
    fn mixed_case_untouched() {
        // The stemmer expects lowercase; anything else passes through.
        assert_eq!(porter("USA"), "USA");
    }

    #[test]
    fn plural_relations() {
        assert_eq!(porter("members"), "member");
        assert_eq!(porter("organizations"), porter("organization"));
    }

    #[test]
    fn tense_collapse() {
        assert_eq!(porter("founded"), porter("found"));
        assert_eq!(porter("locates"), porter("locate"));
    }
}
