//! A fast, non-cryptographic hash (the "Fx" hash used by rustc) together
//! with `HashMap`/`HashSet` type aliases.
//!
//! Hashing is hot in every stage of the JOCL pipeline (token indexes,
//! candidate lookup, pair blocking), and the Rust performance guide
//! recommends swapping SipHash for a cheap multiplicative hash when HashDoS
//! is not a concern. The external `rustc-hash` crate is not part of the
//! approved offline dependency set, so the ~20-line algorithm is
//! reimplemented here.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit variant of the Fx multiplicative hash.
///
/// The update rule is `hash = (hash rotl 5 ^ word) * SEED` applied to
/// 8-byte chunks (then any 1-byte tail), identical to rustc's `FxHasher`.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// Multiplicative constant: `2^64 / golden_ratio`, the same constant used
/// by rustc's FxHasher.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        for &b in chunks.remainder() {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the Fx hash.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&"open knowledge"), hash_of(&"open knowledge"));
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&"np"), hash_of(&"rp"));
        assert_ne!(hash_of(&1u32), hash_of(&2u32));
    }

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<&str, usize> = FxHashMap::default();
        m.insert("university of maryland", 1);
        m.insert("umd", 2);
        assert_eq!(m.get("umd"), Some(&2));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn empty_input_hash_is_stable() {
        let h1 = FxHasher::default().finish();
        let h2 = FxHasher::default().finish();
        assert_eq!(h1, h2);
    }

    #[test]
    fn tail_bytes_affect_hash() {
        // 9 bytes: one 8-byte chunk + a 1-byte tail.
        let mut a = FxHasher::default();
        a.write(b"abcdefghi");
        let mut b = FxHasher::default();
        b.write(b"abcdefghj");
        assert_ne!(a.finish(), b.finish());
    }
}
