//! Morphological normalization of phrases.
//!
//! This is the normal form used by
//! * the **Morph Norm** baseline (Fader et al. 2011): phrases with the same
//!   normal form are grouped;
//! * the **AMIE** rule miner, whose input is "morphological normalized OIE
//!   triples" (paper §3.1.4);
//! * the RP gold-labeling protocol (paper §4.2.2: two RPs are the same "after
//!   removing tense, pluralization, auxiliary verb, determiner, and
//!   modifier").

use crate::stem::porter;
use crate::stopwords;
use crate::tokenize::tokenize;

/// Options controlling [`morph_normalize_with`].
#[derive(Debug, Clone, Copy)]
pub struct NormOptions {
    /// Strip determiners ("the", "a", ...).
    pub strip_determiners: bool,
    /// Strip auxiliary verbs ("be", "was", ...). Only sensible for RPs.
    pub strip_auxiliaries: bool,
    /// Strip adverbial modifiers ("early", "former", ...).
    pub strip_modifiers: bool,
    /// Apply the Porter stemmer to every remaining token.
    pub stem: bool,
}

impl NormOptions {
    /// Normalization for noun phrases: keep auxiliaries (NPs rarely have
    /// them), strip determiners, stem.
    pub fn noun_phrase() -> Self {
        Self {
            strip_determiners: true,
            strip_auxiliaries: false,
            strip_modifiers: false,
            stem: true,
        }
    }

    /// Normalization for relation phrases: strip determiners, auxiliaries
    /// and modifiers, stem — the full §4.2.2 recipe.
    pub fn relation_phrase() -> Self {
        Self { strip_determiners: true, strip_auxiliaries: true, strip_modifiers: true, stem: true }
    }
}

/// Normalize a phrase with explicit options. Returns a single-space-joined
/// lowercase string of (optionally stemmed) content tokens. If stripping
/// removes every token, the unstripped stemmed form is returned instead so
/// that phrases like "the the" still map to something non-empty.
pub fn morph_normalize_with(phrase: &str, opts: NormOptions) -> String {
    let tokens = tokenize(phrase);
    let kept: Vec<&String> = tokens
        .iter()
        .filter(|t| {
            !(opts.strip_determiners && stopwords::is_determiner(t)
                || opts.strip_auxiliaries && stopwords::is_auxiliary(t)
                || opts.strip_modifiers && stopwords::is_modifier(t))
        })
        .collect();
    let source: Vec<&String> = if kept.is_empty() { tokens.iter().collect() } else { kept };
    let mut out = String::new();
    for (i, tok) in source.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        if opts.stem {
            out.push_str(&porter(tok));
        } else {
            out.push_str(tok);
        }
    }
    out
}

/// Normalize a noun phrase with the default NP options.
///
/// ```
/// use jocl_text::morph_normalize;
/// assert_eq!(morph_normalize("the Universities of Maryland"),
///            morph_normalize("University of Maryland"));
/// ```
pub fn morph_normalize(phrase: &str) -> String {
    morph_normalize_with(phrase, NormOptions::noun_phrase())
}

/// Normalize a relation phrase with the full §4.2.2 recipe.
///
/// ```
/// use jocl_text::normalize::morph_normalize_rp;
/// assert_eq!(morph_normalize_rp("be a member of"),
///            morph_normalize_rp("was an early member of"));
/// ```
pub fn morph_normalize_rp(phrase: &str) -> String {
    morph_normalize_with(phrase, NormOptions::relation_phrase())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn np_plural_and_determiner() {
        assert_eq!(morph_normalize("the members"), morph_normalize("member"));
    }

    #[test]
    fn rp_paper_example() {
        // Figure 1(a): "be a member of" vs "be an early member of".
        assert_eq!(
            morph_normalize_rp("be a member of"),
            morph_normalize_rp("be an early member of")
        );
    }

    #[test]
    fn rp_tense() {
        assert_eq!(morph_normalize_rp("was working at"), morph_normalize_rp("is working at"));
    }

    #[test]
    fn all_stripped_falls_back() {
        let n = morph_normalize_rp("is the");
        assert!(!n.is_empty());
    }

    #[test]
    fn empty_input() {
        assert_eq!(morph_normalize(""), "");
    }

    #[test]
    fn distinct_relations_stay_distinct() {
        assert_ne!(morph_normalize_rp("be located in"), morph_normalize_rp("be a member of"));
    }

    #[test]
    fn no_stem_option() {
        let opts = NormOptions { stem: false, ..NormOptions::noun_phrase() };
        assert_eq!(morph_normalize_with("the Cats", opts), "cats");
    }
}
