#![forbid(unsafe_code)]
//! # jocl-text
//!
//! Text and string-similarity substrate for the JOCL reproduction
//! (SIGMOD 2021, "Joint Open Knowledge Base Canonicalization and Linking").
//!
//! The paper relies on a handful of lexical signals that are normally
//! provided by off-the-shelf NLP tooling. This crate reimplements all of
//! them from scratch:
//!
//! * [`tokenize`] — lowercase word tokenization used everywhere.
//! * [`stem`] — a full Porter stemmer ([`stem::porter`]).
//! * [`normalize`] — morphological normalization used by the Morph Norm
//!   baseline and by the AMIE rule-miner input ("morphological normalized
//!   OIE triples", paper §3.1.4).
//! * [`sim`] — the string similarity kernels: IDF token overlap
//!   (paper §3.1.3), character n-gram Jaccard and normalized Levenshtein
//!   (paper §3.2.4), Jaro-Winkler (Text Similarity baseline) and token
//!   Jaccard (Attribute Overlap baseline).
//! * [`fx`] — a small, fast, non-cryptographic hasher (FxHash) plus
//!   `HashMap`/`HashSet` aliases used across the workspace for hot lookup
//!   tables, following the Rust performance guide's advice.
//! * [`intern`] — a string interner so phrases and words can be compared
//!   and hashed as `u32` symbols in the hot loops.

pub mod fx;
pub mod intern;
pub mod normalize;
pub mod sim;
pub mod stem;
pub mod stopwords;
pub mod tokenize;

pub use intern::{Interner, Sym};
pub use normalize::morph_normalize;
pub use sim::idf::IdfIndex;
pub use tokenize::tokenize;
