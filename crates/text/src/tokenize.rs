//! Word tokenization.
//!
//! The paper's signals all operate on the word set `w(·)` of a phrase
//! (IDF token overlap, embedding averaging, morphological normalization).
//! We use a deterministic, allocation-conscious tokenizer: lowercase,
//! split on any non-alphanumeric character, drop empty tokens.

/// Tokenize `s` into lowercase alphanumeric words.
///
/// ```
/// use jocl_text::tokenize;
/// assert_eq!(tokenize("University of Maryland"), vec!["university", "of", "maryland"]);
/// assert_eq!(tokenize("be-a-member,of"), vec!["be", "a", "member", "of"]);
/// assert_eq!(tokenize(""), Vec::<String>::new());
/// ```
pub fn tokenize(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Tokenize into borrowed slices when the input is already lowercase ASCII
/// with single-space separators (the normal form used internally).
///
/// Falls back to the same semantics as [`tokenize`] for that restricted
/// input class but avoids per-token allocation.
pub fn tokenize_normed(s: &str) -> impl Iterator<Item = &str> {
    s.split(' ').filter(|t| !t.is_empty())
}

/// Character n-grams of a string (used by the n-gram similarity signal,
/// paper §3.2.4). If the string is shorter than `n`, the whole string is
/// the single gram.
///
/// ```
/// use jocl_text::tokenize::char_ngrams;
/// assert_eq!(char_ngrams("abcd", 3), vec!["abc".to_string(), "bcd".to_string()]);
/// assert_eq!(char_ngrams("ab", 3), vec!["ab".to_string()]);
/// ```
pub fn char_ngrams(s: &str, n: usize) -> Vec<String> {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    if chars.len() <= n {
        return vec![chars.iter().collect()];
    }
    (0..=chars.len() - n).map(|i| chars[i..i + n].iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokenization() {
        assert_eq!(tokenize("Warren Buffett"), vec!["warren", "buffett"]);
    }

    #[test]
    fn punctuation_and_digits() {
        assert_eq!(tokenize("U.S. Route 66!"), vec!["u", "s", "route", "66"]);
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokenize("Überlingen"), vec!["überlingen"]);
    }

    #[test]
    fn whitespace_only() {
        assert!(tokenize("   \t\n").is_empty());
    }

    #[test]
    fn tokenize_normed_skips_empties() {
        let toks: Vec<&str> = tokenize_normed("a  b c").collect();
        assert_eq!(toks, vec!["a", "b", "c"]);
    }

    #[test]
    fn ngrams_empty() {
        assert!(char_ngrams("", 3).is_empty());
    }

    #[test]
    fn ngrams_exact_length() {
        assert_eq!(char_ngrams("abc", 3), vec!["abc".to_string()]);
    }

    #[test]
    fn ngrams_count() {
        assert_eq!(char_ngrams("abcdef", 2).len(), 5);
    }
}
