//! String interning.
//!
//! Phrases and words are compared, hashed and stored billions of times in
//! the JOCL pipeline (pair blocking alone is quadratic in the number of
//! noun phrases before pruning). Interning turns every string into a
//! 4-byte [`Sym`] so hot paths operate on integers, as recommended by the
//! Rust performance guide ("smaller integers" / avoiding repeated
//! allocation).

use crate::fx::FxHashMap;

/// A symbol: an index into an [`Interner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// Index form for slice access.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// An append-only string interner.
///
/// Strings are stored once; [`Interner::intern`] returns a stable [`Sym`]
/// and [`Interner::resolve`] maps back. Lookup is via an Fx-hashed map.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: FxHashMap<Box<str>, Sym>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an interner with capacity for `n` distinct strings.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            map: FxHashMap::with_capacity_and_hasher(n, Default::default()),
            strings: Vec::with_capacity(n),
        }
    }

    /// Intern `s`, returning its symbol. Idempotent.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Sym(u32::try_from(self.strings.len()).expect("interner overflow"));
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Look up an already-interned string without inserting.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.map.get(s).copied()
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.idx()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate over `(Sym, &str)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (Sym(i as u32), s.as_ref()))
    }

    /// Approximate resident heap bytes: string storage (each string is
    /// held twice — once in the id-order vector, once as a map key) plus
    /// the map and vector tables themselves.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let text: usize = self.strings.iter().map(|s| s.len()).sum();
        2 * text
            + self.strings.capacity() * size_of::<Box<str>>()
            + self.map.capacity() * (size_of::<Box<str>>() + size_of::<Sym>() + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("university of maryland");
        let b = i.intern("university of maryland");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_syms() {
        let mut i = Interner::new();
        let a = i.intern("umd");
        let b = i.intern("u21");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "umd");
        assert_eq!(i.resolve(b), "u21");
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert!(i.get("absent").is_none());
        i.intern("present");
        assert!(i.get("present").is_some());
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut i = Interner::new();
        let syms: Vec<Sym> = ["a", "b", "c"].iter().map(|s| i.intern(s)).collect();
        let collected: Vec<(Sym, String)> = i.iter().map(|(s, t)| (s, t.to_string())).collect();
        assert_eq!(
            collected,
            vec![
                (syms[0], "a".to_string()),
                (syms[1], "b".to_string()),
                (syms[2], "c".to_string())
            ]
        );
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
