//! Generic Jaccard similarity over hashable item sets.
//!
//! Used by the Attribute Overlap baseline (paper §4.2.1: "the Jaccard
//! similarity of attributes between two NPs").

use std::collections::HashSet;
use std::hash::{BuildHasher, Hash};

/// Jaccard similarity `|A ∩ B| / |A ∪ B|`. Two empty sets are identical (1).
pub fn jaccard<T: Eq + Hash, S: BuildHasher>(a: &HashSet<T, S>, b: &HashSet<T, S>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    // Iterate the smaller set for the intersection count.
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let inter = small.iter().filter(|x| large.contains(*x)).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Jaccard similarity over slices (items deduplicated first).
pub fn jaccard_slices<T: Eq + Hash + Clone>(a: &[T], b: &[T]) -> f64 {
    let sa: HashSet<T> = a.iter().cloned().collect();
    let sb: HashSet<T> = b.iter().cloned().collect();
    jaccard(&sa, &sb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        assert_eq!(jaccard_slices(&[1, 2, 3], &[2, 3, 4]), 0.5);
        assert_eq!(jaccard_slices(&[1], &[1]), 1.0);
        assert_eq!(jaccard_slices(&[1], &[2]), 0.0);
    }

    #[test]
    fn empty_sets() {
        let e: [u32; 0] = [];
        assert_eq!(jaccard_slices(&e, &e), 1.0);
        assert_eq!(jaccard_slices(&e, &[1]), 0.0);
    }

    #[test]
    fn duplicates_are_set_semantics() {
        assert_eq!(jaccard_slices(&[1, 1, 2], &[1, 2, 2]), 1.0);
    }

    #[test]
    fn string_attributes() {
        let a = ["locate in|maryland", "member of|u21"];
        let b = ["member of|u21", "found in|1856"];
        let s = jaccard_slices(&a, &b);
        assert!((s - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry() {
        let a = [1, 2, 3, 4];
        let b = [3, 4, 5];
        assert_eq!(jaccard_slices(&a, &b), jaccard_slices(&b, &a));
    }
}
