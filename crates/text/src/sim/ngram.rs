//! Character n-gram Jaccard similarity (paper §3.2.4).
//!
//! > "Ngram can convert a string into a set of ngrams (i.e., a sequence of
//! > n characters). The similarity between strings based on ngram could be
//! > Jaccard similarity between their sets of ngrams."

use crate::fx::FxHashSet;
use crate::tokenize::char_ngrams;

/// Default gram width, the common trigram choice.
pub const DEFAULT_N: usize = 3;

/// Jaccard similarity of the character-`n`-gram sets of `a` and `b`.
/// Two empty strings are identical (1); an empty vs non-empty string is 0.
pub fn ngram_jaccard_n(a: &str, b: &str, n: usize) -> f64 {
    let ga: FxHashSet<String> = char_ngrams(a, n).into_iter().collect();
    let gb: FxHashSet<String> = char_ngrams(b, n).into_iter().collect();
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    let inter = ga.intersection(&gb).count();
    let union = ga.len() + gb.len() - inter;
    inter as f64 / union as f64
}

/// Trigram Jaccard similarity (the `f_ngram` feature of §3.2.4).
pub fn ngram_jaccard(a: &str, b: &str) -> f64 {
    ngram_jaccard_n(a, b, DEFAULT_N)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_is_one() {
        assert_eq!(ngram_jaccard("capital of", "capital of"), 1.0);
    }

    #[test]
    fn disjoint_is_zero() {
        assert_eq!(ngram_jaccard("aaaa", "bbbb"), 0.0);
    }

    #[test]
    fn empties() {
        assert_eq!(ngram_jaccard("", ""), 1.0);
        assert_eq!(ngram_jaccard("", "abc"), 0.0);
    }

    #[test]
    fn paraphrases_score_high() {
        let s = ngram_jaccard("is the capital of", "is the capital city of");
        assert!(s > 0.5, "got {s}");
    }

    #[test]
    fn symmetry_and_bounds() {
        let pairs = [("located in", "location"), ("member of", "was member of")];
        for (a, b) in pairs {
            let ab = ngram_jaccard(a, b);
            let ba = ngram_jaccard(b, a);
            assert!((ab - ba).abs() < 1e-12);
            assert!((0.0..=1.0).contains(&ab));
        }
    }

    #[test]
    fn short_strings_use_whole_string_gram() {
        assert_eq!(ngram_jaccard_n("ab", "ab", 3), 1.0);
        assert_eq!(ngram_jaccard_n("ab", "ba", 3), 0.0);
    }

    #[test]
    fn bigram_variant() {
        let s = ngram_jaccard_n("night", "nacht", 2);
        assert!(s > 0.0 && s < 1.0);
    }
}
