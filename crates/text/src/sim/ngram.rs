//! Character n-gram Jaccard similarity (paper §3.2.4).
//!
//! > "Ngram can convert a string into a set of ngrams (i.e., a sequence of
//! > n characters). The similarity between strings based on ngram could be
//! > Jaccard similarity between their sets of ngrams."

use crate::tokenize::char_ngrams;

/// Default gram width, the common trigram choice.
pub const DEFAULT_N: usize = 3;

/// A precomputed character-n-gram set (sorted, deduplicated). Building
/// the set once per phrase and intersecting by merge turns the repeated
/// `ngram_jaccard` calls of candidate scans from
/// O(tokenize + hash-set build) per *pair* into O(merge) per pair.
#[derive(Debug, Clone, Default)]
pub struct NgramSet {
    grams: Vec<String>,
}

impl NgramSet {
    /// The `n`-gram set of `s` (set semantics: duplicates collapse).
    pub fn build(s: &str, n: usize) -> Self {
        let mut grams = char_ngrams(s, n);
        grams.sort_unstable();
        grams.dedup();
        Self { grams }
    }

    /// Trigram set (the [`DEFAULT_N`] used by `f_ngram`).
    pub fn trigrams(s: &str) -> Self {
        Self::build(s, DEFAULT_N)
    }

    /// Number of distinct grams.
    pub fn len(&self) -> usize {
        self.grams.len()
    }

    /// True for the empty set (empty input string).
    pub fn is_empty(&self) -> bool {
        self.grams.is_empty()
    }

    /// Jaccard similarity with another set; identical semantics to
    /// [`ngram_jaccard_n`] on the original strings (two empty sets are
    /// defined as identical).
    pub fn jaccard(&self, other: &NgramSet) -> f64 {
        jaccard_from_sorted(&self.grams, &other.grams)
    }
}

/// Size of the intersection of two sorted, deduplicated slices
/// (two-pointer merge).
pub fn sorted_intersection_count<T: Ord>(a: &[T], b: &[T]) -> usize {
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter
}

/// Jaccard similarity of two sorted, deduplicated sets; two empty sets
/// are defined as identical (1), one empty set scores 0.
pub fn jaccard_from_sorted<T: Ord>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = sorted_intersection_count(a, b);
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Jaccard similarity of the character-`n`-gram sets of `a` and `b`.
/// Two empty strings are identical (1); an empty vs non-empty string is 0.
pub fn ngram_jaccard_n(a: &str, b: &str, n: usize) -> f64 {
    NgramSet::build(a, n).jaccard(&NgramSet::build(b, n))
}

/// Trigram Jaccard similarity (the `f_ngram` feature of §3.2.4).
pub fn ngram_jaccard(a: &str, b: &str) -> f64 {
    ngram_jaccard_n(a, b, DEFAULT_N)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_is_one() {
        assert_eq!(ngram_jaccard("capital of", "capital of"), 1.0);
    }

    #[test]
    fn disjoint_is_zero() {
        assert_eq!(ngram_jaccard("aaaa", "bbbb"), 0.0);
    }

    #[test]
    fn empties() {
        assert_eq!(ngram_jaccard("", ""), 1.0);
        assert_eq!(ngram_jaccard("", "abc"), 0.0);
    }

    #[test]
    fn paraphrases_score_high() {
        let s = ngram_jaccard("is the capital of", "is the capital city of");
        assert!(s > 0.5, "got {s}");
    }

    #[test]
    fn symmetry_and_bounds() {
        let pairs = [("located in", "location"), ("member of", "was member of")];
        for (a, b) in pairs {
            let ab = ngram_jaccard(a, b);
            let ba = ngram_jaccard(b, a);
            assert!((ab - ba).abs() < 1e-12);
            assert!((0.0..=1.0).contains(&ab));
        }
    }

    #[test]
    fn short_strings_use_whole_string_gram() {
        assert_eq!(ngram_jaccard_n("ab", "ab", 3), 1.0);
        assert_eq!(ngram_jaccard_n("ab", "ba", 3), 0.0);
    }

    #[test]
    fn bigram_variant() {
        let s = ngram_jaccard_n("night", "nacht", 2);
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn precomputed_set_matches_direct_call() {
        let phrases = ["is the capital of", "located in", "", "ab", "aaaa"];
        for a in phrases {
            let sa = NgramSet::trigrams(a);
            for b in phrases {
                let sb = NgramSet::trigrams(b);
                assert_eq!(sa.jaccard(&sb), ngram_jaccard(a, b), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn set_len_dedups() {
        assert_eq!(NgramSet::trigrams("aaaaaa").len(), 1);
        assert!(NgramSet::trigrams("").is_empty());
    }
}
