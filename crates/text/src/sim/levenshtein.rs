//! Levenshtein edit distance and its normalized similarity (paper §3.2.4).
//!
//! > "LD can calculate the number of deletions, insertions, or
//! > substitutions required to transform a string into another string ...
//! > We normalize LD to a range from 0 to 1."

/// Raw Levenshtein distance between `a` and `b` (unit costs), computed with
/// the classic two-row dynamic program over `char`s.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur: Vec<usize> = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized Levenshtein similarity: `1 - LD(a,b) / max(|a|,|b|)`,
/// in `[0, 1]`; two empty strings are defined to be identical (1).
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let max = la.max(lb);
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
    }

    #[test]
    fn unicode_counts_chars_not_bytes() {
        assert_eq!(levenshtein("café", "cafe"), 1);
    }

    #[test]
    fn similarity_bounds() {
        for (a, b) in [("abc", "xyz"), ("a", ""), ("same", "same"), ("", "")] {
            let s = levenshtein_sim(a, b);
            assert!((0.0..=1.0).contains(&s), "sim({a},{b}) = {s}");
        }
    }

    #[test]
    fn identical_is_one_disjoint_is_zero() {
        assert_eq!(levenshtein_sim("member of", "member of"), 1.0);
        assert_eq!(levenshtein_sim("abc", "xyz"), 0.0);
    }

    #[test]
    fn symmetry() {
        let ab = levenshtein_sim("is the capital of", "is the capital city of");
        let ba = levenshtein_sim("is the capital city of", "is the capital of");
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab > 0.7, "paraphrase pair should be close: {ab}");
    }

    #[test]
    fn triangle_inequality_on_distance() {
        let (a, b, c) = ("locate in", "located in", "living in");
        assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
    }
}
