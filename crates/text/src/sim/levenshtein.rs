//! Levenshtein edit distance and its normalized similarity (paper §3.2.4).
//!
//! > "LD can calculate the number of deletions, insertions, or
//! > substitutions required to transform a string into another string ...
//! > We normalize LD to a range from 0 to 1."

/// Raw Levenshtein distance between `a` and `b` (unit costs).
///
/// ASCII strings whose shorter side fits a machine word run Myers'
/// bit-parallel algorithm (O(n) word operations); everything else falls
/// back to the classic two-row dynamic program over `char`s. Both paths
/// compute the identical distance.
pub fn levenshtein(a: &str, b: &str) -> usize {
    if a.is_empty() || b.is_empty() {
        return a.chars().count().max(b.chars().count());
    }
    if a.is_ascii() && b.is_ascii() {
        let (p, t) = if a.len() <= b.len() {
            (a.as_bytes(), b.as_bytes())
        } else {
            (b.as_bytes(), a.as_bytes())
        };
        if p.len() <= 64 {
            return levenshtein_myers_ascii(p, t);
        }
    }
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    levenshtein_classic(&ac, &bc)
}

/// Classic two-row dynamic program (any `PartialEq` alphabet).
fn levenshtein_classic<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur: Vec<usize> = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Myers' bit-parallel Levenshtein (Hyyrö's formulation): the pattern's
/// positions live in one 64-bit word, and every text character updates
/// the whole DP column with a handful of word operations. Requires
/// `1 ≤ pattern.len() ≤ 64`; bits above the pattern length carry garbage
/// but never flow back into the tracked bit, so the score is exact.
fn levenshtein_myers_ascii(pattern: &[u8], text: &[u8]) -> usize {
    debug_assert!(!pattern.is_empty() && pattern.len() <= 64);
    let m = pattern.len();
    let mut peq = [0u64; 128];
    for (i, &c) in pattern.iter().enumerate() {
        peq[c as usize] |= 1 << i;
    }
    let last = 1u64 << (m - 1);
    let mut pv = u64::MAX;
    let mut mv = 0u64;
    let mut score = m;
    for &c in text {
        let eq = peq[c as usize];
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let mut ph = mv | !(xh | pv);
        let mut mh = pv & xh;
        if ph & last != 0 {
            score += 1;
        }
        if mh & last != 0 {
            score -= 1;
        }
        ph = (ph << 1) | 1;
        mh <<= 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
    }
    score
}

/// Normalized Levenshtein similarity: `1 - LD(a,b) / max(|a|,|b|)`,
/// in `[0, 1]`; two empty strings are defined to be identical (1).
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let max = la.max(lb);
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// `max(floor, levenshtein_sim(a, b))`, skipping work the running best
/// score `floor` already rules out. Exact drop-in for
/// `floor.max(levenshtein_sim(a, b))` in max-accumulation scans
/// (candidate ranking):
///
/// * the distance is at least `||a| − |b||`, so when that length bound
///   caps the similarity at `floor` the dynamic program is skipped
///   entirely;
/// * otherwise a **budgeted** DP runs: once every cell of a row exceeds
///   the edit budget `K` (the largest distance still beating `floor`),
///   the true similarity is provably below `floor` and the scan aborts;
/// * ASCII inputs run on bytes directly (no per-call `char` buffers).
pub fn levenshtein_sim_at_least(a: &str, b: &str, floor: f64) -> f64 {
    levenshtein_sim_at_least_gated(a, b, floor, f64::NEG_INFINITY)
}

/// [`levenshtein_sim_at_least`] with an additional *gate*: the result is
/// exact (`max(floor, sim)`) whenever `sim ≥ gate`, but when `sim < gate`
/// the function may return `floor` without finishing the dynamic program.
/// For exact top-k scans the gate is the current k-th best score: any
/// similarity strictly below it can never enter the ranking, so its exact
/// value is irrelevant — but equality with the gate (a potential tie) is
/// still computed exactly.
pub fn levenshtein_sim_at_least_gated(a: &str, b: &str, floor: f64, gate: f64) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let max = la.max(lb);
    if max == 0 {
        return floor.max(1.0);
    }
    let bound = 1.0 - la.abs_diff(lb) as f64 / max as f64;
    if bound <= floor || bound < gate {
        return floor;
    }
    // The bit-parallel kernel makes the full distance cheap enough that
    // no DP-internal budgeting is needed beyond the length prechecks.
    floor.max(1.0 - levenshtein(a, b) as f64 / max as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
    }

    #[test]
    fn unicode_counts_chars_not_bytes() {
        assert_eq!(levenshtein("café", "cafe"), 1);
    }

    #[test]
    fn similarity_bounds() {
        for (a, b) in [("abc", "xyz"), ("a", ""), ("same", "same"), ("", "")] {
            let s = levenshtein_sim(a, b);
            assert!((0.0..=1.0).contains(&s), "sim({a},{b}) = {s}");
        }
    }

    #[test]
    fn identical_is_one_disjoint_is_zero() {
        assert_eq!(levenshtein_sim("member of", "member of"), 1.0);
        assert_eq!(levenshtein_sim("abc", "xyz"), 0.0);
    }

    #[test]
    fn symmetry() {
        let ab = levenshtein_sim("is the capital of", "is the capital city of");
        let ba = levenshtein_sim("is the capital city of", "is the capital of");
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab > 0.7, "paraphrase pair should be close: {ab}");
    }

    #[test]
    fn triangle_inequality_on_distance() {
        let (a, b, c) = ("locate in", "located in", "living in");
        assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
    }

    /// Deterministic xorshift for the oracle test below.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn myers_matches_classic_dp_oracle() {
        let alphabet = b"ab cde";
        let mut state = 0x243F6A8885A308D3u64;
        for _ in 0..500 {
            let la = (xorshift(&mut state) % 30) as usize;
            let lb = (xorshift(&mut state) % 30) as usize;
            let mk = |n: usize, state: &mut u64| -> String {
                (0..n)
                    .map(|_| alphabet[(xorshift(state) % alphabet.len() as u64) as usize] as char)
                    .collect()
            };
            let a = mk(la, &mut state);
            let b = mk(lb, &mut state);
            let ac: Vec<char> = a.chars().collect();
            let bc: Vec<char> = b.chars().collect();
            assert_eq!(levenshtein(&a, &b), levenshtein_classic(&ac, &bc), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn myers_handles_64_char_patterns() {
        let a = "a".repeat(64);
        let b = format!("{}b", "a".repeat(63));
        assert_eq!(levenshtein(&a, &b), 1);
        let c = "x".repeat(70); // falls back to the classic DP
        assert_eq!(levenshtein(&a, &c), 70);
    }

    #[test]
    fn at_least_matches_naive_max() {
        let phrases = ["located in", "location", "", "a", "be a member of", "member"];
        for a in phrases {
            for b in phrases {
                for floor in [0.0, 0.3, 0.75, 1.0] {
                    assert_eq!(
                        levenshtein_sim_at_least(a, b, floor),
                        floor.max(levenshtein_sim(a, b)),
                        "{a:?} vs {b:?} floor {floor}"
                    );
                }
            }
        }
    }
}
