//! Jaro and Jaro-Winkler similarity.
//!
//! The Text Similarity baseline of Galárraga et al. (paper §4.2.1) scores
//! NP pairs with Jaro-Winkler [Winkler 1999] and clusters with HAC.

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_matched = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_match_chars: Vec<char> = Vec::new();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == *ca {
                b_matched[j] = true;
                a_match_chars.push(*ca);
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Count transpositions: compare matched sequences in order.
    let b_match_chars: Vec<char> =
        b.iter().zip(b_matched.iter()).filter(|(_, &m)| m).map(|(c, _)| *c).collect();
    let transpositions =
        a_match_chars.iter().zip(b_match_chars.iter()).filter(|(x, y)| x != y).count() / 2;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by a common-prefix bonus of up to
/// 4 characters with scaling factor `p = 0.1` (the standard constants).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a.chars().zip(b.chars()).take(4).take_while(|(x, y)| x == y).count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-3
    }

    #[test]
    fn textbook_jaro() {
        // Classic record-linkage examples.
        assert!(close(jaro("martha", "marhta"), 0.944));
        assert!(close(jaro("dixon", "dicksonx"), 0.767));
        assert!(close(jaro("jellyfish", "smellyfish"), 0.896));
    }

    #[test]
    fn textbook_jaro_winkler() {
        assert!(close(jaro_winkler("martha", "marhta"), 0.961));
        assert!(close(jaro_winkler("dixon", "dicksonx"), 0.813));
    }

    #[test]
    fn identity_and_disjoint() {
        assert_eq!(jaro("same", "same"), 1.0);
        assert_eq!(jaro_winkler("same", "same"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro_winkler("abc", "xyz"), 0.0);
    }

    #[test]
    fn empty_strings() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("", "abc"), 0.0);
        assert_eq!(jaro("abc", ""), 0.0);
    }

    #[test]
    fn symmetry() {
        let ab = jaro_winkler("university of maryland", "university of virginia");
        let ba = jaro_winkler("university of virginia", "university of maryland");
        assert!(close(ab, ba));
    }

    #[test]
    fn winkler_at_least_jaro() {
        for (a, b) in [("martha", "marhta"), ("abcdef", "abcxyz"), ("ab", "ba")] {
            assert!(jaro_winkler(a, b) >= jaro(a, b) - 1e-12);
        }
    }

    #[test]
    fn bounds() {
        for (a, b) in [("a", "ab"), ("umd", "university of maryland"), ("x", "x")] {
            let s = jaro_winkler(a, b);
            assert!((0.0..=1.0).contains(&s), "jw({a},{b}) = {s}");
        }
    }
}
