//! String similarity kernels.
//!
//! Every kernel returns a similarity in `[0, 1]` (1 = identical). These are
//! the lexical feature functions of the paper:
//!
//! | kernel | paper use |
//! |---|---|
//! | [`idf::IdfIndex::sim`] | `Sim_idf` — NP/RP canonicalization signal (§3.1.3) and the blocking threshold (§4.1) |
//! | [`ngram::ngram_jaccard`] | `f_ngram` — relation linking signal (§3.2.4) |
//! | [`levenshtein::levenshtein_sim`] | `f_LD` — relation linking signal (§3.2.4) |
//! | [`jaro::jaro_winkler`] | Text Similarity baseline (§4.2.1) |
//! | [`jaccard::jaccard`] | Attribute Overlap baseline (§4.2.1) |

pub mod idf;
pub mod jaccard;
pub mod jaro;
pub mod levenshtein;
pub mod ngram;

pub use idf::IdfIndex;
pub use jaccard::{jaccard, jaccard_slices};
pub use jaro::{jaro, jaro_winkler};
pub use levenshtein::{
    levenshtein, levenshtein_sim, levenshtein_sim_at_least, levenshtein_sim_at_least_gated,
};
pub use ngram::{jaccard_from_sorted, ngram_jaccard, sorted_intersection_count, NgramSet};
