//! IDF token overlap similarity (paper §3.1.3).
//!
//! > "Inverse document frequency (IDF) token overlap is based on the
//! > assumption that two NPs sharing infrequent words are more likely to
//! > refer to the same object in the world."
//!
//! The similarity between two phrases is
//!
//! ```text
//!              Σ_{x ∈ w(s_i) ∩ w(s_j)}  log(1 + f(x))^(-1)
//! Sim_idf  =  ─────────────────────────────────────────────
//!              Σ_{x ∈ w(s_i) ∪ w(s_j)}  log(1 + f(x))^(-1)
//! ```
//!
//! where `w(·)` is the word set of a phrase and `f(x)` the frequency of
//! word `x` over all NPs (or RPs) in the OIE triple collection. Sharing the
//! rare word "buffett" counts far more than sharing "the".

use crate::fx::FxHashMap;
use crate::tokenize::tokenize;

/// Word-frequency index over a phrase collection, exposing `Sim_idf`.
#[derive(Debug, Default, Clone)]
pub struct IdfIndex {
    freq: FxHashMap<String, u64>,
    total_words: u64,
}

impl IdfIndex {
    /// Empty index. Every word gets frequency 1 (maximal informativeness).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build an index from a collection of phrases (each phrase counted
    /// once; word multiplicity inside a phrase counts).
    pub fn build<'a, I: IntoIterator<Item = &'a str>>(phrases: I) -> Self {
        let mut idx = Self::new();
        for p in phrases {
            idx.add_phrase(p);
        }
        idx
    }

    /// Add one phrase's words to the frequency table.
    pub fn add_phrase(&mut self, phrase: &str) {
        for tok in tokenize(phrase) {
            *self.freq.entry(tok).or_insert(0) += 1;
            self.total_words += 1;
        }
    }

    /// Frequency of `word` (≥ 1: unseen words behave like hapaxes, keeping
    /// the weight `1/log(1+f)` finite).
    pub fn frequency(&self, word: &str) -> u64 {
        self.freq.get(word).copied().unwrap_or(0).max(1)
    }

    /// IDF weight of a word: `1 / log(1 + f(x))` with natural log.
    #[inline]
    pub fn weight(&self, word: &str) -> f64 {
        1.0 / (1.0 + self.frequency(word) as f64).ln()
    }

    /// Number of distinct words indexed.
    pub fn vocab_size(&self) -> usize {
        self.freq.len()
    }

    /// `Sim_idf(a, b)` ∈ [0, 1]. Both phrases are tokenized and deduplicated
    /// (the formula operates on word *sets*). Empty∩empty yields 0.
    pub fn sim(&self, a: &str, b: &str) -> f64 {
        let wa: Vec<String> = dedup(tokenize(a));
        let wb: Vec<String> = dedup(tokenize(b));
        self.sim_tokens(&wa, &wb)
    }

    /// `Sim_idf` over pre-tokenized, deduplicated word sets. Hot-path entry
    /// point used by pair blocking.
    pub fn sim_tokens(&self, wa: &[String], wb: &[String]) -> f64 {
        if wa.is_empty() || wb.is_empty() {
            return 0.0;
        }
        let mut inter = 0.0;
        let mut union = 0.0;
        for x in wa {
            let w = self.weight(x);
            union += w;
            if wb.iter().any(|y| y == x) {
                inter += w;
            }
        }
        for y in wb {
            if !wa.iter().any(|x| x == y) {
                union += self.weight(y);
            }
        }
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }
}

fn dedup(mut v: Vec<String>) -> Vec<String> {
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> IdfIndex {
        IdfIndex::build([
            "warren buffett",
            "buffett",
            "the university of maryland",
            "the university of virginia",
            "the oracle of omaha",
        ])
    }

    #[test]
    fn identical_phrases_are_1() {
        let i = idx();
        assert!((i.sim("warren buffett", "warren buffett") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_phrases_are_0() {
        let i = idx();
        assert_eq!(i.sim("warren buffett", "omaha"), 0.0);
    }

    #[test]
    fn rare_shared_word_beats_common_shared_word() {
        // Controlled corpus: "the" is frequent (f=3), "rare" is a hapax.
        // Both test pairs have the same shape (one shared + one unshared
        // hapax each), so only the shared word's frequency differs.
        let i = IdfIndex::build(["the a", "the b", "the c", "rare d"]);
        let rare = i.sim("rare x", "rare y");
        let common = i.sim("the x", "the y");
        assert!(rare > common, "rare {rare} vs common {common}");
    }

    #[test]
    fn paper_example_buffett() {
        // §3.1.3: "Warren Buffett" and "Buffett" share an infrequent word,
        // making them likely co-referent — the similarity must be well
        // above the score for sharing no word at all.
        let i = idx();
        let s = i.sim("Warren Buffett", "Buffett");
        assert!(s > 0.3, "got {s}");
        assert!(s > i.sim("Warren Buffett", "Omaha"));
    }

    #[test]
    fn symmetry() {
        let i = idx();
        let ab = i.sim("the university of maryland", "maryland");
        let ba = i.sim("maryland", "the university of maryland");
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn range_bounds() {
        let i = idx();
        for (a, b) in [
            ("warren buffett", "the oracle of omaha"),
            ("university", "university of maryland"),
            ("", "x"),
            ("", ""),
        ] {
            let s = i.sim(a, b);
            assert!((0.0..=1.0).contains(&s), "sim({a},{b}) = {s}");
        }
    }

    #[test]
    fn unseen_words_still_comparable() {
        let i = idx();
        let s = i.sim("zanzibar archipelago", "zanzibar");
        assert!(s > 0.0);
    }

    #[test]
    fn duplicate_tokens_are_set_semantics() {
        let i = idx();
        assert!((i.sim("buffett buffett", "buffett") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_floor() {
        let i = IdfIndex::new();
        assert_eq!(i.frequency("anything"), 1);
        assert!(i.weight("anything").is_finite());
    }
}
