//! Property tests: LBP against brute-force exact inference.

use jocl_fg::exact::exact_marginals;
use jocl_fg::lbp::run_lbp;
use jocl_fg::{FactorGraph, LbpOptions, MessageStore, Params, Potential, VarId};
use proptest::prelude::*;

/// A random tree-structured pairwise model over binary variables.
/// Variable i > 0 connects to a random parent j < i.
fn tree_model() -> impl Strategy<Value = (FactorGraph, Params)> {
    (2usize..7)
        .prop_flat_map(|n| {
            let parents = (1..n).map(|i| 0..i).collect::<Vec<_>>();
            (
                Just(n),
                parents,
                proptest::collection::vec(-1.5f64..1.5, n), // unary scores for state 1
                proptest::collection::vec(-1.0f64..1.0, n - 1), // pairwise agreement scores
            )
        })
        .prop_map(|(n, parents, unary, pair)| {
            let mut g = FactorGraph::new();
            let vars: Vec<VarId> = (0..n).map(|_| g.add_var(2)).collect();
            let mut params = Params::new();
            let grp = params.add_group_with(vec![1.0]);
            for (i, &u) in unary.iter().enumerate() {
                g.add_factor(&[vars[i]], Potential::Scores { group: grp, scores: vec![0.0, u] }, 0);
            }
            for (i, (&p, &w)) in parents.iter().zip(&pair).enumerate() {
                g.add_factor(
                    &[vars[p], vars[i + 1]],
                    Potential::Scores { group: grp, scores: vec![w, 0.0, 0.0, w] },
                    0,
                );
            }
            (g, params)
        })
}

/// A random (possibly loopy) model: n binary vars, m random pairwise
/// factors, a few unary factors.
fn loopy_model() -> impl Strategy<Value = (FactorGraph, Params)> {
    (3usize..6, 2usize..8)
        .prop_flat_map(|(n, m)| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n, -0.8f64..0.8), m),
                proptest::collection::vec(-1.0f64..1.0, n),
            )
        })
        .prop_map(|(n, edges, unary)| {
            let mut g = FactorGraph::new();
            let vars: Vec<VarId> = (0..n).map(|_| g.add_var(2)).collect();
            let mut params = Params::new();
            let grp = params.add_group_with(vec![1.0]);
            for (i, &u) in unary.iter().enumerate() {
                g.add_factor(&[vars[i]], Potential::Scores { group: grp, scores: vec![0.0, u] }, 0);
            }
            for (a, b, w) in edges {
                if a == b {
                    continue;
                }
                g.add_factor(
                    &[vars[a], vars[b]],
                    Potential::Scores { group: grp, scores: vec![w, 0.0, 0.0, w] },
                    0,
                );
            }
            (g, params)
        })
}

fn tight_opts() -> LbpOptions {
    LbpOptions { tol: 1e-10, max_iters: 1000, damping: 0.0, ..Default::default() }
}

/// A random mixed model exercising everything the pooled sweep handles:
/// variables of mixed cardinality and scheduling class, dense pairwise
/// factors, sparse ternary two-level factors, plus a random clamp set
/// and a random phased schedule.
#[allow(clippy::type_complexity)]
fn pooled_model(
) -> impl Strategy<Value = (FactorGraph, Params, Vec<(VarId, u32)>, jocl_fg::Schedule)> {
    (4usize..9, 3usize..10, 0usize..3, 0u8..2)
        .prop_flat_map(|(n, m, n_clamps, phased)| {
            (
                proptest::collection::vec((2u32..4, 0u8..2), n), // (card, class)
                proptest::collection::vec((0..n, 0..n, -0.9f64..0.9, 0u8..3), m), // pair factors
                proptest::collection::vec((0..n, 0..n, 0..n, 0u64..1000), 2), // two-level factors
                proptest::collection::vec((0..n, 0u32..2), n_clamps),
                Just(phased == 1),
            )
        })
        .prop_map(|(vars_spec, pairs, two_levels, clamps, phased)| {
            let mut g = FactorGraph::new();
            let vars: Vec<VarId> =
                vars_spec.iter().map(|&(c, cl)| g.add_var_with_class(c, cl)).collect();
            let mut params = Params::new();
            let grp = params.add_group_with(vec![1.0]);
            let tl_grp = params.add_group_with(vec![1.3]);
            for (a, b, w, class) in pairs {
                if a == b {
                    continue;
                }
                let size = (g.cardinality(vars[a]) * g.cardinality(vars[b])) as usize;
                let scores: Vec<f64> = (0..size).map(|i| w * (i % 3) as f64).collect();
                g.add_factor(&[vars[a], vars[b]], Potential::Scores { group: grp, scores }, class);
            }
            for (a, b, c, seed) in two_levels {
                if a == b || b == c || a == c {
                    continue;
                }
                let size = (g.cardinality(vars[a])
                    * g.cardinality(vars[b])
                    * g.cardinality(vars[c])) as usize;
                let high: Vec<u32> = (0..size as u32)
                    .filter(|x| (x.wrapping_mul(2654435761) ^ seed as u32).is_multiple_of(3))
                    .collect();
                g.add_factor(
                    &[vars[a], vars[b], vars[c]],
                    Potential::two_level(tl_grp, size, high, 0.9, 0.1),
                    2,
                );
            }
            let clamps: Vec<(VarId, u32)> =
                clamps.into_iter().map(|(v, s)| (vars[v], s % g.cardinality(vars[v]))).collect();
            let schedule = if phased {
                jocl_fg::Schedule::Phased {
                    factor_phases: vec![vec![0], vec![1, 2]],
                    var_phases: vec![vec![0], vec![1]],
                }
            } else {
                jocl_fg::Schedule::Synchronous
            };
            (g, params, clamps, schedule)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On trees, LBP is exact.
    #[test]
    fn lbp_exact_on_trees((g, params) in tree_model()) {
        let exact = exact_marginals(&g, &params, &[]);
        let (lbp, res) = run_lbp(&g, &params, &[], &tight_opts());
        prop_assert!(res.converged);
        for v in 0..g.num_vars() {
            let v = VarId(v as u32);
            prop_assert!(
                (exact.prob(v, 1) - lbp.prob(v, 1)).abs() < 1e-6,
                "var {:?}: exact {} vs lbp {}", v, exact.prob(v, 1), lbp.prob(v, 1)
            );
        }
    }

    /// On trees with evidence, clamped LBP matches conditional exact
    /// marginals.
    #[test]
    fn lbp_exact_on_trees_with_evidence((g, params) in tree_model()) {
        let clamp = [(VarId(0), 1u32)];
        let exact = exact_marginals(&g, &params, &clamp);
        let (lbp, _) = run_lbp(&g, &params, &clamp, &tight_opts());
        for v in 0..g.num_vars() {
            let v = VarId(v as u32);
            prop_assert!(
                (exact.prob(v, 1) - lbp.prob(v, 1)).abs() < 1e-5,
                "var {:?}: exact {} vs lbp {}", v, exact.prob(v, 1), lbp.prob(v, 1)
            );
        }
    }

    /// On loopy graphs LBP is approximate, but the marginals must always
    /// be valid distributions and deterministic across thread counts.
    #[test]
    fn lbp_valid_and_thread_invariant_on_loopy((g, params) in loopy_model()) {
        let opts1 = LbpOptions { threads: 1, ..tight_opts() };
        let opts4 = LbpOptions { threads: 4, ..tight_opts() };
        let (m1, _) = run_lbp(&g, &params, &[], &opts1);
        let (m4, _) = run_lbp(&g, &params, &[], &opts4);
        for v in 0..g.num_vars() {
            let v = VarId(v as u32);
            let p = m1.of(v);
            let total: f64 = p.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
            prop_assert!((m1.prob(v, 1) - m4.prob(v, 1)).abs() < 1e-12);
        }
    }

    /// A sparse two-level potential is exactly equivalent to the dense
    /// Scores table it abbreviates.
    #[test]
    fn two_level_matches_dense(
        cards in proptest::collection::vec(2u32..5, 2..4),
        high_fraction in 0.0f64..0.5,
        seed in 0u64..1000,
    ) {
        let size: usize = cards.iter().map(|&c| c as usize).product();
        // Deterministic pseudo-random subset of high configs.
        let mut high_configs = Vec::new();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for flat in 0..size {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if (state % 1000) as f64 / 1000.0 < high_fraction {
                high_configs.push(flat as u32);
            }
        }
        let dense_scores: Vec<f64> = (0..size)
            .map(|f| if high_configs.contains(&(f as u32)) { 0.9 } else { 0.1 })
            .collect();

        let build = |potential: Potential| -> (FactorGraph, Params) {
            let mut g = FactorGraph::new();
            let vars: Vec<VarId> = cards.iter().map(|&c| g.add_var(c)).collect();
            let mut params = Params::new();
            let grp = params.add_group_with(vec![1.7]);
            let potential = match potential {
                Potential::Scores { scores, .. } => Potential::Scores { group: grp, scores },
                Potential::TwoLevelScores { size, high_configs, high, low, .. } =>
                    Potential::TwoLevelScores { group: grp, size, high_configs, high, low },
                other => other,
            };
            g.add_factor(&vars, potential, 0);
            (g, params)
        };
        let (gd, pd) = build(Potential::Scores { group: 0, scores: dense_scores });
        let (gs, ps) = build(Potential::two_level(0, size, high_configs, 0.9, 0.1));
        let (md, _) = run_lbp(&gd, &pd, &[], &tight_opts());
        let (ms, _) = run_lbp(&gs, &ps, &[], &tight_opts());
        for v in 0..gd.num_vars() {
            let v = VarId(v as u32);
            for s in 0..gd.cardinality(v) {
                prop_assert!((md.prob(v, s) - ms.prob(v, s)).abs() < 1e-12);
            }
        }
        let _ = gs;
    }

    /// The pooled factor sweep must be **bit-identical** to the serial
    /// one across random graphs (mixed cardinalities, dense + two-level
    /// potentials), schedules, clamp sets, and thread counts —
    /// `exact_threads` forces real workers even on small machines.
    #[test]
    fn pooled_lbp_bit_identical_to_serial(
        (g, params, clamps, schedule) in pooled_model()
    ) {
        let serial = LbpOptions {
            threads: 1,
            max_iters: 40,
            tol: 1e-8,
            schedule: schedule.clone(),
            ..Default::default()
        };
        let (m1, r1) = run_lbp(&g, &params, &clamps, &serial);
        for threads in [2usize, 4] {
            let pooled = LbpOptions {
                threads,
                exact_threads: true,
                ..serial.clone()
            };
            let (mt, rt) = run_lbp(&g, &params, &clamps, &pooled);
            prop_assert_eq!(r1.iterations, rt.iterations);
            prop_assert_eq!(r1.residual.to_bits(), rt.residual.to_bits());
            for v in 0..g.num_vars() {
                let v = VarId(v as u32);
                for s in 0..g.cardinality(v) {
                    prop_assert_eq!(
                        m1.prob(v, s).to_bits(),
                        mt.prob(v, s).to_bits(),
                        "thread count changed a marginal bit: var {:?} state {} ({} vs {})",
                        v, s, m1.prob(v, s), mt.prob(v, s)
                    );
                }
            }
        }
    }

    /// Residual-scheduled LBP must reach the same fixed point as the
    /// synchronous sweeps — same marginals within tolerance — on random
    /// mixed graphs (dense + two-level potentials, clamps, phased and
    /// flooding schedules), for any thread count; and the residual
    /// trajectory itself must be bit-identical across thread counts.
    #[test]
    fn residual_schedule_matches_synchronous(
        (g, params, clamps, schedule) in pooled_model()
    ) {
        let sync_opts = LbpOptions {
            threads: 1,
            max_iters: 500,
            tol: 1e-9,
            schedule: schedule.clone(),
            ..Default::default()
        };
        let (ms, rs) = run_lbp(&g, &params, &clamps, &sync_opts);
        let residual_opts = LbpOptions {
            mode: jocl_fg::ScheduleMode::Residual,
            exact_threads: true,
            ..sync_opts.clone()
        };
        let (m1, r1) = run_lbp(&g, &params, &clamps, &residual_opts);
        prop_assert_eq!(rs.converged, r1.converged);
        if rs.converged {
            for v in 0..g.num_vars() {
                let v = VarId(v as u32);
                for s in 0..g.cardinality(v) {
                    prop_assert!(
                        (ms.prob(v, s) - m1.prob(v, s)).abs() < 1e-5,
                        "var {:?} state {}: sync {} vs residual {}",
                        v, s, ms.prob(v, s), m1.prob(v, s)
                    );
                }
            }
        }
        for threads in [2usize, 4] {
            let (mt, rt) = run_lbp(
                &g,
                &params,
                &clamps,
                &LbpOptions { threads, ..residual_opts.clone() },
            );
            prop_assert_eq!(r1.message_updates, rt.message_updates);
            for v in 0..g.num_vars() {
                let v = VarId(v as u32);
                for s in 0..g.cardinality(v) {
                    prop_assert_eq!(
                        m1.prob(v, s).to_bits(),
                        mt.prob(v, s).to_bits(),
                        "thread count changed a residual-mode marginal bit"
                    );
                }
            }
        }
    }

    /// Damping changes the trajectory but not the fixed point on trees.
    #[test]
    fn damping_invariant_fixed_point((g, params) in tree_model()) {
        let (m0, _) = run_lbp(&g, &params, &[], &tight_opts());
        let damped = LbpOptions { damping: 0.4, ..tight_opts() };
        let (m1, _) = run_lbp(&g, &params, &[], &damped);
        for v in 0..g.num_vars() {
            let v = VarId(v as u32);
            prop_assert!((m0.prob(v, 1) - m1.prob(v, 1)).abs() < 1e-6);
        }
    }

    /// The memory-wall certification gate: on random mixed graphs, under
    /// every thread count × both schedule modes, the quantized committed
    /// arena decodes within the **explicit tolerance** the store
    /// documents — per slot, `|x - anchor| · ε_f32` against the block's
    /// anchor (the block's first finite value), with a small absolute
    /// floor for the `anchor + r` rounding step — and the quantized
    /// bytes themselves are bit-identical across thread counts, which is
    /// what lets a writer and a replica commit the same representation.
    #[test]
    fn quantized_commit_within_tolerance_across_threads_and_schedules(
        (g, params, clamps, schedule) in pooled_model(),
        residual_mode in 0usize..2,
    ) {
        use jocl_fg::lbp::LbpEngine;
        use jocl_fg::store::QUANT_BLOCK;

        let mode = if residual_mode == 1 {
            jocl_fg::ScheduleMode::Residual
        } else {
            jocl_fg::ScheduleMode::Synchronous
        };
        let mut reference: Option<jocl_fg::LbpMessages> = None;
        for threads in [1usize, 2, 4] {
            let opts = LbpOptions {
                threads,
                exact_threads: threads > 1,
                max_iters: 60,
                tol: 1e-8,
                mode,
                schedule: schedule.clone(),
                ..Default::default()
            };
            let mut eng = LbpEngine::new(&g);
            for &(v, s) in &clamps {
                eng.set_clamp(v, Some(s));
            }
            eng.run(&params, &opts);
            let exact = eng.export_messages();
            let quant = eng.export_messages_with(MessageStore::Quantized);

            // Explicit tolerance gate, one direction (fv — vf is the
            // same code path): decode error is bounded by the residual's
            // f32 rounding against the block anchor.
            for (exact_arena, quant_arena) in
                [(exact.fv(), quant.fv()), (exact.vf(), quant.vf())]
            {
                let xs = exact_arena.to_vec();
                let ys = quant_arena.to_vec();
                prop_assert_eq!(xs.len(), ys.len());
                for (block_idx, block) in xs.chunks(QUANT_BLOCK).enumerate() {
                    let anchor =
                        block.iter().copied().find(|x| x.is_finite()).unwrap_or(0.0);
                    for (i, &x) in block.iter().enumerate() {
                        let y = ys[block_idx * QUANT_BLOCK + i];
                        if x.is_nan() {
                            prop_assert!(y.is_nan());
                        } else if x.is_infinite() {
                            prop_assert_eq!(x, y);
                        } else {
                            let tol =
                                (x - anchor).abs() * f32::EPSILON as f64 + 1e-12;
                            prop_assert!(
                                (x - y).abs() <= tol,
                                "block {} slot {} ({:?}, {} threads): {} decoded as {} \
                                 (tolerance {:e})",
                                block_idx, i, mode, threads, x, y, tol
                            );
                        }
                    }
                }
            }

            // Writer/replica determinism: the quantized representation
            // is a pure function of the converged state, which is
            // itself bit-identical across thread counts.
            match &reference {
                None => reference = Some(quant),
                Some(first) => prop_assert!(
                    first.bitwise_eq(&quant),
                    "quantized commit differs across thread counts ({:?})",
                    mode
                ),
            }
        }
    }
}
