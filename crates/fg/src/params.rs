//! Parameter storage for the factor graph.
//!
//! Weights are organized into **groups** shared by all factors of the same
//! family, exactly as the paper ties weights: one vector α₁ for every F1
//! factor, one scalar β₄ for every U4 factor, and so on. Group ids are
//! allocated by the model builder (`jocl-core`) and referenced by
//! [`crate::Potential`]s.

/// Weight groups: `groups[g]` is the weight vector ω_g of group `g`.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    groups: Vec<Vec<f64>>,
}

impl Params {
    /// No groups yet.
    pub fn new() -> Self {
        Self { groups: Vec::new() }
    }

    /// Add a group of `len` weights, all initialized to `init`.
    /// Returns the group id.
    pub fn add_group(&mut self, len: usize, init: f64) -> usize {
        self.groups.push(vec![init; len]);
        self.groups.len() - 1
    }

    /// Add a group with explicit initial weights; returns the group id.
    pub fn add_group_with(&mut self, weights: Vec<f64>) -> usize {
        self.groups.push(weights);
        self.groups.len() - 1
    }

    /// Rebuild a parameter set from raw group vectors (ids follow the
    /// vector order) — the read half of weight persistence.
    pub fn from_groups(groups: Vec<Vec<f64>>) -> Params {
        Params { groups }
    }

    /// All weight groups in id order — the write half of weight
    /// persistence.
    pub fn groups(&self) -> &[Vec<f64>] {
        &self.groups
    }

    /// Weight vector of group `g`.
    pub fn group(&self, g: usize) -> &[f64] {
        &self.groups[g]
    }

    /// Mutable weight vector of group `g`.
    pub fn group_mut(&mut self, g: usize) -> &mut Vec<f64> {
        &mut self.groups[g]
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Total number of scalar weights across groups.
    pub fn num_weights(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// Apply `delta` (same shape as the params) scaled by `step`:
    /// `ω ← ω + step · delta`.
    pub fn step(&mut self, delta: &Params, step: f64) {
        assert_eq!(self.groups.len(), delta.groups.len(), "param shape mismatch");
        for (g, d) in self.groups.iter_mut().zip(&delta.groups) {
            assert_eq!(g.len(), d.len(), "group shape mismatch");
            for (w, dw) in g.iter_mut().zip(d) {
                *w += step * dw;
            }
        }
    }

    /// A zero-filled parameter set with the same shape.
    pub fn zeros_like(&self) -> Params {
        Params { groups: self.groups.iter().map(|g| vec![0.0; g.len()]).collect() }
    }

    /// L2 norm over all weights.
    pub fn l2_norm(&self) -> f64 {
        self.groups.iter().flat_map(|g| g.iter()).map(|w| w * w).sum::<f64>().sqrt()
    }
}

impl Default for Params {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_allocate_sequential_ids() {
        let mut p = Params::new();
        assert_eq!(p.add_group(3, 1.0), 0);
        assert_eq!(p.add_group(1, 0.5), 1);
        assert_eq!(p.num_groups(), 2);
        assert_eq!(p.num_weights(), 4);
        assert_eq!(p.group(0), &[1.0, 1.0, 1.0]);
        assert_eq!(p.group(1), &[0.5]);
    }

    #[test]
    fn step_applies_scaled_delta() {
        let mut p = Params::new();
        p.add_group(2, 1.0);
        let mut d = p.zeros_like();
        d.group_mut(0)[0] = 2.0;
        d.group_mut(0)[1] = -1.0;
        p.step(&d, 0.5);
        assert_eq!(p.group(0), &[2.0, 0.5]);
    }

    #[test]
    fn zeros_like_matches_shape() {
        let mut p = Params::new();
        p.add_group(3, 0.7);
        p.add_group(1, 0.2);
        let z = p.zeros_like();
        assert_eq!(z.num_groups(), 2);
        assert_eq!(z.group(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn l2_norm() {
        let mut p = Params::new();
        p.add_group_with(vec![3.0, 4.0]);
        assert!((p.l2_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn step_shape_mismatch_panics() {
        let mut p = Params::new();
        p.add_group(2, 0.0);
        let mut q = Params::new();
        q.add_group(2, 0.0);
        q.add_group(1, 0.0);
        p.step(&q, 1.0);
    }
}
