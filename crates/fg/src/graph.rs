//! Factor graph representation.
//!
//! Variables are discrete with arbitrary cardinality; factors connect up
//! to a handful of distinct variables and carry an exponential-linear
//! potential referencing a shared parameter group (paper Eq. 1). Joint
//! configurations of a factor are flattened row-major with **slot 0
//! fastest**: `flat = Σ_k state_k · stride_k`, `stride_0 = 1`,
//! `stride_k = stride_{k-1} · card_{k-1}`.

use crate::params::Params;

/// Identifier of a variable node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// Index form for slice access.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a factor node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactorId(pub u32);

impl FactorId {
    /// Index form for slice access.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// The potential (factor function) attached to a factor node.
#[derive(Debug, Clone)]
pub enum Potential {
    /// `log φ(c) = ω_g · f(c)`: one feature vector per flat configuration.
    /// Used for the paper's F1–F6 signal factors.
    Features {
        /// Parameter group holding ω_g.
        group: usize,
        /// `feats[flat_config]` = feature vector (all the same length as
        /// the group's weight vector).
        feats: Vec<Vec<f64>>,
    },
    /// `log φ(c) = ω_g[0] · u(c)`: a scalar score per flat configuration
    /// scaled by a single weight. Used for the paper's U1–U7 factors.
    Scores {
        /// Parameter group holding the scalar weight β.
        group: usize,
        /// `scores[flat_config]` = u(c).
        scores: Vec<f64>,
    },
    /// A two-level score table stored sparsely: `u(c) = high` for the
    /// listed configurations and `low` everywhere else. Semantically
    /// identical to [`Potential::Scores`] but O(|high|) memory instead of
    /// O(K³) — the natural representation for the fact-inclusion factor
    /// U4 (§3.2.5), whose score is 0.9 on CKB facts and 0.1 otherwise.
    TwoLevelScores {
        /// Parameter group holding the scalar weight β.
        group: usize,
        /// Total number of joint configurations.
        size: usize,
        /// Sorted flat indexes of high-scoring configurations.
        high_configs: Vec<u32>,
        /// Score of listed configurations.
        high: f64,
        /// Score of all other configurations.
        low: f64,
    },
}

impl Potential {
    /// Number of joint configurations covered.
    pub fn table_len(&self) -> usize {
        match self {
            Potential::Features { feats, .. } => feats.len(),
            Potential::Scores { scores, .. } => scores.len(),
            Potential::TwoLevelScores { size, .. } => *size,
        }
    }

    /// Parameter group referenced by this potential.
    pub fn group(&self) -> usize {
        match self {
            Potential::Features { group, .. }
            | Potential::Scores { group, .. }
            | Potential::TwoLevelScores { group, .. } => *group,
        }
    }

    /// The raw score `u(flat)` for score-style potentials (`None` for
    /// feature potentials). Used by the learning gradient.
    #[inline]
    pub fn score(&self, flat: usize) -> Option<f64> {
        match self {
            Potential::Features { .. } => None,
            Potential::Scores { scores, .. } => Some(scores[flat]),
            Potential::TwoLevelScores { high_configs, high, low, .. } => {
                Some(if high_configs.binary_search(&(flat as u32)).is_ok() { *high } else { *low })
            }
        }
    }

    /// Log-potential of configuration `flat` under `params`.
    #[inline]
    pub fn log_phi(&self, params: &Params, flat: usize) -> f64 {
        match self {
            Potential::Features { group, feats } => {
                let w = params.group(*group);
                let f = &feats[flat];
                debug_assert_eq!(w.len(), f.len(), "feature/weight arity mismatch");
                w.iter().zip(f).map(|(wi, fi)| wi * fi).sum()
            }
            Potential::Scores { group, scores } => params.group(*group)[0] * scores[flat],
            Potential::TwoLevelScores { group, high_configs, high, low, .. } => {
                let u =
                    if high_configs.binary_search(&(flat as u32)).is_ok() { *high } else { *low };
                params.group(*group)[0] * u
            }
        }
    }

    /// Build a [`Potential::TwoLevelScores`], sorting and deduplicating
    /// the high-config list.
    pub fn two_level(
        group: usize,
        size: usize,
        mut high_configs: Vec<u32>,
        high: f64,
        low: f64,
    ) -> Potential {
        high_configs.sort_unstable();
        high_configs.dedup();
        assert!(
            high_configs.last().is_none_or(|&c| (c as usize) < size),
            "high config out of range"
        );
        Potential::TwoLevelScores { group, size, high_configs, high, low }
    }

    /// Build a [`Potential::Scores`] from per-configuration probabilities
    /// in `[0, 1]` — the **side-information injection seam**: imported
    /// evidence (alias tables, external-KB links) enters inference as one
    /// of these unary score potentials on a linking variable, `u(c)` the
    /// calibrated belief that configuration `c` is the imported target,
    /// scaled by the side-information weight group like every other
    /// score factor. Centered at 0.5 so an uninformative probability
    /// contributes nothing relative to its alternatives.
    ///
    /// # Panics
    /// Panics on an empty table or any probability outside `[0, 1]`
    /// (non-finite included) — imported side information is validated at
    /// the boundary, never silently clamped.
    pub fn from_probs(group: usize, probs: Vec<f64>) -> Potential {
        assert!(!probs.is_empty(), "side-information potential needs at least one configuration");
        for &p in &probs {
            assert!(
                p.is_finite() && (0.0..=1.0).contains(&p),
                "side-information probability must be in [0, 1], got {p}"
            );
        }
        Potential::Scores { group, scores: probs }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct FactorData {
    pub vars: Vec<VarId>,
    pub potential: Potential,
    pub class: u8,
    pub strides: Vec<usize>,
    pub table_size: usize,
}

/// A factor waiting to be inserted — the unit of batched graph
/// construction. Builders assemble `FactorSpec` lists off-thread (e.g. one
/// batch per blocking shard) and merge them with
/// [`FactorGraph::add_factor_batch`].
#[derive(Debug, Clone)]
pub struct FactorSpec {
    /// Variables in slot order (must be distinct and already added).
    pub vars: Vec<VarId>,
    /// The potential; its table length must match the joint configuration
    /// count of `vars`.
    pub potential: Potential,
    /// Scheduling class.
    pub class: u8,
}

impl FactorSpec {
    /// Convenience constructor.
    pub fn new(vars: impl Into<Vec<VarId>>, potential: Potential, class: u8) -> Self {
        Self { vars: vars.into(), potential, class }
    }
}

/// A discrete factor graph.
#[derive(Debug, Clone, Default)]
pub struct FactorGraph {
    cards: Vec<u32>,
    var_classes: Vec<u8>,
    pub(crate) factors: Vec<FactorData>,
    /// Per-variable adjacency: `(factor index, slot within factor)`.
    pub(crate) var_adj: Vec<Vec<(u32, u32)>>,
}

impl FactorGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a variable with `cardinality` states and scheduling class 0.
    pub fn add_var(&mut self, cardinality: u32) -> VarId {
        self.add_var_with_class(cardinality, 0)
    }

    /// Add a variable with an explicit scheduling `class` (used by the
    /// paper's phased message schedule, e.g. canonicalization vs linking
    /// variables).
    pub fn add_var_with_class(&mut self, cardinality: u32, class: u8) -> VarId {
        assert!(cardinality >= 1, "variables need at least one state");
        let id = VarId(u32::try_from(self.cards.len()).expect("too many variables"));
        self.cards.push(cardinality);
        self.var_classes.push(class);
        self.var_adj.push(Vec::new());
        id
    }

    /// Add a factor over `vars` (distinct) with the given potential and
    /// scheduling class.
    ///
    /// # Panics
    /// Panics if a variable repeats, a variable id is out of range, or the
    /// potential's table length does not equal the product of the
    /// variables' cardinalities.
    pub fn add_factor(&mut self, vars: &[VarId], potential: Potential, class: u8) -> FactorId {
        assert!(!vars.is_empty(), "factors need at least one variable");
        for (i, v) in vars.iter().enumerate() {
            assert!(v.idx() < self.cards.len(), "unknown variable {v:?}");
            assert!(!vars[..i].contains(v), "repeated variable {v:?} in factor");
        }
        let mut strides = Vec::with_capacity(vars.len());
        let mut size = 1usize;
        for v in vars {
            strides.push(size);
            size *= self.cards[v.idx()] as usize;
        }
        assert_eq!(
            potential.table_len(),
            size,
            "potential table length must equal the joint configuration count"
        );
        let fid = FactorId(u32::try_from(self.factors.len()).expect("too many factors"));
        for (slot, v) in vars.iter().enumerate() {
            self.var_adj[v.idx()].push((fid.0, slot as u32));
        }
        self.factors.push(FactorData {
            vars: vars.to_vec(),
            potential,
            class,
            strides,
            table_size: size,
        });
        fid
    }

    /// Replace factor `f`'s potential with the **neutral** one: a sparse
    /// two-level table with no high configurations and both levels at
    /// score 0, so `log φ ≡ 0` for every joint configuration under any
    /// weights. A neutral factor passes no information — once its
    /// messages settle they are uniform, and the marginals of its
    /// variables are what they would be if the factor were absent.
    ///
    /// This is the **tombstone** primitive of the serving subsystem:
    /// retracting an OIE triple must remove its evidence from the model,
    /// but the factor graph is append-only (node ids are load-bearing
    /// for warm-started message passing), so the factor is down-weighted
    /// to nothing instead of being deleted. Structure (variables, class,
    /// table size, adjacency) is untouched; the O(table) feature/score
    /// payload is dropped, so a tombstoned graph also *shrinks* in
    /// memory. Idempotent.
    pub fn neutralize_factor(&mut self, f: FactorId) {
        let fd = &mut self.factors[f.idx()];
        fd.potential = Potential::TwoLevelScores {
            group: fd.potential.group(),
            size: fd.table_size,
            high_configs: Vec::new(),
            high: 0.0,
            low: 0.0,
        };
    }

    /// Pre-size the node stores for `extra_vars` more variables and
    /// `extra_factors` more factors (adjacency lists grow on demand).
    /// Sharded builders call this once per merge so the insert loop never
    /// reallocates.
    pub fn reserve(&mut self, extra_vars: usize, extra_factors: usize) {
        self.cards.reserve(extra_vars);
        self.var_classes.reserve(extra_vars);
        self.var_adj.reserve(extra_vars);
        self.factors.reserve(extra_factors);
    }

    /// Add `count` variables sharing one cardinality and scheduling class;
    /// returns their ids (consecutive). The bulk form of
    /// [`FactorGraph::add_var_with_class`] used when a shard's variables
    /// are allocated before its factor batch is computed.
    pub fn add_vars(&mut self, count: usize, cardinality: u32, class: u8) -> Vec<VarId> {
        self.reserve(count, 0);
        (0..count).map(|_| self.add_var_with_class(cardinality, class)).collect()
    }

    /// Insert a batch of factors in order; returns the id of the first
    /// (ids are consecutive, so spec `i` becomes `FactorId(first.0 + i)`).
    /// Equivalent to calling [`FactorGraph::add_factor`] per spec, with
    /// one up-front reservation instead of incremental growth.
    pub fn add_factor_batch(&mut self, specs: impl IntoIterator<Item = FactorSpec>) -> FactorId {
        let specs = specs.into_iter();
        self.reserve(0, specs.size_hint().0);
        let first = FactorId(self.factors.len() as u32);
        for spec in specs {
            self.add_factor(&spec.vars, spec.potential, spec.class);
        }
        first
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.cards.len()
    }

    /// Number of factors.
    pub fn num_factors(&self) -> usize {
        self.factors.len()
    }

    /// Resident heap bytes of the graph structure: cardinalities,
    /// classes, adjacency, factor metadata and potential tables
    /// (capacity-based — what the allocator actually holds).
    pub fn heap_bytes(&self) -> usize {
        let potential = |p: &Potential| match p {
            Potential::Features { feats, .. } => {
                feats.capacity() * std::mem::size_of::<Vec<f64>>()
                    + feats.iter().map(|row| row.capacity() * 8).sum::<usize>()
            }
            Potential::Scores { scores, .. } => scores.capacity() * 8,
            Potential::TwoLevelScores { high_configs, .. } => high_configs.capacity() * 4,
        };
        self.cards.capacity() * 4
            + self.var_classes.capacity()
            + self.factors.capacity() * std::mem::size_of::<FactorData>()
            + self
                .factors
                .iter()
                .map(|f| f.vars.capacity() * 4 + f.strides.capacity() * 8 + potential(&f.potential))
                .sum::<usize>()
            + self.var_adj.capacity() * std::mem::size_of::<Vec<(u32, u32)>>()
            + self.var_adj.iter().map(|a| a.capacity() * 8).sum::<usize>()
    }

    /// Cardinality of variable `v`.
    pub fn cardinality(&self, v: VarId) -> u32 {
        self.cards[v.idx()]
    }

    /// Scheduling class of variable `v`.
    pub fn var_class(&self, v: VarId) -> u8 {
        self.var_classes[v.idx()]
    }

    /// Scheduling class of factor `f`.
    pub fn factor_class(&self, f: FactorId) -> u8 {
        self.factors[f.idx()].class
    }

    /// The variables of factor `f`, in slot order.
    pub fn factor_vars(&self, f: FactorId) -> &[VarId] {
        &self.factors[f.idx()].vars
    }

    /// The potential of factor `f`.
    pub fn factor_potential(&self, f: FactorId) -> &Potential {
        &self.factors[f.idx()].potential
    }

    /// Factors adjacent to variable `v` as `(FactorId, slot)` pairs.
    pub fn var_factors(&self, v: VarId) -> impl Iterator<Item = (FactorId, usize)> + '_ {
        self.var_adj[v.idx()].iter().map(|&(f, s)| (FactorId(f), s as usize))
    }

    /// Degree (number of adjacent factors) of variable `v`.
    pub fn var_degree(&self, v: VarId) -> usize {
        self.var_adj[v.idx()].len()
    }

    /// Flatten a per-slot state assignment of factor `f` into a table
    /// index.
    pub fn flat_index(&self, f: FactorId, states: &[u32]) -> usize {
        let fd = &self.factors[f.idx()];
        debug_assert_eq!(states.len(), fd.vars.len());
        states.iter().zip(&fd.strides).map(|(&s, &st)| s as usize * st).sum()
    }

    /// Recover the state of slot `slot` from a flat table index of `f`.
    #[inline]
    pub fn state_of_slot(&self, f: FactorId, flat: usize, slot: usize) -> u32 {
        let fd = &self.factors[f.idx()];
        let card = self.cards[fd.vars[slot].idx()] as usize;
        ((flat / fd.strides[slot]) % card) as u32
    }

    /// Table size (number of joint configurations) of factor `f`.
    pub fn table_size(&self, f: FactorId) -> usize {
        self.factors[f.idx()].table_size
    }

    /// Sum of table sizes over all factors (a proxy for LBP iteration
    /// cost).
    pub fn total_table_size(&self) -> usize {
        self.factors.iter().map(|f| f.table_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unary(group: usize, feats: Vec<Vec<f64>>) -> Potential {
        Potential::Features { group, feats }
    }

    #[test]
    fn build_small_graph() {
        let mut g = FactorGraph::new();
        let a = g.add_var(2);
        let b = g.add_var(3);
        let f = g.add_factor(&[a, b], Potential::Scores { group: 0, scores: vec![0.0; 6] }, 1);
        assert_eq!(g.num_vars(), 2);
        assert_eq!(g.num_factors(), 1);
        assert_eq!(g.table_size(f), 6);
        assert_eq!(g.factor_class(f), 1);
        assert_eq!(g.var_degree(a), 1);
        let adj: Vec<_> = g.var_factors(b).collect();
        assert_eq!(adj, vec![(f, 1)]);
    }

    #[test]
    fn flat_indexing_roundtrip() {
        let mut g = FactorGraph::new();
        let a = g.add_var(2);
        let b = g.add_var(3);
        let c = g.add_var(4);
        let f = g.add_factor(&[a, b, c], Potential::Scores { group: 0, scores: vec![0.0; 24] }, 0);
        for sa in 0..2u32 {
            for sb in 0..3u32 {
                for sc in 0..4u32 {
                    let flat = g.flat_index(f, &[sa, sb, sc]);
                    assert_eq!(g.state_of_slot(f, flat, 0), sa);
                    assert_eq!(g.state_of_slot(f, flat, 1), sb);
                    assert_eq!(g.state_of_slot(f, flat, 2), sc);
                }
            }
        }
    }

    #[test]
    fn log_phi_features_dot_product() {
        let mut params = Params::new();
        let grp = params.add_group_with(vec![2.0, -1.0]);
        let pot = unary(grp, vec![vec![1.0, 0.5], vec![0.0, 1.0]]);
        assert!((pot.log_phi(&params, 0) - 1.5).abs() < 1e-12);
        assert!((pot.log_phi(&params, 1) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_phi_scores_scaled() {
        let mut params = Params::new();
        let grp = params.add_group_with(vec![3.0]);
        let pot = Potential::Scores { group: grp, scores: vec![0.9, 0.1] };
        assert!((pot.log_phi(&params, 0) - 2.7).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "repeated variable")]
    fn repeated_var_panics() {
        let mut g = FactorGraph::new();
        let a = g.add_var(2);
        g.add_factor(&[a, a], Potential::Scores { group: 0, scores: vec![0.0; 4] }, 0);
    }

    #[test]
    #[should_panic(expected = "table length")]
    fn wrong_table_len_panics() {
        let mut g = FactorGraph::new();
        let a = g.add_var(2);
        g.add_factor(&[a], Potential::Scores { group: 0, scores: vec![0.0; 3] }, 0);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn zero_cardinality_panics() {
        let mut g = FactorGraph::new();
        g.add_var(0);
    }

    #[test]
    fn var_classes() {
        let mut g = FactorGraph::new();
        let a = g.add_var_with_class(2, 7);
        assert_eq!(g.var_class(a), 7);
    }

    #[test]
    fn add_vars_bulk_matches_singles() {
        let mut g = FactorGraph::new();
        let vars = g.add_vars(3, 2, 5);
        assert_eq!(vars, vec![VarId(0), VarId(1), VarId(2)]);
        assert!(vars.iter().all(|&v| g.cardinality(v) == 2 && g.var_class(v) == 5));
        // Ids keep advancing across bulk and single adds.
        assert_eq!(g.add_var(3), VarId(3));
    }

    #[test]
    fn factor_batch_matches_sequential_adds() {
        let build = |batched: bool| -> FactorGraph {
            let mut g = FactorGraph::new();
            let a = g.add_var(2);
            let b = g.add_var(3);
            let specs = vec![
                FactorSpec::new(vec![a], Potential::Scores { group: 0, scores: vec![0.1, 0.9] }, 1),
                FactorSpec::new(
                    vec![a, b],
                    Potential::Scores { group: 0, scores: vec![0.0; 6] },
                    2,
                ),
            ];
            if batched {
                let first = g.add_factor_batch(specs);
                assert_eq!(first, FactorId(0));
            } else {
                for s in specs {
                    g.add_factor(&s.vars, s.potential, s.class);
                }
            }
            g
        };
        let (batched, sequential) = (build(true), build(false));
        assert_eq!(batched.num_factors(), sequential.num_factors());
        for f in 0..batched.num_factors() {
            let f = FactorId(f as u32);
            assert_eq!(batched.factor_vars(f), sequential.factor_vars(f));
            assert_eq!(batched.factor_class(f), sequential.factor_class(f));
            assert_eq!(batched.table_size(f), sequential.table_size(f));
        }
        let adj_b: Vec<_> = batched.var_factors(VarId(0)).collect();
        let adj_s: Vec<_> = sequential.var_factors(VarId(0)).collect();
        assert_eq!(adj_b, adj_s);
    }

    /// The append-safe growth contract the incremental pipeline relies
    /// on: adding vars/factors never renumbers existing nodes, never
    /// reorders existing adjacency, and leaves existing potentials
    /// untouched — the grown graph is the two-stage build of the same
    /// final structure.
    #[test]
    fn append_preserves_existing_structure() {
        let stage1 = |g: &mut FactorGraph| {
            let a = g.add_var(2);
            let b = g.add_var(3);
            g.add_factor(&[a], Potential::Scores { group: 0, scores: vec![0.1, 0.9] }, 1);
            g.add_factor(&[a, b], Potential::Scores { group: 0, scores: vec![0.0; 6] }, 2);
        };
        let mut grown = FactorGraph::new();
        stage1(&mut grown);
        let before = format!("{grown:?}");
        // Append a second stage touching an old variable.
        let c = grown.add_var(2);
        grown.add_factor_batch([FactorSpec::new(
            vec![VarId(0), c],
            Potential::Scores { group: 0, scores: vec![0.0; 4] },
            3,
        )]);
        assert_eq!(c, VarId(2), "ids keep advancing");
        assert_eq!(grown.num_factors(), 3);
        // Old factors and their var lists are untouched…
        let mut prefix = FactorGraph::new();
        stage1(&mut prefix);
        for f in 0..prefix.num_factors() {
            let f = FactorId(f as u32);
            assert_eq!(grown.factor_vars(f), prefix.factor_vars(f));
            assert_eq!(grown.factor_class(f), prefix.factor_class(f));
        }
        // …and old adjacency lists only gain appended entries.
        let adj_a: Vec<_> = grown.var_factors(VarId(0)).collect();
        assert_eq!(adj_a, vec![(FactorId(0), 0), (FactorId(1), 0), (FactorId(2), 0)]);
        let adj_b: Vec<_> = grown.var_factors(VarId(1)).collect();
        assert_eq!(adj_b, vec![(FactorId(1), 1)]);
        assert!(before.len() < format!("{grown:?}").len());
    }

    /// The tombstone primitive: a neutralized factor scores 0 on every
    /// configuration under any weights, while structure (vars, class,
    /// adjacency, table size) is untouched and the call is idempotent.
    #[test]
    fn neutralized_factor_is_uniform_under_any_weights() {
        let mut g = FactorGraph::new();
        let a = g.add_var(2);
        let b = g.add_var(3);
        let f = g.add_factor(&[a, b], unary(0, (0..6).map(|i| vec![i as f64, 1.0]).collect()), 7);
        let mut params = Params::new();
        params.add_group_with(vec![2.0, -1.0]);
        assert!(g.factor_potential(f).log_phi(&params, 3) != 0.0);
        g.neutralize_factor(f);
        for flat in 0..g.table_size(f) {
            assert_eq!(g.factor_potential(f).log_phi(&params, flat), 0.0);
            assert_eq!(g.factor_potential(f).score(flat), Some(0.0));
        }
        assert_eq!(g.factor_vars(f), &[a, b]);
        assert_eq!(g.factor_class(f), 7);
        assert_eq!(g.table_size(f), 6);
        assert_eq!(g.var_degree(a), 1, "adjacency survives the tombstone");
        g.neutralize_factor(f); // idempotent
        assert_eq!(g.factor_potential(f).log_phi(&params, 0), 0.0);
    }

    /// The side-information seam: `from_probs` is an ordinary unary
    /// score potential (`log φ = β · p`), and out-of-range or non-finite
    /// probabilities are rejected at the boundary.
    #[test]
    fn from_probs_is_a_scaled_score_potential() {
        let p = Potential::from_probs(3, vec![0.95, 0.05, 0.5]);
        assert_eq!(p.group(), 3);
        assert_eq!(p.table_len(), 3);
        let mut params = Params::new();
        for _ in 0..4 {
            params.add_group(1, 2.0);
        }
        assert_eq!(p.log_phi(&params, 0), 2.0 * 0.95);
        assert_eq!(p.score(1), Some(0.05));
        for bad in [vec![1.5], vec![-0.1], vec![f64::NAN], vec![f64::INFINITY], vec![]] {
            assert!(
                std::panic::catch_unwind(|| Potential::from_probs(0, bad.clone())).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn reserve_is_observably_inert() {
        let mut g = FactorGraph::new();
        g.reserve(100, 100);
        assert_eq!(g.num_vars(), 0);
        assert_eq!(g.num_factors(), 0);
        let v = g.add_var(2);
        g.add_factor(&[v], Potential::Scores { group: 0, scores: vec![0.0, 1.0] }, 0);
        assert_eq!(g.num_factors(), 1);
    }
}
