//! Message-arena storage behind the committed-snapshot seam.
//!
//! [`crate::lbp::LbpEngine`] always *computes* in flat `f64` arenas —
//! that is what keeps sweeps bit-identical across thread counts — but
//! the **committed** messages a long-lived session holds between deltas
//! ([`crate::LbpMessages`]) dominate resident memory and the snapshot
//! wire format at scale. This module is the seam between the two: a
//! committed arena is either the exact `f64` image of the engine state
//! or a quantized form at half the bytes, chosen per session by
//! [`MessageStore`].
//!
//! ## Quantized representation
//!
//! [`QuantArena`] stores each 64-slot block as one `f64` **anchor**
//! (the block's first finite value, kept at full precision — the
//! "per-block f64 accumulator" that keeps damping/normalization
//! arithmetic stable after a resume) plus `f32` **residuals** relative
//! to that anchor. Normalized log-messages cluster tightly within a
//! factor's edge span, so residuals are small and the `f32` mantissa is
//! spent on actual information; the worst case (a block mixing clamped
//! `LOG_ZERO ≈ -1e4` evidence with ordinary messages) still bounds the
//! absolute decode error by `|spread| · ε_f32 ≈ 1e-3` on values whose
//! probabilities are astronomically separated anyway.
//!
//! Two properties the serving contracts rely on, certified by tests
//! here and by proptests over the full pipeline:
//!
//! * **determinism** — encoding is a pure function of the input bits,
//!   so writer and replica quantize identically;
//! * **idempotence** — `encode(decode(encode(x))) == encode(x)`
//!   bit-for-bit on representative message data. The anchor is an
//!   element of the block (not a mean), so re-encoding a decoded block
//!   reproduces the exact anchor, and residuals survive the
//!   `f64 → f32` round trip (signed zeros are canonicalized at encode
//!   so the fixed point is bitwise; the only residuals that can drift
//!   are those below the anchor's `f64` precision window, ~2⁻²⁹ of the
//!   anchor — far beyond quantization tolerance either way). The parity
//!   contracts (restart, replica) rely only on determinism plus
//!   bit-exact serialization: both the uninterrupted and the restored
//!   session resume from the *same committed representation*, so their
//!   subsequent commits agree bit-for-bit regardless.

/// Values per quantization block (one `f64` anchor per block).
pub const QUANT_BLOCK: usize = 64;

/// Which committed-message representation a session keeps between
/// deltas. The engine's working state is `f64` either way; this only
/// selects what [`crate::lbp::LbpEngine::export_messages_with`]
/// commits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MessageStore {
    /// Bit-exact `f64` arenas (the default): commit/resume round-trips
    /// are identity, 8 bytes per message slot.
    #[default]
    Exact,
    /// Per-block `f64` anchors + `f32` residuals: ~4.13 bytes per slot,
    /// decode within quantization tolerance of the exact path.
    Quantized,
}

/// A quantized message arena: per-block anchors at full precision,
/// per-slot residuals at `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantArena {
    anchors: Vec<f64>,
    residuals: Vec<f32>,
}

impl QuantArena {
    /// Quantize a flat arena. Pure and deterministic.
    pub fn encode(xs: &[f64]) -> Self {
        let mut anchors = Vec::with_capacity(xs.len().div_ceil(QUANT_BLOCK));
        let mut residuals = Vec::with_capacity(xs.len());
        for block in xs.chunks(QUANT_BLOCK) {
            // The anchor must be finite (a ±∞ anchor would wipe out the
            // whole block's finite values); a block with no finite value
            // anchors at 0.0 so ±∞/NaN residuals pass through verbatim.
            // `+ 0.0` canonicalizes -0.0 to +0.0 (decode would flip the
            // sign of zero anyway, so storing it would break the
            // fixed-point property).
            let anchor = block.iter().copied().find(|x| x.is_finite()).unwrap_or(0.0) + 0.0;
            residuals.extend(block.iter().map(|&x| (((x + 0.0) - anchor) as f32) + 0.0));
            anchors.push(anchor);
        }
        Self { anchors, residuals }
    }

    /// Number of message slots.
    pub fn len(&self) -> usize {
        self.residuals.len()
    }

    /// True for a zero-slot arena.
    pub fn is_empty(&self) -> bool {
        self.residuals.is_empty()
    }

    /// Dequantize into `out` (must have length [`QuantArena::len`]).
    pub fn decode_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.len(), "decode target length mismatch");
        for (b, chunk) in out.chunks_mut(QUANT_BLOCK).enumerate() {
            let anchor = self.anchors[b];
            for (y, &r) in chunk.iter_mut().zip(&self.residuals[b * QUANT_BLOCK..]) {
                *y = anchor + r as f64;
            }
        }
    }

    /// The stored representation, for bit-exact serialization:
    /// `(anchors, residuals)`.
    pub fn state(&self) -> (&[f64], &[f32]) {
        (&self.anchors, &self.residuals)
    }

    /// Rebuild from serialized state; validates the anchor/residual
    /// shape invariant.
    pub fn from_state(anchors: Vec<f64>, residuals: Vec<f32>) -> Result<Self, String> {
        let want = residuals.len().div_ceil(QUANT_BLOCK);
        if anchors.len() != want {
            return Err(format!(
                "{} anchors for {} residuals (expected {want})",
                anchors.len(),
                residuals.len()
            ));
        }
        Ok(Self { anchors, residuals })
    }

    /// Heap bytes resident in this arena.
    pub fn heap_bytes(&self) -> usize {
        self.anchors.capacity() * 8 + self.residuals.capacity() * 4
    }

    fn bitwise_eq(&self, other: &Self) -> bool {
        self.anchors.len() == other.anchors.len()
            && self.residuals.len() == other.residuals.len()
            && self.anchors.iter().zip(&other.anchors).all(|(a, b)| a.to_bits() == b.to_bits())
            && self.residuals.iter().zip(&other.residuals).all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

/// One committed message arena — exact or quantized.
#[derive(Debug, Clone)]
pub enum MessageArena {
    /// The engine's `f64` image, unmodified.
    Exact(Vec<f64>),
    /// Anchors + residuals (see [`QuantArena`]).
    Quantized(QuantArena),
}

impl MessageArena {
    /// Encode a flat engine arena under `store`.
    pub fn encode(xs: &[f64], store: MessageStore) -> Self {
        match store {
            MessageStore::Exact => MessageArena::Exact(xs.to_vec()),
            MessageStore::Quantized => MessageArena::Quantized(QuantArena::encode(xs)),
        }
    }

    /// Number of message slots.
    pub fn len(&self) -> usize {
        match self {
            MessageArena::Exact(v) => v.len(),
            MessageArena::Quantized(q) => q.len(),
        }
    }

    /// True for a zero-slot arena.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize into `out` (must have length [`MessageArena::len`]).
    /// Exact arenas copy bit-for-bit; quantized arenas dequantize.
    pub fn decode_into(&self, out: &mut [f64]) {
        match self {
            MessageArena::Exact(v) => out.copy_from_slice(v),
            MessageArena::Quantized(q) => q.decode_into(out),
        }
    }

    /// Materialize as an owned flat arena.
    pub fn to_vec(&self) -> Vec<f64> {
        match self {
            MessageArena::Exact(v) => v.clone(),
            MessageArena::Quantized(q) => {
                let mut out = vec![0.0; q.len()];
                q.decode_into(&mut out);
                out
            }
        }
    }

    /// Heap bytes resident in this arena.
    pub fn heap_bytes(&self) -> usize {
        match self {
            MessageArena::Exact(v) => v.capacity() * 8,
            MessageArena::Quantized(q) => q.heap_bytes(),
        }
    }

    /// Bitwise equality of the **stored representation** (restart
    /// parity is defined over the bits a snapshot persists, so two
    /// arenas of different kinds are never equal even if they decode
    /// identically).
    pub fn bitwise_eq(&self, other: &Self) -> bool {
        match (self, other) {
            (MessageArena::Exact(a), MessageArena::Exact(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (MessageArena::Quantized(a), MessageArena::Quantized(b)) => a.bitwise_eq(b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn messy_arena() -> Vec<f64> {
        let mut xs: Vec<f64> =
            (0..300).map(|i| -((i % 7) as f64) * 0.31 - 0.001 * i as f64).collect();
        xs[5] = -1.0e4; // LOG_ZERO-clamped slot
        xs[64] = f64::NEG_INFINITY;
        xs[65] = -0.0;
        xs[130] = f64::NAN;
        xs
    }

    #[test]
    fn quantized_decode_is_within_block_spread_tolerance() {
        let xs = messy_arena();
        let q = QuantArena::encode(&xs);
        let mut out = vec![0.0; xs.len()];
        q.decode_into(&mut out);
        for (i, (&x, &y)) in xs.iter().zip(&out).enumerate() {
            if x.is_nan() {
                assert!(y.is_nan(), "slot {i}");
            } else if x.is_infinite() {
                assert_eq!(x, y, "slot {i}");
            } else {
                // Worst-case spread in `messy_arena` is the LOG_ZERO slot.
                assert!((x - y).abs() <= 1.0e4 * f32::EPSILON as f64 * 4.0, "slot {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn quantize_is_idempotent_after_one_cycle() {
        let xs = messy_arena();
        let q1 = QuantArena::encode(&xs);
        let mut once = vec![0.0; xs.len()];
        q1.decode_into(&mut once);
        let q2 = QuantArena::encode(&once);
        assert!(q1.bitwise_eq(&q2), "re-encoding a decoded arena must be a fixed point");
        let mut twice = vec![0.0; xs.len()];
        q2.decode_into(&mut twice);
        assert!(once
            .iter()
            .zip(&twice)
            .all(|(a, b)| a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())));
    }

    #[test]
    fn all_infinite_block_anchors_at_zero() {
        let xs = vec![f64::NEG_INFINITY; 70];
        let q = QuantArena::encode(&xs);
        let mut out = vec![0.0; 70];
        q.decode_into(&mut out);
        assert!(out.iter().all(|&y| y == f64::NEG_INFINITY));
    }

    #[test]
    fn state_roundtrip_and_validation() {
        let q = QuantArena::encode(&messy_arena());
        let (a, r) = q.state();
        let back = QuantArena::from_state(a.to_vec(), r.to_vec()).unwrap();
        assert!(q.bitwise_eq(&back));
        assert!(QuantArena::from_state(vec![0.0; 9], vec![0.0f32; 70]).is_err());
    }

    #[test]
    fn arena_kinds_never_compare_equal() {
        let xs = vec![-0.5; 10];
        let e = MessageArena::encode(&xs, MessageStore::Exact);
        let q = MessageArena::encode(&xs, MessageStore::Quantized);
        assert!(!e.bitwise_eq(&q));
        assert!(e.bitwise_eq(&e.clone()));
        assert!(q.bitwise_eq(&q.clone()));
        assert_eq!(e.to_vec(), q.to_vec()); // constant block quantizes exactly
    }

    #[test]
    fn quantized_heap_bytes_are_roughly_half() {
        let xs = vec![-1.25; 4096];
        let e = MessageArena::encode(&xs, MessageStore::Exact);
        let q = MessageArena::encode(&xs, MessageStore::Quantized);
        // 4 bytes/slot of residuals + 1/8 byte/slot of anchors ≈ 52%.
        assert!(
            q.heap_bytes() * 100 <= e.heap_bytes() * 52,
            "{} vs {}",
            q.heap_bytes(),
            e.heap_bytes()
        );
    }

    #[test]
    fn empty_arena() {
        let q = QuantArena::encode(&[]);
        assert!(q.is_empty());
        q.decode_into(&mut []);
        let e = MessageArena::encode(&[], MessageStore::Exact);
        assert!(e.is_empty() && e.to_vec().is_empty());
    }
}
