//! Log-domain numerics for belief propagation.
//!
//! Messages and beliefs are kept as log-potentials so that products become
//! sums and long chains of small probabilities never underflow.

/// `log(Σ exp(x_i))` computed stably. An empty slice yields `-∞`.
pub fn logsumexp(xs: &[f64]) -> f64 {
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// Normalize a log-message in place so the entries represent a
/// distribution (`logsumexp == 0`). A message that is entirely `-∞`
/// (contradictory evidence) is reset to uniform, which is the standard
/// LBP recovery behaviour.
pub fn log_normalize(xs: &mut [f64]) {
    let z = logsumexp(xs);
    if z == f64::NEG_INFINITY {
        let uniform = -(xs.len() as f64).ln();
        xs.fill(uniform);
        return;
    }
    for x in xs.iter_mut() {
        *x -= z;
    }
}

/// Convert a normalized log-distribution to linear probabilities.
pub fn to_probs(xs: &[f64]) -> Vec<f64> {
    let z = logsumexp(xs);
    xs.iter().map(|&x| (x - z).exp()).collect()
}

/// Largest absolute difference between two equally-sized slices.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logsumexp_matches_naive_on_small_values() {
        let xs = [0.1, 0.5, -0.3];
        let naive: f64 = xs.iter().map(|x: &f64| x.exp()).sum::<f64>().ln();
        assert!((logsumexp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn logsumexp_is_stable_for_large_magnitudes() {
        let xs = [1000.0, 1000.0];
        assert!((logsumexp(&xs) - (1000.0 + 2f64.ln())).abs() < 1e-9);
        let xs = [-1000.0, -1000.0];
        assert!((logsumexp(&xs) - (-1000.0 + 2f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn logsumexp_empty_and_neg_inf() {
        assert_eq!(logsumexp(&[]), f64::NEG_INFINITY);
        assert_eq!(logsumexp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
        assert!((logsumexp(&[f64::NEG_INFINITY, 0.0]) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_produces_distribution() {
        let mut xs = [1.0, 2.0, 3.0];
        log_normalize(&mut xs);
        let p = to_probs(&xs);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((logsumexp(&xs)).abs() < 1e-12);
    }

    #[test]
    fn normalize_recovers_from_contradiction() {
        let mut xs = [f64::NEG_INFINITY, f64::NEG_INFINITY];
        log_normalize(&mut xs);
        let p = to_probs(&xs);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn to_probs_ordering_preserved() {
        let p = to_probs(&[0.0, 1.0, -1.0]);
        assert!(p[1] > p[0] && p[0] > p[2]);
    }

    #[test]
    fn max_abs_diff_basic() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 2.0]), 0.5);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }
}
