//! Maximum-likelihood weight learning (paper §3.4, Eq. 5–6).
//!
//! The objective is the log-likelihood of the labeled configuration
//! `O(ω) = log P(Y_L)` with gradient
//!
//! ```text
//! ∂O/∂ω = E_{p_ω(Y | Y_L)}[Q] − E_{p_ω(Y)}[Q]
//! ```
//!
//! where `Q = Σ_j h_j(C_j)` is the total feature vector. Both expectations
//! are intractable exactly, so — as in the paper — they are approximated
//! with LBP: the first from a run with the labeled variables **clamped**,
//! the second from a **free** run. Per factor, `E[h_j]` is computed from
//! the factor belief. Weights are updated by gradient ascent (the paper's
//! learning rate is 0.05); convergence is declared when the gradient norm
//! falls below `grad_tol`.

use crate::graph::{FactorGraph, FactorId, Potential, VarId};
use crate::lbp::{LbpEngine, LbpOptions};
use crate::params::Params;

/// Options for [`train`].
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Gradient-ascent learning rate (paper §4.1: 0.05).
    pub learning_rate: f64,
    /// Maximum epochs (each epoch = one clamped + one free LBP run).
    pub max_epochs: usize,
    /// Stop when the gradient L2 norm drops below this.
    pub grad_tol: f64,
    /// L2 regularization strength (subtracts `l2 · ω` from the gradient).
    pub l2: f64,
    /// LBP configuration used for both runs.
    pub lbp: LbpOptions,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            learning_rate: 0.05,
            max_epochs: 30,
            grad_tol: 1e-3,
            l2: 0.0,
            lbp: LbpOptions::default(),
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Epochs executed.
    pub epochs: usize,
    /// Final gradient norm.
    pub final_grad_norm: f64,
    /// Whether `grad_tol` was reached.
    pub converged: bool,
    /// Gradient norm per epoch (diagnostic / convergence figure).
    pub grad_norms: Vec<f64>,
}

/// Accumulate `Σ_c b(c) · h(c)` for one factor into `acc`.
fn accumulate_expectation(
    graph: &FactorGraph,
    engine: &LbpEngine,
    params: &Params,
    f: FactorId,
    acc: &mut Params,
) {
    let belief = engine.factor_belief(params, f);
    let potential = graph.factor_potential(f);
    match potential {
        Potential::Features { group, feats } => {
            let out = acc.group_mut(*group);
            for (flat, b) in belief.iter().enumerate() {
                for (o, x) in out.iter_mut().zip(&feats[flat]) {
                    *o += b * x;
                }
            }
        }
        Potential::Scores { group, .. } | Potential::TwoLevelScores { group, .. } => {
            let out = acc.group_mut(*group);
            let e: f64 = belief
                .iter()
                .enumerate()
                .map(|(flat, b)| b * potential.score(flat).expect("score potential"))
                .sum();
            out[0] += e;
        }
    }
}

/// Expected total feature vector under the current messages of `engine`.
fn expected_features(graph: &FactorGraph, engine: &LbpEngine, params: &Params) -> Params {
    let mut acc = params.zeros_like();
    for fi in 0..graph.num_factors() {
        accumulate_expectation(graph, engine, params, FactorId(fi as u32), &mut acc);
    }
    acc
}

/// Train `params` in place to maximize the likelihood of `labels`
/// (variable, observed state). Returns a [`TrainReport`].
pub fn train(
    graph: &FactorGraph,
    params: &mut Params,
    labels: &[(VarId, u32)],
    opts: &TrainOptions,
) -> TrainReport {
    let mut clamped = LbpEngine::new(graph);
    for &(v, s) in labels {
        clamped.set_clamp(v, Some(s));
    }
    let mut free = LbpEngine::new(graph);
    let mut report = TrainReport {
        epochs: 0,
        final_grad_norm: f64::INFINITY,
        converged: false,
        grad_norms: Vec::new(),
    };
    for epoch in 0..opts.max_epochs {
        clamped.run(params, &opts.lbp);
        let e_clamped = expected_features(graph, &clamped, params);
        free.run(params, &opts.lbp);
        let e_free = expected_features(graph, &free, params);

        // grad = E_clamped − E_free − l2·ω
        let mut grad = e_clamped;
        grad.step(&e_free, -1.0);
        if opts.l2 > 0.0 {
            grad.step(params, -opts.l2);
        }
        let norm = grad.l2_norm();
        report.epochs = epoch + 1;
        report.final_grad_norm = norm;
        report.grad_norms.push(norm);
        if norm < opts.grad_tol {
            report.converged = true;
            break;
        }
        params.step(&grad, opts.learning_rate);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Potential;
    use crate::lbp::run_lbp;

    /// A single binary variable with a unary feature factor. Clamping it to
    /// state 1 should push the weight of the state-1 feature up until the
    /// model predicts state 1.
    #[test]
    fn learns_unary_preference() {
        let mut g = FactorGraph::new();
        let v = g.add_var(2);
        let mut params = Params::new();
        let grp = params.add_group_with(vec![0.0]);
        g.add_factor(
            &[v],
            Potential::Features { group: grp, feats: vec![vec![0.0], vec![1.0]] },
            0,
        );
        let report = train(&g, &mut params, &[(v, 1)], &TrainOptions::default());
        assert!(params.group(grp)[0] > 0.3, "weight should grow: {:?}", params.group(grp));
        let (m, _) = run_lbp(&g, &params, &[], &LbpOptions::default());
        assert!(m.prob(v, 1) > 0.55);
        assert!(report.epochs > 0);
    }

    /// Pairwise agreement learning: labels put two chained variables in
    /// the same state; the agreement weight should become positive.
    #[test]
    fn learns_agreement_weight() {
        let mut g = FactorGraph::new();
        let a = g.add_var(2);
        let b = g.add_var(2);
        let mut params = Params::new();
        let grp = params.add_group_with(vec![0.0]);
        // scores = agreement indicator.
        g.add_factor(
            &[a, b],
            Potential::Scores { group: grp, scores: vec![1.0, 0.0, 0.0, 1.0] },
            0,
        );
        train(
            &g,
            &mut params,
            &[(a, 1), (b, 1)],
            &TrainOptions { max_epochs: 60, ..Default::default() },
        );
        assert!(
            params.group(grp)[0] > 0.1,
            "agreement weight should grow: {}",
            params.group(grp)[0]
        );
    }

    /// Gradient is ~zero when the labels already match the model's
    /// expectation (symmetric uninformative case).
    #[test]
    fn symmetric_labels_give_small_gradient() {
        let mut g = FactorGraph::new();
        let a = g.add_var(2);
        let b = g.add_var(2);
        let mut params = Params::new();
        let grp = params.add_group_with(vec![0.0]);
        g.add_factor(
            &[a, b],
            Potential::Scores { group: grp, scores: vec![1.0, 0.0, 0.0, 1.0] },
            0,
        );
        // One label only: clamping `a` alone does not change the expected
        // agreement statistic (0.5 either way), so training converges
        // immediately.
        let report = train(
            &g,
            &mut params,
            &[(a, 0)],
            &TrainOptions { max_epochs: 5, ..Default::default() },
        );
        assert!(report.converged, "grad norms: {:?}", report.grad_norms);
        assert!(params.group(grp)[0].abs() < 1e-6);
    }

    /// L2 regularization pulls weights back toward zero.
    #[test]
    fn l2_shrinks_weights() {
        let mut g = FactorGraph::new();
        let v = g.add_var(2);
        let mut params_plain = Params::new();
        let grp = params_plain.add_group_with(vec![0.0]);
        g.add_factor(
            &[v],
            Potential::Features { group: grp, feats: vec![vec![0.0], vec![1.0]] },
            0,
        );
        let mut params_l2 = params_plain.clone();
        let base = TrainOptions { max_epochs: 40, ..Default::default() };
        train(&g, &mut params_plain, &[(v, 1)], &base);
        train(&g, &mut params_l2, &[(v, 1)], &TrainOptions { l2: 0.5, ..base });
        assert!(params_l2.group(grp)[0] < params_plain.group(grp)[0]);
    }

    /// Multi-feature factor: only the discriminative feature should move
    /// appreciably; a constant feature has zero gradient.
    #[test]
    fn constant_feature_keeps_weight() {
        let mut g = FactorGraph::new();
        let v = g.add_var(2);
        let mut params = Params::new();
        let grp = params.add_group_with(vec![0.0, 0.0]);
        // Feature 0 is constant 1 for both states; feature 1 indicates
        // state 1.
        g.add_factor(
            &[v],
            Potential::Features { group: grp, feats: vec![vec![1.0, 0.0], vec![1.0, 1.0]] },
            0,
        );
        train(&g, &mut params, &[(v, 1)], &TrainOptions::default());
        let w = params.group(grp);
        assert!(w[0].abs() < 1e-9, "constant feature moved: {}", w[0]);
        assert!(w[1] > 0.2, "indicator feature should grow: {}", w[1]);
    }

    #[test]
    fn empty_labels_converge_instantly() {
        let mut g = FactorGraph::new();
        let v = g.add_var(2);
        let mut params = Params::new();
        let grp = params.add_group_with(vec![0.0]);
        g.add_factor(
            &[v],
            Potential::Features { group: grp, feats: vec![vec![0.0], vec![1.0]] },
            0,
        );
        // No labels: clamped run == free run, gradient is exactly 0.
        let report = train(&g, &mut params, &[], &TrainOptions::default());
        assert!(report.converged);
        assert_eq!(report.epochs, 1);
        assert!(params.group(grp)[0].abs() < 1e-12);
    }
}
