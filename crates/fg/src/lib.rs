//! # jocl-fg
//!
//! Discrete factor-graph substrate with loopy belief propagation (LBP) and
//! maximum-likelihood weight learning — the inference engine behind JOCL
//! (paper §3.4–§3.5).
//!
//! ## Model
//!
//! A factor graph is a bipartite graph of **variable nodes** (discrete,
//! arbitrary cardinality) and **factor nodes**. Every factor is an
//! exponential-linear function (paper Eq. 1):
//!
//! ```text
//! H_j(C_j) = (1/Z_j) · exp{ ω_g · h_j(C_j) }
//! ```
//!
//! Two concrete parameterizations cover everything in the paper:
//!
//! * [`Potential::Features`] — a feature *vector* per joint configuration,
//!   dotted with the weight vector of a parameter group (factors F1–F6,
//!   whose features are the similarity signals);
//! * [`Potential::Scores`] — a scalar score `u(config)` scaled by a single
//!   weight (factors U1–U7: transitivity, fact inclusion, consistency).
//!
//! ## Inference
//!
//! [`lbp`] implements sum-product LBP in the log domain with damping,
//! message normalization and two scheduling modes: synchronous flooding
//! and the paper's **phased schedule** (§3.4), in which factor classes
//! update in a fixed order within each iteration. [`exact`] provides
//! brute-force enumeration used to validate LBP in tests.
//!
//! ## Learning
//!
//! [`learn`] maximizes the log-likelihood of labeled variables (paper
//! Eq. 5) by gradient ascent with the gradient of Eq. 6:
//! `∂O/∂ω = E_{p(Y|Y_L)}[Q] − E_{p(Y)}[Q]`, computed from factor beliefs of
//! a clamped and a free LBP run.

pub mod exact;
pub mod graph;
pub mod lbp;
pub mod learn;
pub mod logspace;
pub mod params;
pub mod store;

pub use graph::{FactorGraph, FactorId, FactorSpec, Potential, VarId};
pub use lbp::{LbpMessages, LbpOptions, LbpResult, Marginals, Schedule, ScheduleMode};
pub use learn::{train, TrainOptions, TrainReport};
pub use params::Params;
pub use store::{MessageArena, MessageStore, QuantArena};
