//! Loopy belief propagation (sum-product) in the log domain.
//!
//! Implements the inference procedure of paper §3.4:
//!
//! * messages are passed between factor and variable nodes until
//!   convergence ("in practice we found that convergence was achieved
//!   within twenty iterations");
//! * a **phased schedule** reproduces the paper's working procedure —
//!   within an iteration, factor classes update in a fixed order
//!   (canonicalization factors → transitive factors → linking factors →
//!   fact-inclusion factors → consistency factors), then variable classes
//!   (canonicalization variables first, then linking variables);
//! * messages are damped and normalized for stability;
//! * evidence is injected by **clamping** variables, which is how learning
//!   conditions on the labeled configuration `Y|Y_L` (paper Eq. 5).
//!
//! The factor → variable sweep is the hot loop; it parallelizes over
//! contiguous chunks of the per-phase factor list on a persistent
//! [`jocl_exec`] worker pool. Workers are spawned once per [`LbpEngine::run`]
//! and reused across every iteration and phase (spawning per sweep made
//! 4 threads *slower* than serial — see `BENCH_NOTES.md`). Each factor
//! owns a disjoint region of the message arena and damping/normalization
//! commits per edge, so marginals are bit-identical for any thread count.
//!
//! Two **update-selection modes** ([`ScheduleMode`]) sit on top of the
//! schedule: `Synchronous` full sweeps, and `Residual` — a bucketed
//! max-residual priority queue over factor blocks with dirty propagation
//! through the CSR variable adjacency, which reaches the same fixed point
//! within `tol` while recomputing only the messages whose inputs still
//! change ([`LbpResult::message_updates`] counts both modes identically).

use crate::graph::{FactorGraph, FactorId, Potential, VarId};
use crate::logspace::{log_normalize, logsumexp, max_abs_diff, to_probs};
use crate::params::Params;
use crate::store::{MessageArena, MessageStore};
use jocl_obs::{Counter, Histogram, Stopwatch};
use std::sync::{Arc, OnceLock};

/// Log-potential treated as "probability zero" while keeping additions
/// well-conditioned (exp(-1e4) underflows to exactly 0.0).
pub const LOG_ZERO: f64 = -1.0e4;

/// Per-mode sweep metrics, registered once and cached so the LBP hot
/// path never touches the registry mutex. Metrics are observational
/// only — recording them cannot perturb message values, so marginals
/// are bitwise-identical with metrics on or off.
struct SweepMetrics {
    sweep_ns: Arc<Histogram>,
    message_updates: Arc<Counter>,
}

fn sweep_metrics(mode: &ScheduleMode) -> &'static SweepMetrics {
    static SYNC: OnceLock<SweepMetrics> = OnceLock::new();
    static RESIDUAL: OnceLock<SweepMetrics> = OnceLock::new();
    let (cell, label) = match mode {
        ScheduleMode::Synchronous => (&SYNC, "synchronous"),
        ScheduleMode::Residual => (&RESIDUAL, "residual"),
    };
    cell.get_or_init(|| {
        let labels = [("mode", label)];
        SweepMetrics {
            sweep_ns: jocl_obs::registry().histogram("jocl_lbp_sweep_ns", &labels),
            message_updates: jocl_obs::registry()
                .counter("jocl_lbp_message_updates_total", &labels),
        }
    })
}

/// Record one converged LBP run (cold or warm) into the per-mode
/// histogram/counter and fold the update count into the enclosing span.
fn record_sweep(
    mode: &ScheduleMode,
    sw: &Stopwatch,
    result: &LbpResult,
    span: &mut jocl_obs::SpanGuard,
) {
    span.add_count(result.message_updates);
    let m = sweep_metrics(mode);
    m.sweep_ns.record(sw.ns());
    m.message_updates.add(result.message_updates);
}

/// How message updates are *selected* within the [`Schedule`]'s class
/// structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleMode {
    /// Full sweeps: every scheduled factor updates each iteration, phase
    /// by phase, then every scheduled variable. The PR-2 behaviour.
    #[default]
    Synchronous,
    /// Residual-scheduled message passing (Elidan et al., UAI 2006
    /// style): after one priming sweep, factor blocks are re-updated in
    /// max-residual-first order from a bucketed O(1)-pop priority queue.
    /// A factor's priority is the accumulated change of its incoming
    /// variable→factor messages since its last update — a sound upper
    /// bound on the residual of recomputing it, so an empty queue
    /// certifies that no message can move by `tol` or more. Converges to
    /// the same fixed point within `tol` as [`ScheduleMode::Synchronous`]
    /// while recomputing only the messages whose inputs still change;
    /// [`LbpResult::message_updates`] counts the savings.
    Residual,
}

/// Message-passing schedule.
#[derive(Debug, Clone)]
pub enum Schedule {
    /// All factors update together, then all variables. The textbook
    /// flooding schedule.
    Synchronous,
    /// The paper's §3.4 procedure: factor classes update phase by phase,
    /// then variable classes phase by phase. Classes absent from any phase
    /// never update.
    Phased {
        /// Ordered factor-class phases, e.g. `[[F_CANON], [U_TRANS], ...]`.
        factor_phases: Vec<Vec<u8>>,
        /// Ordered variable-class phases.
        var_phases: Vec<Vec<u8>>,
    },
}

/// Options for [`LbpEngine::run`].
#[derive(Debug, Clone)]
pub struct LbpOptions {
    /// Maximum full iterations (paper: ~20 suffices).
    pub max_iters: usize,
    /// Convergence threshold on the max message change.
    pub tol: f64,
    /// Damping λ applied to factor→variable messages:
    /// `m ← λ·m_old + (1−λ)·m_new`.
    pub damping: f64,
    /// Schedule (see [`Schedule`]).
    pub schedule: Schedule,
    /// Update-selection mode (see [`ScheduleMode`]).
    pub mode: ScheduleMode,
    /// Factor blocks drained from the priority queue per round in
    /// [`ScheduleMode::Residual`]. Deliberately independent of `threads`
    /// so the schedule (and therefore every message) is identical for any
    /// worker count; larger batches amortize the pool handshake, smaller
    /// ones follow priorities more faithfully.
    pub residual_batch: usize,
    /// Worker threads for the factor sweep (1 = serial). The result is
    /// identical for any thread count.
    pub threads: usize,
    /// Use exactly `threads` workers even when that oversubscribes the
    /// hardware. Defaults to `false` (the count is capped at the machine's
    /// parallelism, so `threads: 4` on a 1-core box runs serially instead
    /// of paying context-switch overhead); tests set it to force the
    /// pooled code path regardless of the host.
    pub exact_threads: bool,
}

impl Default for LbpOptions {
    fn default() -> Self {
        Self {
            max_iters: 50,
            tol: 1e-4,
            damping: 0.1,
            schedule: Schedule::Synchronous,
            mode: ScheduleMode::Synchronous,
            residual_batch: 32,
            threads: 1,
            exact_threads: false,
        }
    }
}

/// Statistics of an LBP run.
#[derive(Debug, Clone, Copy)]
pub struct LbpResult {
    /// Iterations executed. In residual mode this is the number of
    /// *sweep-equivalents*: `message_updates` divided by the messages one
    /// full sweep would recompute, rounded up — directly comparable to
    /// the synchronous iteration count.
    pub iterations: usize,
    /// Whether the residual dropped below `tol`.
    pub converged: bool,
    /// Final max message residual (in residual mode after convergence:
    /// the largest remaining priority, an upper bound on any message's
    /// pending change).
    pub residual: f64,
    /// Factor→variable messages recomputed — one per factor edge per
    /// factor-block update, with identical accounting in both schedule
    /// modes, so synchronous vs residual counts are directly comparable.
    pub message_updates: u64,
}

/// Per-variable marginal distributions.
#[derive(Debug, Clone)]
pub struct Marginals {
    probs: Vec<Vec<f64>>,
}

impl Marginals {
    /// Internal constructor shared with the exact-inference module.
    pub(crate) fn new_internal(probs: Vec<Vec<f64>>) -> Self {
        Self { probs }
    }

    /// Probability vector of variable `v`.
    pub fn of(&self, v: VarId) -> &[f64] {
        &self.probs[v.idx()]
    }

    /// MAP state of variable `v` (ties broken toward the lower state).
    pub fn map_state(&self, v: VarId) -> u32 {
        let p = &self.probs[v.idx()];
        let mut best = 0usize;
        for (i, &x) in p.iter().enumerate() {
            if x > p[best] {
                best = i;
            }
        }
        best as u32
    }

    /// `P(v = state)`.
    pub fn prob(&self, v: VarId, state: u32) -> f64 {
        self.probs[v.idx()][state as usize]
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True when no variables are covered.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }
}

/// Reusable LBP state over one graph.
pub struct LbpEngine<'g> {
    graph: &'g FactorGraph,
    /// Per-edge offset into the message arenas.
    edge_offset: Vec<usize>,
    /// Per-edge variable id (edges are enumerated factor-major by slot).
    edge_var: Vec<u32>,
    /// First edge id of each factor (length `num_factors + 1`).
    factor_edge_start: Vec<u32>,
    /// factor→variable messages (log domain, normalized).
    fv: Vec<f64>,
    /// variable→factor messages (log domain, normalized).
    vf: Vec<f64>,
    /// Scratch buffer for new factor→variable messages.
    new_fv: Vec<f64>,
    /// CSR adjacency: edge ids of variable `v` are
    /// `var_edges[var_edge_start[v]..var_edge_start[v+1]]`.
    var_edge_start: Vec<u32>,
    var_edges: Vec<u32>,
    clamps: Vec<Option<u32>>,
}

impl<'g> LbpEngine<'g> {
    /// Allocate message storage for `graph`.
    pub fn new(graph: &'g FactorGraph) -> Self {
        let mut edge_offset = Vec::new();
        let mut edge_var = Vec::new();
        let mut factor_edge_start = Vec::with_capacity(graph.num_factors() + 1);
        let mut offset = 0usize;
        for fi in 0..graph.num_factors() {
            factor_edge_start.push(edge_offset.len() as u32);
            for &v in graph.factor_vars(FactorId(fi as u32)) {
                edge_offset.push(offset);
                edge_var.push(v.0);
                offset += graph.cardinality(v) as usize;
            }
        }
        factor_edge_start.push(edge_offset.len() as u32);
        // CSR of the inverse mapping: variable → incident edge ids.
        let mut var_edge_start = vec![0u32; graph.num_vars() + 1];
        for &v in &edge_var {
            var_edge_start[v as usize + 1] += 1;
        }
        for i in 1..var_edge_start.len() {
            var_edge_start[i] += var_edge_start[i - 1];
        }
        let mut cursor = var_edge_start.clone();
        let mut var_edges = vec![0u32; edge_var.len()];
        for (e, &v) in edge_var.iter().enumerate() {
            var_edges[cursor[v as usize] as usize] = e as u32;
            cursor[v as usize] += 1;
        }
        let mut eng = Self {
            graph,
            edge_offset,
            edge_var,
            factor_edge_start,
            fv: vec![0.0; offset],
            vf: vec![0.0; offset],
            new_fv: vec![0.0; offset],
            var_edge_start,
            var_edges,
            clamps: vec![None; graph.num_vars()],
        };
        eng.reset_messages();
        eng
    }

    /// Snapshot the current messages for a later [`LbpEngine::resume`] on
    /// a graph that *extends* this one (same variables and factors as a
    /// prefix, new ones appended). Commits under the exact `f64` store;
    /// see [`LbpEngine::export_messages_with`] for the quantized form.
    pub fn export_messages(&self) -> LbpMessages {
        self.export_messages_with(MessageStore::Exact)
    }

    /// Snapshot the current messages under the given committed-arena
    /// representation (the [`MessageStore`] seam — see [`crate::store`]).
    pub fn export_messages_with(&self, store: MessageStore) -> LbpMessages {
        LbpMessages {
            fv: MessageArena::encode(&self.fv, store),
            vf: MessageArena::encode(&self.vf, store),
            edges: self.num_edges(),
        }
    }

    /// Install a prior snapshot into this engine. The prior's edges must
    /// be a prefix of this engine's edge enumeration — which is exactly
    /// what appending variables and factors to the graph guarantees
    /// (edges are enumerated factor-major, and existing variables keep
    /// their cardinalities). Messages of edges beyond the prefix keep
    /// their uniform initialization.
    ///
    /// # Panics
    /// Panics if the snapshot does not describe a prefix of this graph
    /// (e.g. the graph was rebuilt rather than appended to).
    pub fn import_messages(&mut self, prior: &LbpMessages) {
        assert!(
            prior.edges <= self.num_edges(),
            "prior snapshot has more edges ({}) than the graph ({})",
            prior.edges,
            self.num_edges()
        );
        let arena = if prior.edges == self.num_edges() {
            self.fv.len()
        } else {
            self.edge_offset[prior.edges]
        };
        assert_eq!(
            arena,
            prior.fv.len(),
            "resumed graph must extend the prior graph by appending vars/factors"
        );
        prior.fv.decode_into(&mut self.fv[..arena]);
        prior.vf.decode_into(&mut self.vf[..arena]);
    }

    /// Warm-started run: seed from `prior`, then converge with only
    /// `dirty` factor blocks scheduled up front. `dirty` is typically the
    /// factors appended since the snapshot; everything else re-enters the
    /// computation only if dirty propagation actually reaches it.
    ///
    /// In [`ScheduleMode::Residual`] the priming sweep is restricted to
    /// the dirty set and the drain starts from there, so an untouched
    /// connected component performs **zero** message updates and its
    /// messages (and therefore marginals) are preserved bit-for-bit. In
    /// [`ScheduleMode::Synchronous`] full sweeps run, but from the warm
    /// start they converge in few iterations.
    pub fn resume(
        &mut self,
        prior: &LbpMessages,
        params: &Params,
        opts: &LbpOptions,
        dirty: &[u32],
    ) -> LbpResult {
        self.import_messages(prior);
        self.resume_imported(params, opts, dirty)
    }

    /// The post-import half of [`LbpEngine::resume`], for callers that
    /// need to adjust the imported messages before converging — the
    /// serving retraction path imports, resets the tombstoned factors'
    /// messages to uniform ([`LbpEngine::reset_factor_messages`]), and
    /// only then warm-starts with the tombstones *and their live
    /// neighbors* in `dirty`.
    pub fn resume_imported(
        &mut self,
        params: &Params,
        opts: &LbpOptions,
        dirty: &[u32],
    ) -> LbpResult {
        // Re-derive the variable→factor messages of every *scheduled*
        // variable a dirty factor touches: the snapshot's vf on new
        // edges is uniform, and priming quality (not correctness)
        // depends on the first factor update seeing consistent inputs.
        // Unscheduled variable classes stay frozen, exactly as both cold
        // paths keep them.
        let (_, var_sel) = self.phase_selections(&opts.schedule);
        let mut var_active = vec![false; self.graph.num_vars()];
        for sel in &var_sel {
            for &v in sel {
                var_active[v as usize] = true;
            }
        }
        let mut vars: Vec<u32> = dirty
            .iter()
            .flat_map(|&f| self.factor_edges(f as usize))
            .map(|e| self.edge_var[e])
            .filter(|&v| var_active[v as usize])
            .collect();
        vars.sort_unstable();
        vars.dedup();
        let sw = Stopwatch::start();
        let mut span = jocl_obs::span!("lbp_sweep");
        self.update_var_messages(&vars);
        let result = match opts.mode {
            ScheduleMode::Synchronous => self.run_synchronous_from(params, opts, false),
            ScheduleMode::Residual => self.run_residual_from(params, opts, Some(dirty)),
        };
        record_sweep(&opts.mode, &sw, &result, &mut span);
        result
    }

    /// Reset the factor→variable messages of the given factors to
    /// uniform, exactly as [`LbpEngine::reset_messages`] initializes
    /// them. Used when a factor is neutralized
    /// (`FactorGraph::neutralize_factor`) after a warm import: its
    /// committed messages still carry the retracted evidence, and while
    /// damping would anneal them toward uniform within `tol`, the
    /// explicit reset lands them *exactly* on the neutral factor's fixed
    /// point in one step. Variable→factor messages are left alone — the
    /// resume path re-derives them for every variable a dirty factor
    /// touches.
    pub fn reset_factor_messages(&mut self, factors: &[u32]) {
        for &f in factors {
            for e in self.factor_edges(f as usize) {
                let card = self.edge_len(e);
                let uniform = -(card as f64).ln();
                let off = self.edge_offset[e];
                self.fv[off..off + card].fill(uniform);
            }
        }
    }

    /// Reset all messages to uniform (keeps clamps).
    pub fn reset_messages(&mut self) {
        for e in 0..self.num_edges() {
            let card = self.edge_len(e);
            let uniform = -(card as f64).ln();
            let off = self.edge_offset[e];
            self.fv[off..off + card].fill(uniform);
            self.vf[off..off + card].fill(uniform);
        }
        // Re-apply clamp evidence to vf messages.
        let clamped: Vec<(usize, u32)> =
            self.clamps.iter().enumerate().filter_map(|(v, c)| c.map(|s| (v, s))).collect();
        for (v, s) in clamped {
            self.write_clamped_var_messages(VarId(v as u32), s);
        }
    }

    /// Clamp variable `v` to `state` (or release with `None`).
    ///
    /// # Panics
    /// Panics if `state` is out of range.
    pub fn set_clamp(&mut self, v: VarId, state: Option<u32>) {
        if let Some(s) = state {
            assert!(s < self.graph.cardinality(v), "clamp state out of range");
        }
        self.clamps[v.idx()] = state;
    }

    /// Remove all clamps.
    pub fn clear_clamps(&mut self) {
        self.clamps.fill(None);
    }

    /// Number of edges (factor-slot pairs).
    pub fn num_edges(&self) -> usize {
        self.edge_offset.len()
    }

    #[inline]
    fn edge_len(&self, e: usize) -> usize {
        self.graph.cardinality(VarId(self.edge_var[e])) as usize
    }

    #[inline]
    fn edge_range(&self, e: usize) -> std::ops::Range<usize> {
        let off = self.edge_offset[e];
        off..off + self.edge_len(e)
    }

    /// Edge ids of factor `f` in slot order.
    #[inline]
    fn factor_edges(&self, f: usize) -> std::ops::Range<usize> {
        self.factor_edge_start[f] as usize..self.factor_edge_start[f + 1] as usize
    }

    /// Materialize the per-phase factor/variable id lists of a schedule
    /// once per run instead of re-filtering every iteration.
    fn phase_selections(&self, schedule: &Schedule) -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
        let (factor_phases, var_phases): (Vec<Vec<u8>>, Vec<Vec<u8>>) = match schedule {
            Schedule::Synchronous => {
                let mut all_f: Vec<u8> = (0..self.graph.num_factors())
                    .map(|f| self.graph.factor_class(FactorId(f as u32)))
                    .collect();
                all_f.sort_unstable();
                all_f.dedup();
                let mut all_v: Vec<u8> = (0..self.graph.num_vars())
                    .map(|v| self.graph.var_class(VarId(v as u32)))
                    .collect();
                all_v.sort_unstable();
                all_v.dedup();
                (vec![all_f], vec![all_v])
            }
            Schedule::Phased { factor_phases, var_phases } => {
                (factor_phases.clone(), var_phases.clone())
            }
        };
        let factor_sel: Vec<Vec<u32>> = factor_phases
            .iter()
            .map(|classes| {
                (0..self.graph.num_factors() as u32)
                    .filter(|&f| classes.contains(&self.graph.factor_class(FactorId(f))))
                    .collect()
            })
            .collect();
        let var_sel: Vec<Vec<u32>> = var_phases
            .iter()
            .map(|classes| {
                (0..self.graph.num_vars() as u32)
                    .filter(|&v| classes.contains(&self.graph.var_class(VarId(v))))
                    .collect()
            })
            .collect();
        (factor_sel, var_sel)
    }

    /// Worker count for a run, honoring `exact_threads`.
    fn run_threads(opts: &LbpOptions) -> usize {
        if opts.exact_threads {
            opts.threads.max(1)
        } else {
            jocl_exec::effective_threads(opts.threads.max(1))
        }
    }

    /// Factor→variable messages recomputed by one update of factor `f`.
    #[inline]
    fn factor_message_count(&self, f: usize) -> u64 {
        self.factor_edges(f).len() as u64
    }

    /// Run LBP to convergence (or `max_iters`). Messages persist, so
    /// marginals and factor beliefs can be queried afterwards.
    ///
    /// Dispatches on [`LbpOptions::mode`]: synchronous sweeps or the
    /// residual-scheduled drain. Either way the pool is created once and
    /// reused for every sweep/batch, and marginals are bit-identical for
    /// any `opts.threads`.
    pub fn run(&mut self, params: &Params, opts: &LbpOptions) -> LbpResult {
        let sw = Stopwatch::start();
        let mut span = jocl_obs::span!("lbp_sweep");
        let result = match opts.mode {
            ScheduleMode::Synchronous => self.run_synchronous_from(params, opts, true),
            ScheduleMode::Residual => self.run_residual_from(params, opts, None),
        };
        record_sweep(&opts.mode, &sw, &result, &mut span);
        result
    }

    /// Synchronous mode: full factor + variable sweeps per iteration.
    /// With `reset` false the current messages are the starting point
    /// (the warm path of [`LbpEngine::resume`]).
    fn run_synchronous_from(
        &mut self,
        params: &Params,
        opts: &LbpOptions,
        reset: bool,
    ) -> LbpResult {
        if reset {
            self.reset_messages();
        }
        let (factor_sel, var_sel) = self.phase_selections(&opts.schedule);
        let phase_messages: Vec<u64> = factor_sel
            .iter()
            .map(|sel| sel.iter().map(|&f| self.factor_message_count(f as usize)).sum())
            .collect();
        let threads = Self::run_threads(opts);
        let mut result = LbpResult {
            iterations: 0,
            converged: false,
            residual: f64::INFINITY,
            message_updates: 0,
        };
        jocl_exec::with_pool(threads, |pool| {
            for iter in 0..opts.max_iters {
                let mut residual = 0.0f64;
                for (selected, messages) in factor_sel.iter().zip(&phase_messages) {
                    residual =
                        residual.max(self.update_factor_messages(params, selected, opts, pool));
                    result.message_updates += messages;
                }
                for selected in &var_sel {
                    self.update_var_messages(selected);
                }
                result.iterations = iter + 1;
                result.residual = residual;
                if residual < opts.tol {
                    result.converged = true;
                    break;
                }
            }
        });
        result
    }

    /// Residual mode: one priming sweep in schedule order, then a
    /// max-residual drain of factor blocks from a bucketed priority queue
    /// (see [`ScheduleMode::Residual`]).
    ///
    /// Every structural decision (batch contents, variable update order)
    /// is made serially from deterministic state, and the pooled batch
    /// update writes disjoint per-factor regions, so the trajectory — and
    /// therefore every message and counter — is bit-identical for any
    /// thread count.
    /// With `prime: None`, the cold path: reset, one full priming sweep
    /// in schedule order, then the drain. With `prime: Some(dirty)`, the
    /// warm path of [`LbpEngine::resume`]: no reset, priming restricted
    /// to the (scheduled) dirty factors, and the drain starts from the
    /// priorities that priming produced — factors outside the dirty
    /// set's reach are never recomputed.
    fn run_residual_from(
        &mut self,
        params: &Params,
        opts: &LbpOptions,
        prime: Option<&[u32]>,
    ) -> LbpResult {
        if prime.is_none() {
            self.reset_messages();
        }
        let (factor_sel, var_sel) = self.phase_selections(&opts.schedule);
        let nf = self.graph.num_factors();
        let ne = self.num_edges();
        // Classes absent from the schedule never update, in either mode —
        // factors *and* variables: dirty propagation must keep an
        // unscheduled variable's messages frozen exactly as the
        // synchronous sweeps do, or the two modes converge to different
        // fixed points.
        let mut factor_active = vec![false; nf];
        for sel in &factor_sel {
            for &f in sel {
                factor_active[f as usize] = true;
            }
        }
        let mut var_active = vec![false; self.graph.num_vars()];
        for sel in &var_sel {
            for &v in sel {
                var_active[v as usize] = true;
            }
        }
        // Inverse of the factor-major edge enumeration: edge → factor.
        let mut edge_factor = vec![0u32; ne];
        for f in 0..nf {
            for e in self.factor_edges(f) {
                edge_factor[e] = f as u32;
            }
        }
        // The messages one full sweep over the scheduled factors costs;
        // budget the drain to `max_iters` sweep-equivalents so both modes
        // get the same worst-case work bound.
        let sweep_messages: u64 = factor_active
            .iter()
            .enumerate()
            .filter(|&(_, active)| *active)
            .map(|(f, _)| self.factor_message_count(f))
            .sum();
        let budget = (opts.max_iters as u64).saturating_mul(sweep_messages);
        let threads = Self::run_threads(opts);
        let batch_cap = opts.residual_batch.max(1);
        let mut prio = vec![0.0f64; nf];
        let mut queue = BucketQueue::new(opts.tol, nf);
        let mut batch: Vec<u32> = Vec::with_capacity(batch_cap);
        let mut dirty_vars: Vec<u32> = Vec::new();
        let mut var_scratch = VarScratch::default();
        let mut result = LbpResult {
            iterations: 0,
            converged: false,
            residual: f64::INFINITY,
            message_updates: 0,
        };
        // Damping makes a committed message keep moving toward its
        // input-stationary target even when the inputs are frozen: the
        // next update shifts it by ~λ× this update's shift. Re-enqueueing
        // each updated factor with that geometric tail keeps the drain
        // running until the *committed* messages are stationary within
        // `tol` — the same criterion the synchronous sweeps use.
        let damping_tail = opts.damping.clamp(0.0, 1.0);
        let bump_after_update = |f: u32, r_f: f64, prio: &mut Vec<f64>, queue: &mut BucketQueue| {
            let tail = damping_tail * r_f;
            if tail > 0.0 {
                let old_p = prio[f as usize];
                prio[f as usize] = old_p + tail;
                queue.update(f, old_p, old_p + tail);
            }
        };
        // Warm priming restricts both the factor sweep and the variable
        // refresh to the dirty set (filtered to scheduled classes, in
        // schedule phase order).
        let dirty_only: Option<Vec<bool>> = prime.map(|dirty| {
            let mut mask = vec![false; nf];
            for &f in dirty {
                if factor_active[f as usize] {
                    mask[f as usize] = true;
                }
            }
            mask
        });
        jocl_exec::with_pool(threads, |pool| {
            // Priming sweep: exactly the synchronous engine's first
            // iteration (restricted to the dirty set on the warm path),
            // so every scheduled-and-dirty message is computed at least
            // once and the paper's phase order shapes the starting point.
            for selected in &factor_sel {
                let selected: Vec<u32> = match &dirty_only {
                    None => selected.clone(),
                    Some(mask) => selected.iter().copied().filter(|&f| mask[f as usize]).collect(),
                };
                let residuals = self.residual_factor_batch(params, &selected, opts, pool);
                for (&f, &r_f) in selected.iter().zip(&residuals) {
                    bump_after_update(f, r_f, &mut prio, &mut queue);
                }
                result.message_updates +=
                    selected.iter().map(|&f| self.factor_message_count(f as usize)).sum::<u64>();
            }
            let primed_vars: Option<Vec<bool>> = dirty_only.as_ref().map(|mask| {
                let mut vm = vec![false; self.graph.num_vars()];
                for (f, &is_dirty) in mask.iter().enumerate() {
                    if is_dirty {
                        for e in self.factor_edges(f) {
                            vm[self.edge_var[e] as usize] = true;
                        }
                    }
                }
                vm
            });
            for selected in &var_sel {
                for &v in selected {
                    if let Some(vm) = &primed_vars {
                        if !vm[v as usize] {
                            continue;
                        }
                    }
                    self.residual_var_update(
                        v,
                        &factor_active,
                        &edge_factor,
                        &mut prio,
                        &mut queue,
                        &mut var_scratch,
                    );
                }
            }
            // Drain: pop the highest-priority factor blocks, recompute
            // them in parallel, propagate the resulting variable-message
            // changes back into the queue.
            loop {
                batch.clear();
                queue.pop_batch(batch_cap, &mut prio, &mut batch);
                if batch.is_empty() {
                    result.converged = true;
                    break;
                }
                if result.message_updates >= budget {
                    break;
                }
                let residuals = self.residual_factor_batch(params, &batch, opts, pool);
                result.residual = residuals.iter().copied().fold(0.0, f64::max);
                for (&f, &r_f) in batch.iter().zip(&residuals) {
                    bump_after_update(f, r_f, &mut prio, &mut queue);
                }
                result.message_updates +=
                    batch.iter().map(|&f| self.factor_message_count(f as usize)).sum::<u64>();
                // Dirty propagation through the CSR variable adjacency:
                // only *scheduled* variables incident to the updated
                // blocks can move (unscheduled classes stay frozen, as in
                // synchronous mode).
                dirty_vars.clear();
                for &f in &batch {
                    for e in self.factor_edges(f as usize) {
                        let v = self.edge_var[e];
                        if var_active[v as usize] {
                            dirty_vars.push(v);
                        }
                    }
                }
                dirty_vars.sort_unstable();
                dirty_vars.dedup();
                for &v in &dirty_vars {
                    self.residual_var_update(
                        v,
                        &factor_active,
                        &edge_factor,
                        &mut prio,
                        &mut queue,
                        &mut var_scratch,
                    );
                }
            }
        });
        result.iterations = result.message_updates.div_ceil(sweep_messages.max(1)) as usize;
        if result.converged {
            // Largest remaining priority: a bound on any pending change.
            result.residual = prio.iter().copied().fold(0.0, f64::max);
        }
        result
    }

    /// Recompute the outgoing messages of variable `v` (residual mode),
    /// accumulate each edge's change into the receiving factor's priority,
    /// and (re-)enqueue factors whose priority reaches `tol`. Clamped
    /// variables are skipped: their evidence messages never change.
    ///
    /// Only variables selected by the schedule are ever passed in, and
    /// only active factors are bumped, so unscheduled classes stay frozen
    /// exactly as in synchronous mode.
    fn residual_var_update(
        &mut self,
        v: u32,
        factor_active: &[bool],
        edge_factor: &[u32],
        prio: &mut [f64],
        queue: &mut BucketQueue,
        scratch: &mut VarScratch,
    ) {
        if self.clamps[v as usize].is_some() {
            return;
        }
        let vid = VarId(v);
        let card = self.graph.cardinality(vid) as usize;
        scratch.total.clear();
        scratch.total.resize(card, 0.0);
        let adj =
            self.var_edge_start[v as usize] as usize..self.var_edge_start[v as usize + 1] as usize;
        for ei in adj.clone() {
            let r = self.edge_range(self.var_edges[ei] as usize);
            for (t, x) in scratch.total.iter_mut().zip(&self.fv[r]) {
                *t += *x;
            }
        }
        for ei in adj {
            let e = self.var_edges[ei] as usize;
            let r = self.edge_range(e);
            let off = r.start;
            scratch.old.clear();
            scratch.old.extend_from_slice(&self.vf[r.clone()]);
            for (i, &t) in scratch.total.iter().enumerate().take(card) {
                self.vf[off + i] = t - self.fv[off + i];
            }
            log_normalize(&mut self.vf[r.clone()]);
            let delta = max_abs_diff(&self.vf[r], &scratch.old);
            if delta <= 0.0 {
                continue;
            }
            let g = edge_factor[e] as usize;
            if !factor_active[g] {
                continue;
            }
            let old_p = prio[g];
            let new_p = old_p + delta;
            prio[g] = new_p;
            queue.update(g as u32, old_p, new_p);
        }
    }

    /// Fused compute + commit of one drained batch of factor blocks on the
    /// pool; returns the committed message residual of each factor, in
    /// batch order. Factors own disjoint edge regions of `fv`/`new_fv` and
    /// each appears in exactly one chunk, so chunks write through shared
    /// pointers; [`jocl_exec::Pool::map_chunks`] returns the per-chunk
    /// residual lists in chunk order, which concatenate back to batch
    /// order.
    fn residual_factor_batch(
        &mut self,
        params: &Params,
        batch: &[u32],
        opts: &LbpOptions,
        pool: &jocl_exec::Pool<'_>,
    ) -> Vec<f64> {
        if batch.is_empty() {
            return Vec::new();
        }
        let chunk = Self::sweep_chunk_size(batch.len(), pool);
        let lambda = opts.damping;
        let mut fv = std::mem::take(&mut self.fv);
        let mut new_fv = std::mem::take(&mut self.new_fv);
        let residuals = {
            let fv_ptr = SendPtr(fv.as_mut_ptr());
            let new_ptr = SendPtr(new_fv.as_mut_ptr());
            let len = fv.len();
            pool.map_chunks(batch.len(), chunk, |_, range| {
                let (fv_ptr, new_ptr) = (&fv_ptr, &new_ptr);
                // SAFETY: as in the sweep paths — disjoint per-factor edge
                // regions, each factor in exactly one chunk.
                let fv = unsafe { std::slice::from_raw_parts_mut(fv_ptr.0, len) };
                let new_fv = unsafe { std::slice::from_raw_parts_mut(new_ptr.0, len) };
                let mut scratch = Scratch::default();
                let mut residuals = Vec::with_capacity(range.len());
                for &f in &batch[range] {
                    self.factor_messages_kernel(params, f as usize, new_fv, &mut scratch);
                    let mut residual = 0.0f64;
                    for e in self.factor_edges(f as usize) {
                        let r = self.edge_range(e);
                        for i in r.clone() {
                            new_fv[i] = lambda * fv[i] + (1.0 - lambda) * new_fv[i];
                        }
                        log_normalize(&mut new_fv[r.clone()]);
                        residual = residual.max(max_abs_diff(&new_fv[r.clone()], &fv[r.clone()]));
                        fv[r.clone()].copy_from_slice(&new_fv[r]);
                    }
                    residuals.push(residual);
                }
                residuals
            })
            .into_iter()
            .flatten()
            .collect()
        };
        self.fv = fv;
        self.new_fv = new_fv;
        residuals
    }

    /// Chunk size for a pooled sweep over `n` factors: roughly 4 chunks
    /// per worker for load balance, but never chunks so small that the
    /// job handshake dominates the kernel work.
    fn sweep_chunk_size(n: usize, pool: &jocl_exec::Pool<'_>) -> usize {
        n.div_ceil(pool.threads() * 4).max(16)
    }

    /// Update factor→variable messages for the factors in `selected`.
    /// Returns the max residual.
    fn update_factor_messages(
        &mut self,
        params: &Params,
        selected: &[u32],
        opts: &LbpOptions,
        pool: &jocl_exec::Pool<'_>,
    ) -> f64 {
        if selected.is_empty() {
            return 0.0;
        }
        let chunk = Self::sweep_chunk_size(selected.len(), pool);
        // Phase 1: raw messages. Every factor owns a disjoint region of
        // `new_fv`, so chunks write through a shared pointer; the buffer
        // is moved out of `self` so workers can borrow `self` read-only.
        let mut new_fv = std::mem::take(&mut self.new_fv);
        {
            let ptr = SendPtr(new_fv.as_mut_ptr());
            let len = new_fv.len();
            pool.chunked_for_each(selected.len(), chunk, |_, range| {
                let ptr = &ptr;
                // SAFETY: factors write disjoint edge regions of `new_fv`
                // and each factor appears in exactly one chunk.
                let buf = unsafe { std::slice::from_raw_parts_mut(ptr.0, len) };
                let mut scratch = Scratch::default();
                for &f in &selected[range] {
                    self.factor_messages_kernel(params, f as usize, buf, &mut scratch);
                }
            });
        }
        self.new_fv = new_fv;
        // Phase 2: commit with damping + normalization; measure residual.
        // Also per-edge disjoint, so it runs on the same pool; max() is
        // associative and reduced in chunk order, so the residual is
        // bit-identical to the serial sweep.
        let lambda = opts.damping;
        let mut fv = std::mem::take(&mut self.fv);
        let mut new_fv = std::mem::take(&mut self.new_fv);
        let residual = {
            let fv_ptr = SendPtr(fv.as_mut_ptr());
            let new_ptr = SendPtr(new_fv.as_mut_ptr());
            let len = fv.len();
            pool.map_reduce(
                selected.len(),
                chunk,
                |_, range| {
                    let (fv_ptr, new_ptr) = (&fv_ptr, &new_ptr);
                    // SAFETY: as above — disjoint per-factor edge regions.
                    let fv = unsafe { std::slice::from_raw_parts_mut(fv_ptr.0, len) };
                    let new_fv = unsafe { std::slice::from_raw_parts_mut(new_ptr.0, len) };
                    let mut residual = 0.0f64;
                    for &f in &selected[range] {
                        for e in self.factor_edges(f as usize) {
                            let range = self.edge_range(e);
                            for i in range.clone() {
                                new_fv[i] = lambda * fv[i] + (1.0 - lambda) * new_fv[i];
                            }
                            log_normalize(&mut new_fv[range.clone()]);
                            residual = residual
                                .max(max_abs_diff(&new_fv[range.clone()], &fv[range.clone()]));
                            fv[range.clone()].copy_from_slice(&new_fv[range]);
                        }
                    }
                    residual
                },
                0.0f64,
                f64::max,
            )
        };
        self.fv = fv;
        self.new_fv = new_fv;
        residual
    }

    /// Compute raw (undamped, unnormalized) new messages of one factor
    /// into `new_fv` (the whole arena; only this factor's edge regions are
    /// written). Dispatches on the potential: two-level tables use the
    /// sparse kernel, everything else enumerates densely.
    fn factor_messages_kernel(
        &self,
        params: &Params,
        f: usize,
        new_fv: &mut [f64],
        scratch: &mut Scratch,
    ) {
        let fd = &self.graph.factors[f];
        if let Potential::TwoLevelScores { group, high_configs, high, low, .. } = &fd.potential {
            let beta = params.group(*group)[0];
            self.two_level_messages_kernel(
                f,
                beta * high,
                beta * low,
                high_configs,
                new_fv,
                scratch,
            );
        } else {
            self.dense_messages_kernel(params, f, new_fv, scratch);
        }
    }

    /// Dense kernel: enumerate every joint configuration.
    fn dense_messages_kernel(
        &self,
        params: &Params,
        f: usize,
        new_fv: &mut [f64],
        scratch: &mut Scratch,
    ) {
        let graph = self.graph;
        let vf = &self.vf;
        let fd = &graph.factors[f];
        let arity = fd.vars.len();
        let edge_start = self.factor_edge_start[f] as usize;
        scratch.edge_offsets.clear();
        for e in edge_start..edge_start + arity {
            scratch.edge_offsets.push(self.edge_offset[e]);
        }
        // Zero-fill output accumulators (log domain: start at -∞ and
        // logsumexp-accumulate).
        for (slot, var) in fd.vars.iter().enumerate() {
            let card = graph.cardinality(*var) as usize;
            let off = scratch.edge_offsets[slot];
            new_fv[off..off + card].fill(f64::NEG_INFINITY);
        }
        scratch.states.clear();
        scratch.states.resize(arity, 0u32);
        // Enumerate all joint configurations; slot 0 varies fastest, which
        // matches the flat-index convention of `FactorGraph`.
        for flat in 0..fd.table_size {
            let log_phi = fd.potential.log_phi(params, flat);
            // Incoming sum per slot exclusion, computed directly (arity is
            // tiny) to avoid the numerically dirty subtract-own-message
            // trick.
            for slot in 0..arity {
                let mut lp = log_phi;
                for (k, &st) in scratch.states.iter().enumerate() {
                    if k != slot {
                        lp += vf[scratch.edge_offsets[k] + st as usize];
                    }
                }
                let out = &mut new_fv[scratch.edge_offsets[slot] + scratch.states[slot] as usize];
                // logaddexp(out, lp)
                *out = if *out == f64::NEG_INFINITY {
                    lp
                } else if lp == f64::NEG_INFINITY {
                    *out
                } else {
                    let m = out.max(lp);
                    m + ((*out - m).exp() + (lp - m).exp()).ln()
                };
            }
            // Advance mixed-radix counter.
            for (k, st) in scratch.states.iter_mut().enumerate() {
                *st += 1;
                if (*st as usize) < graph.cardinality(fd.vars[k]) as usize {
                    break;
                }
                *st = 0;
            }
        }
    }

    /// Sparse kernel for [`Potential::TwoLevelScores`]: the flat `low`
    /// entries are *not* enumerated. Because variable→factor messages are
    /// log-normalized, the contribution of **all** configurations at the
    /// `low` score has the closed form
    /// `base(slot) = β·low + Σ_{k≠slot} logsumexp(vf_k)`, independent of
    /// the slot's state; the listed `high` configurations are then visited
    /// once to replace their `low` term with their `high` term:
    ///
    /// ```text
    /// m(slot, x) = log[ e^base + Σ_{c∈high, c_slot=x} (e^{β·high + in(c)} − e^{β·low + in(c)}) ]
    /// ```
    ///
    /// with `in(c) = Σ_{k≠slot} vf_k(c_k)`. The sum is evaluated with a
    /// per-(slot, state) shift (standard logsumexp trick), so cost is
    /// `O(arity·card + arity·|high|)` instead of `O(arity²·table)`.
    fn two_level_messages_kernel(
        &self,
        f: usize,
        b_high: f64,
        b_low: f64,
        high_configs: &[u32],
        new_fv: &mut [f64],
        scratch: &mut Scratch,
    ) {
        let graph = self.graph;
        let vf = &self.vf;
        let fd = &graph.factors[f];
        let arity = fd.vars.len();
        let edge_start = self.factor_edge_start[f] as usize;
        scratch.edge_offsets.clear();
        for e in edge_start..edge_start + arity {
            scratch.edge_offsets.push(self.edge_offset[e]);
        }
        let b_max = b_high.max(b_low);
        // Per-slot logsumexp of the incoming message and its total.
        scratch.slot_lse.clear();
        let mut lse_total = 0.0f64;
        for (slot, var) in fd.vars.iter().enumerate() {
            let card = graph.cardinality(*var) as usize;
            let off = scratch.edge_offsets[slot];
            let lse = crate::logspace::logsumexp(&vf[off..off + card]);
            scratch.slot_lse.push(lse);
            lse_total += lse;
        }
        // Pass 1: per-(slot, state) shift = max(base, largest high term).
        // The shift lives in the output buffer region temporarily.
        for (slot, var) in fd.vars.iter().enumerate() {
            let card = graph.cardinality(*var) as usize;
            let off = scratch.edge_offsets[slot];
            let base = b_low + lse_total - scratch.slot_lse[slot];
            new_fv[off..off + card].fill(base);
        }
        for &c in high_configs {
            let c = c as usize;
            let mut total_in = 0.0f64;
            for (k, stride) in fd.strides.iter().enumerate() {
                let card = graph.cardinality(fd.vars[k]) as usize;
                let st = (c / stride) % card;
                total_in += vf[scratch.edge_offsets[k] + st];
            }
            for (k, stride) in fd.strides.iter().enumerate() {
                let card = graph.cardinality(fd.vars[k]) as usize;
                let st = (c / stride) % card;
                let own = vf[scratch.edge_offsets[k] + st];
                let term = b_max + total_in - own;
                let out = &mut new_fv[scratch.edge_offsets[k] + st];
                *out = out.max(term);
            }
        }
        // Pass 2: linear-domain accumulation under the shift.
        scratch.acc.clear();
        scratch.acc_starts.clear();
        for (slot, var) in fd.vars.iter().enumerate() {
            let card = graph.cardinality(*var) as usize;
            scratch.acc_starts.push(scratch.acc.len());
            debug_assert_eq!(scratch.acc_starts.len(), slot + 1);
            let off = scratch.edge_offsets[slot];
            let base = b_low + lse_total - scratch.slot_lse[slot];
            for x in 0..card {
                scratch.acc.push((base - new_fv[off + x]).exp());
            }
        }
        for &c in high_configs {
            let c = c as usize;
            let mut total_in = 0.0f64;
            for (k, stride) in fd.strides.iter().enumerate() {
                let card = graph.cardinality(fd.vars[k]) as usize;
                let st = (c / stride) % card;
                total_in += vf[scratch.edge_offsets[k] + st];
            }
            for (k, stride) in fd.strides.iter().enumerate() {
                let card = graph.cardinality(fd.vars[k]) as usize;
                let st = (c / stride) % card;
                let own = vf[scratch.edge_offsets[k] + st];
                let in_excl = total_in - own;
                let shift = new_fv[scratch.edge_offsets[k] + st];
                scratch.acc[scratch.acc_starts[k] + st] +=
                    (b_high + in_excl - shift).exp() - (b_low + in_excl - shift).exp();
            }
        }
        for (slot, var) in fd.vars.iter().enumerate() {
            let card = graph.cardinality(*var) as usize;
            let off = scratch.edge_offsets[slot];
            for x in 0..card {
                let a = scratch.acc[scratch.acc_starts[slot] + x];
                // `a` can only be ≤ 0 through float cancellation when the
                // true sum is negligible relative to the shift.
                new_fv[off + x] =
                    if a > 0.0 { new_fv[off + x] + a.ln() } else { f64::NEG_INFINITY };
            }
        }
    }

    /// Update variable→factor messages for the variables in `selected`.
    fn update_var_messages(&mut self, selected: &[u32]) {
        let mut total: Vec<f64> = Vec::new();
        for &v in selected {
            let vid = VarId(v);
            if let Some(s) = self.clamps[v as usize] {
                self.write_clamped_var_messages(vid, s);
                continue;
            }
            let card = self.graph.cardinality(vid) as usize;
            // Total incoming per state.
            total.clear();
            total.resize(card, 0.0);
            for &e in self.var_out_edges(vid) {
                let r = self.edge_range(e as usize);
                for (t, x) in total.iter_mut().zip(&self.fv[r]) {
                    *t += *x;
                }
            }
            let adj_range = self.var_edge_start[v as usize] as usize
                ..self.var_edge_start[v as usize + 1] as usize;
            for ei in adj_range {
                let e = self.var_edges[ei] as usize;
                let r = self.edge_range(e);
                let off = r.start;
                for (i, &t) in total.iter().enumerate().take(card) {
                    self.vf[off + i] = t - self.fv[off + i];
                }
                log_normalize(&mut self.vf[r]);
            }
        }
    }

    /// Edge ids whose variable is `v` (CSR slice, factor-major order).
    fn var_out_edges(&self, v: VarId) -> &[u32] {
        &self.var_edges
            [self.var_edge_start[v.idx()] as usize..self.var_edge_start[v.idx() + 1] as usize]
    }

    fn write_clamped_var_messages(&mut self, v: VarId, state: u32) {
        let card = self.graph.cardinality(v) as usize;
        let adj = self.var_edge_start[v.idx()] as usize..self.var_edge_start[v.idx() + 1] as usize;
        for ei in adj {
            let off = self.edge_offset[self.var_edges[ei] as usize];
            for i in 0..card {
                self.vf[off + i] = if i == state as usize { 0.0 } else { LOG_ZERO };
            }
        }
    }

    /// Marginal of one variable from the current messages.
    pub fn var_marginal(&self, v: VarId) -> Vec<f64> {
        if let Some(s) = self.clamps[v.idx()] {
            let mut p = vec![0.0; self.graph.cardinality(v) as usize];
            p[s as usize] = 1.0;
            return p;
        }
        let card = self.graph.cardinality(v) as usize;
        let mut log_b = vec![0.0f64; card];
        for &e in self.var_out_edges(v) {
            let r = self.edge_range(e as usize);
            for (b, x) in log_b.iter_mut().zip(&self.fv[r]) {
                *b += *x;
            }
        }
        to_probs(&log_b)
    }

    /// All marginals.
    pub fn marginals(&self) -> Marginals {
        Marginals {
            probs: (0..self.graph.num_vars()).map(|v| self.var_marginal(VarId(v as u32))).collect(),
        }
    }

    /// Belief (probability per flat configuration) of factor `f`:
    /// `b_f(c) ∝ φ(c) · Π_v m_{v→f}(c_v)`. Used to compute the feature
    /// expectations of the learning gradient (paper Eq. 6).
    pub fn factor_belief(&self, params: &Params, f: FactorId) -> Vec<f64> {
        let fd = &self.graph.factors[f.idx()];
        let arity = fd.vars.len();
        let edge_start = self.factor_edge_start[f.idx()] as usize;
        let offsets: Vec<usize> =
            (edge_start..edge_start + arity).map(|e| self.edge_offset[e]).collect();
        let mut states = vec![0u32; arity];
        let mut log_b = Vec::with_capacity(fd.table_size);
        for flat in 0..fd.table_size {
            let mut lp = fd.potential.log_phi(params, flat);
            for (k, &st) in states.iter().enumerate() {
                lp += self.vf[offsets[k] + st as usize];
            }
            log_b.push(lp);
            for (k, st) in states.iter_mut().enumerate() {
                *st += 1;
                if (*st as usize) < self.graph.cardinality(fd.vars[k]) as usize {
                    break;
                }
                *st = 0;
            }
        }
        let z = logsumexp(&log_b);
        if z == f64::NEG_INFINITY {
            let u = 1.0 / fd.table_size as f64;
            return vec![u; fd.table_size];
        }
        log_b.into_iter().map(|x| (x - z).exp()).collect()
    }
}

/// A message snapshot exported from one [`LbpEngine`] run and seeded
/// into a later engine over a graph that appends to the snapshot's graph
/// (see [`LbpEngine::export_messages`] / [`LbpEngine::resume`]). The
/// snapshot is tied to the edge enumeration, not to a borrow of the
/// graph, so a long-lived session can own it across graph growth. Each
/// arena is stored behind the [`MessageStore`] seam — exact `f64` or
/// quantized (see [`crate::store`]).
#[derive(Debug, Clone)]
pub struct LbpMessages {
    /// factor→variable messages (log domain), factor-major arena.
    fv: MessageArena,
    /// variable→factor messages, same arena layout.
    vf: MessageArena,
    /// Number of edges the snapshot covers.
    edges: usize,
}

impl LbpMessages {
    /// Number of factor-slot edges covered by the snapshot.
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// The committed factor→variable arena (for persistence: serialize
    /// the stored representation bit-exactly — a restored session must
    /// resume from the *identical* committed state).
    pub fn fv(&self) -> &MessageArena {
        &self.fv
    }

    /// The committed variable→factor arena.
    pub fn vf(&self) -> &MessageArena {
        &self.vf
    }

    /// Which store the committed arenas use.
    pub fn store(&self) -> MessageStore {
        match self.fv {
            MessageArena::Exact(_) => MessageStore::Exact,
            MessageArena::Quantized(_) => MessageStore::Quantized,
        }
    }

    /// Heap bytes resident in the two committed arenas.
    pub fn heap_bytes(&self) -> usize {
        self.fv.heap_bytes() + self.vf.heap_bytes()
    }

    /// Rebuild a snapshot from persisted state. The two arenas must have
    /// equal length and matching representation (they share one edge
    /// layout); the edge count is validated against the graph when the
    /// snapshot is imported into an engine.
    pub fn import_state(fv: MessageArena, vf: MessageArena, edges: usize) -> Result<Self, String> {
        if fv.len() != vf.len() {
            return Err(format!(
                "message arenas disagree: {} fv values vs {} vf values",
                fv.len(),
                vf.len()
            ));
        }
        if std::mem::discriminant(&fv) != std::mem::discriminant(&vf) {
            return Err("message arenas disagree on their store representation".into());
        }
        if edges > fv.len() {
            return Err(format!("{edges} edges cannot exceed the {} arena slots", fv.len()));
        }
        Ok(Self { fv, vf, edges })
    }

    /// Bitwise equality of two snapshots — the restart-parity criterion,
    /// defined over the **stored representation** (value equality would
    /// also accept `-0.0 == 0.0` and reject equal NaNs; restart parity
    /// means the restored process resumes from the *same bits*).
    pub fn bitwise_eq(&self, other: &LbpMessages) -> bool {
        self.edges == other.edges && self.fv.bitwise_eq(&other.fv) && self.vf.bitwise_eq(&other.vf)
    }
}

/// Reusable buffers for the residual-mode variable update.
#[derive(Default)]
struct VarScratch {
    /// Per-state total of incoming factor→variable messages.
    total: Vec<f64>,
    /// Previous outgoing message of the edge being recomputed.
    old: Vec<f64>,
}

/// A bucketed max-priority queue over factor ids with O(1) amortized push
/// and pop, used by [`ScheduleMode::Residual`].
///
/// Priorities are message residuals ≥ `tol`; bucket `b` holds priorities
/// in `[tol·2^b, tol·2^(b+1))`, so a pop from the highest non-empty
/// bucket is within 2× of the true maximum — accurate enough for
/// scheduling, and immune to the heap's O(log n) and float-comparison
/// ordering costs. Stale entries (superseded by a later push or an
/// earlier pop of the same factor) are invalidated lazily via per-factor
/// stamps: priorities only grow between pops (residual bumps are
/// absolute changes), so an entry is only ever superseded upward and the
/// scan never revisits a bucket it has emptied.
struct BucketQueue {
    tol: f64,
    buckets: Vec<Vec<(u32, u32)>>,
    /// Stamp a queue entry must match to be valid.
    stamp: Vec<u32>,
    /// Whether the factor currently has a valid entry.
    queued: Vec<bool>,
    /// Highest bucket index that may be non-empty.
    highest: usize,
}

impl BucketQueue {
    /// Buckets cover `tol·2^0 .. tol·2^64` — with `tol ≥ 1e-12` that is
    /// far beyond any achievable log-message residual.
    const NUM_BUCKETS: usize = 64;

    fn new(tol: f64, num_factors: usize) -> Self {
        Self {
            // Guard against a non-positive tolerance: bucket on a tiny
            // positive floor instead of dividing by zero.
            tol: if tol > 0.0 { tol } else { f64::MIN_POSITIVE },
            buckets: vec![Vec::new(); Self::NUM_BUCKETS],
            stamp: vec![0; num_factors],
            queued: vec![false; num_factors],
            highest: 0,
        }
    }

    /// Bucket index of priority `p >= tol`.
    #[inline]
    fn bucket_of(&self, p: f64) -> usize {
        ((p / self.tol).log2().max(0.0) as usize).min(Self::NUM_BUCKETS - 1)
    }

    /// Record that factor `f`'s priority changed `old → new`. Enqueues or
    /// re-buckets as needed; priorities below `tol` are never queued.
    fn update(&mut self, f: u32, old: f64, new: f64) {
        if new < self.tol {
            return;
        }
        let b = self.bucket_of(new);
        if self.queued[f as usize] && old >= self.tol && self.bucket_of(old) == b {
            // The existing entry already sits in the right bucket.
            return;
        }
        self.stamp[f as usize] = self.stamp[f as usize].wrapping_add(1);
        self.queued[f as usize] = true;
        self.buckets[b].push((f, self.stamp[f as usize]));
        self.highest = self.highest.max(b);
    }

    /// Pop up to `cap` distinct factors, highest bucket first, clearing
    /// their priorities. Deterministic: pure function of the push/pop
    /// history.
    fn pop_batch(&mut self, cap: usize, prio: &mut [f64], out: &mut Vec<u32>) {
        while out.len() < cap {
            match self.buckets[self.highest].pop() {
                None => {
                    if self.highest == 0 {
                        return;
                    }
                    self.highest -= 1;
                }
                Some((f, s)) => {
                    if !self.queued[f as usize] || self.stamp[f as usize] != s {
                        continue; // stale entry, superseded by a later push
                    }
                    self.queued[f as usize] = false;
                    prio[f as usize] = 0.0;
                    out.push(f);
                }
            }
        }
    }
}

/// Reusable per-thread scratch buffers for the factor sweep.
#[derive(Default)]
struct Scratch {
    edge_offsets: Vec<usize>,
    states: Vec<u32>,
    /// Per-slot logsumexp of the incoming message (two-level kernel).
    slot_lse: Vec<f64>,
    /// Linear-domain accumulators, all slots concatenated (two-level
    /// kernel).
    acc: Vec<f64>,
    /// Start of each slot's accumulator region in `acc`.
    acc_starts: Vec<usize>,
}

/// Raw-pointer wrapper for the disjoint-region writes of the pooled
/// sweeps. Soundness rests on factors never sharing edge regions.
struct SendPtr(*mut f64);
// SAFETY: the pointer targets an arena owned by the caller of the pooled
// sweep, which blocks until every worker finishes; each factor writes
// only its own disjoint edge region (offsets from `FactorGraph::edges`),
// so cross-thread access never aliases a write.
unsafe impl Send for SendPtr {}
// SAFETY: as above — shared access only ever `.add()`s into disjoint
// per-factor regions.
unsafe impl Sync for SendPtr {}

/// One-shot convenience: build an engine, run, return marginals + stats.
pub fn run_lbp(
    graph: &FactorGraph,
    params: &Params,
    clamps: &[(VarId, u32)],
    opts: &LbpOptions,
) -> (Marginals, LbpResult) {
    let mut eng = LbpEngine::new(graph);
    for &(v, s) in clamps {
        eng.set_clamp(v, Some(s));
    }
    let res = eng.run(params, opts);
    (eng.marginals(), res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Potential;

    /// Single binary variable with a unary factor preferring state 1 with
    /// log-odds 1.0: P(1) = sigmoid(1.0).
    #[test]
    fn single_unary_factor_matches_sigmoid() {
        let mut g = FactorGraph::new();
        let v = g.add_var(2);
        let mut params = Params::new();
        let grp = params.add_group_with(vec![1.0]);
        g.add_factor(&[v], Potential::Scores { group: grp, scores: vec![0.0, 1.0] }, 0);
        let opts = LbpOptions { tol: 1e-12, max_iters: 500, ..Default::default() };
        let (m, res) = run_lbp(&g, &params, &[], &opts);
        assert!(res.converged);
        let expected = 1.0 / (1.0 + (-1.0f64).exp());
        assert!((m.prob(v, 1) - expected).abs() < 1e-9, "{}", m.prob(v, 1));
    }

    /// Two-variable attractive chain: exact marginals by hand.
    #[test]
    fn two_var_chain_exact() {
        let mut g = FactorGraph::new();
        let a = g.add_var(2);
        let b = g.add_var(2);
        let mut params = Params::new();
        let unary = params.add_group_with(vec![1.0]);
        let pair = params.add_group_with(vec![1.0]);
        // φ_a = [0, 0.8] (prefers 1), pairwise agreement potential.
        g.add_factor(&[a], Potential::Scores { group: unary, scores: vec![0.0, 0.8] }, 0);
        g.add_factor(
            &[a, b],
            Potential::Scores { group: pair, scores: vec![0.5, 0.0, 0.0, 0.5] },
            0,
        );
        let opts = LbpOptions { tol: 1e-12, max_iters: 500, ..Default::default() };
        let (m, res) = run_lbp(&g, &params, &[], &opts);
        assert!(res.converged);
        // Brute force: p(a,b) ∝ exp(0.8·[a=1]) · exp(0.5·[a=b])
        let w = |a_s: usize, b_s: usize| -> f64 {
            ((0.8 * a_s as f64) + if a_s == b_s { 0.5 } else { 0.0 }).exp()
        };
        let z: f64 = [w(0, 0), w(0, 1), w(1, 0), w(1, 1)].iter().sum();
        let pa1 = (w(1, 0) + w(1, 1)) / z;
        let pb1 = (w(0, 1) + w(1, 1)) / z;
        assert!((m.prob(a, 1) - pa1).abs() < 1e-6, "{} vs {pa1}", m.prob(a, 1));
        assert!((m.prob(b, 1) - pb1).abs() < 1e-6);
    }

    #[test]
    fn clamping_propagates_through_chain() {
        let mut g = FactorGraph::new();
        let a = g.add_var(2);
        let b = g.add_var(2);
        let mut params = Params::new();
        let grp = params.add_group_with(vec![2.0]);
        // Strong agreement factor.
        g.add_factor(
            &[a, b],
            Potential::Scores { group: grp, scores: vec![1.0, 0.0, 0.0, 1.0] },
            0,
        );
        let (m, _) = run_lbp(&g, &params, &[(a, 1)], &LbpOptions::default());
        assert_eq!(m.prob(a, 1), 1.0);
        assert!(m.prob(b, 1) > 0.8, "{}", m.prob(b, 1));
    }

    #[test]
    fn disconnected_variable_is_uniform() {
        let mut g = FactorGraph::new();
        let a = g.add_var(3);
        let _b = g.add_var(2);
        let mut params = Params::new();
        let grp = params.add_group_with(vec![1.0]);
        g.add_factor(&[a], Potential::Scores { group: grp, scores: vec![0.0, 0.0, 1.0] }, 0);
        let (m, _) = run_lbp(&g, &params, &[], &LbpOptions::default());
        let pb = m.of(VarId(1));
        assert!((pb[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn phased_schedule_matches_synchronous_fixed_point() {
        // On a tree both schedules converge to the same (exact) marginals.
        let mut g = FactorGraph::new();
        let a = g.add_var_with_class(2, 0);
        let b = g.add_var_with_class(2, 1);
        let c = g.add_var_with_class(2, 1);
        let mut params = Params::new();
        let g1 = params.add_group_with(vec![1.0]);
        let g2 = params.add_group_with(vec![0.7]);
        g.add_factor(&[a], Potential::Scores { group: g1, scores: vec![0.0, 0.6] }, 0);
        g.add_factor(&[a, b], Potential::Scores { group: g2, scores: vec![1.0, 0.0, 0.0, 1.0] }, 1);
        g.add_factor(&[a, c], Potential::Scores { group: g2, scores: vec![0.0, 1.0, 1.0, 0.0] }, 2);
        let sync = run_lbp(&g, &params, &[], &LbpOptions::default()).0;
        let phased = run_lbp(
            &g,
            &params,
            &[],
            &LbpOptions {
                schedule: Schedule::Phased {
                    factor_phases: vec![vec![0], vec![1], vec![2]],
                    var_phases: vec![vec![0], vec![1]],
                },
                ..LbpOptions::default()
            },
        )
        .0;
        for v in [a, b, c] {
            assert!((sync.prob(v, 1) - phased.prob(v, 1)).abs() < 1e-6);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        // A ring of 40 binary variables with mixed potentials.
        let mut g = FactorGraph::new();
        let vars: Vec<VarId> = (0..40).map(|_| g.add_var(2)).collect();
        let mut params = Params::new();
        let grp = params.add_group_with(vec![0.9]);
        for i in 0..40 {
            let j = (i + 1) % 40;
            let scores =
                if i % 2 == 0 { vec![0.7, 0.1, 0.1, 0.7] } else { vec![0.1, 0.6, 0.6, 0.1] };
            g.add_factor(&[vars[i], vars[j]], Potential::Scores { group: grp, scores }, 0);
        }
        let serial = run_lbp(&g, &params, &[], &LbpOptions { threads: 1, ..Default::default() }).0;
        let parallel =
            run_lbp(&g, &params, &[], &LbpOptions { threads: 4, ..Default::default() }).0;
        for &v in &vars {
            assert!(
                (serial.prob(v, 1) - parallel.prob(v, 1)).abs() < 1e-12,
                "thread count changed the result"
            );
        }
    }

    #[test]
    fn factor_belief_sums_to_one() {
        let mut g = FactorGraph::new();
        let a = g.add_var(2);
        let b = g.add_var(3);
        let mut params = Params::new();
        let grp = params.add_group_with(vec![1.0]);
        let f = g.add_factor(
            &[a, b],
            Potential::Scores { group: grp, scores: vec![0.1, 0.4, 0.3, 0.2, 0.0, 0.5] },
            0,
        );
        let mut eng = LbpEngine::new(&g);
        eng.run(&params, &LbpOptions::default());
        let belief = eng.factor_belief(&params, f);
        assert_eq!(belief.len(), 6);
        assert!((belief.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(belief.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn map_state_picks_argmax() {
        let mut g = FactorGraph::new();
        let v = g.add_var(3);
        let mut params = Params::new();
        let grp = params.add_group_with(vec![1.0]);
        g.add_factor(&[v], Potential::Scores { group: grp, scores: vec![0.0, 2.0, 1.0] }, 0);
        let (m, _) = run_lbp(&g, &params, &[], &LbpOptions::default());
        assert_eq!(m.map_state(v), 1);
    }

    /// A 30-var chain with one strong unary at the head: residual
    /// scheduling must reach the synchronous fixed point while touching
    /// fewer messages once the far end has converged.
    fn chain_graph() -> (FactorGraph, Params, Vec<VarId>) {
        let mut g = FactorGraph::new();
        let vars: Vec<VarId> = (0..30).map(|_| g.add_var(2)).collect();
        let mut params = Params::new();
        let grp = params.add_group_with(vec![1.0]);
        g.add_factor(&[vars[0]], Potential::Scores { group: grp, scores: vec![0.0, 1.5] }, 0);
        for w in vars.windows(2) {
            g.add_factor(
                &[w[0], w[1]],
                Potential::Scores { group: grp, scores: vec![0.6, 0.0, 0.0, 0.6] },
                0,
            );
        }
        (g, params, vars)
    }

    #[test]
    fn residual_matches_synchronous_on_chain() {
        let (g, params, vars) = chain_graph();
        let sync_opts = LbpOptions { tol: 1e-10, max_iters: 500, ..Default::default() };
        let (ms, rs) = run_lbp(&g, &params, &[], &sync_opts);
        let res_opts = LbpOptions { mode: ScheduleMode::Residual, ..sync_opts };
        let (mr, rr) = run_lbp(&g, &params, &[], &res_opts);
        assert!(rs.converged && rr.converged);
        assert!(rr.residual < sync_opts.tol);
        for &v in &vars {
            assert!(
                (ms.prob(v, 1) - mr.prob(v, 1)).abs() < 1e-8,
                "var {v:?}: sync {} vs residual {}",
                ms.prob(v, 1),
                mr.prob(v, 1)
            );
        }
        assert!(rr.message_updates > 0);
        assert!(
            rr.message_updates < rs.message_updates,
            "residual ({}) must beat synchronous ({}) on the chain",
            rr.message_updates,
            rs.message_updates
        );
    }

    #[test]
    fn residual_small_batch_matches_large_batch_fixed_point() {
        let (g, params, vars) = chain_graph();
        let base = LbpOptions {
            mode: ScheduleMode::Residual,
            tol: 1e-10,
            max_iters: 500,
            ..Default::default()
        };
        let (m1, r1) = run_lbp(&g, &params, &[], &LbpOptions { residual_batch: 1, ..base.clone() });
        let (m64, r64) =
            run_lbp(&g, &params, &[], &LbpOptions { residual_batch: 64, ..base.clone() });
        assert!(r1.converged && r64.converged);
        for &v in &vars {
            assert!((m1.prob(v, 1) - m64.prob(v, 1)).abs() < 1e-8);
        }
    }

    #[test]
    fn residual_is_thread_invariant_bitwise() {
        let (g, params, vars) = chain_graph();
        let base = LbpOptions {
            mode: ScheduleMode::Residual,
            tol: 1e-10,
            max_iters: 500,
            exact_threads: true,
            ..Default::default()
        };
        let (m1, r1) = run_lbp(&g, &params, &[], &LbpOptions { threads: 1, ..base.clone() });
        let (m4, r4) = run_lbp(&g, &params, &[], &LbpOptions { threads: 4, ..base.clone() });
        assert_eq!(r1.message_updates, r4.message_updates);
        assert_eq!(r1.iterations, r4.iterations);
        for &v in &vars {
            assert_eq!(m1.prob(v, 1).to_bits(), m4.prob(v, 1).to_bits());
        }
    }

    /// Regression: a phased schedule that excludes a variable class must
    /// keep those variables' messages frozen in residual mode too —
    /// dirty propagation may only wake *scheduled* variables, or the two
    /// modes converge to different fixed points while both reporting
    /// success.
    #[test]
    fn residual_respects_unscheduled_variable_classes() {
        let mut g = FactorGraph::new();
        let a = g.add_var_with_class(2, 0);
        let b = g.add_var_with_class(2, 1); // class 1: never scheduled
        let mut params = Params::new();
        let grp = params.add_group_with(vec![1.0]);
        g.add_factor(&[a], Potential::Scores { group: grp, scores: vec![0.0, 2.0] }, 0);
        g.add_factor(
            &[a, b],
            Potential::Scores { group: grp, scores: vec![0.8, 0.0, 0.0, 0.8] },
            0,
        );
        let schedule = Schedule::Phased {
            factor_phases: vec![vec![0]],
            var_phases: vec![vec![0]], // class 1 frozen
        };
        let base = LbpOptions { tol: 1e-10, max_iters: 500, schedule, ..Default::default() };
        let (ms, rs) = run_lbp(&g, &params, &[], &base);
        let (mr, rr) =
            run_lbp(&g, &params, &[], &LbpOptions { mode: ScheduleMode::Residual, ..base });
        assert!(rs.converged && rr.converged);
        for v in [a, b] {
            assert!(
                (ms.prob(v, 1) - mr.prob(v, 1)).abs() < 1e-8,
                "var {v:?}: sync {} vs residual {}",
                ms.prob(v, 1),
                mr.prob(v, 1)
            );
        }
    }

    #[test]
    fn residual_respects_clamps() {
        let mut g = FactorGraph::new();
        let a = g.add_var(2);
        let b = g.add_var(2);
        let mut params = Params::new();
        let grp = params.add_group_with(vec![2.0]);
        g.add_factor(
            &[a, b],
            Potential::Scores { group: grp, scores: vec![1.0, 0.0, 0.0, 1.0] },
            0,
        );
        let opts = LbpOptions { mode: ScheduleMode::Residual, ..Default::default() };
        let (m, res) = run_lbp(&g, &params, &[(a, 1)], &opts);
        assert!(res.converged);
        assert_eq!(m.prob(a, 1), 1.0);
        assert!(m.prob(b, 1) > 0.8, "{}", m.prob(b, 1));
    }

    #[test]
    fn residual_converges_on_disconnected_and_empty_graphs() {
        // No factors at all: the drain must terminate immediately.
        let mut g = FactorGraph::new();
        g.add_var(3);
        let params = Params::new();
        let opts = LbpOptions { mode: ScheduleMode::Residual, ..Default::default() };
        let (m, res) = run_lbp(&g, &params, &[], &opts);
        assert!(res.converged);
        assert_eq!(res.message_updates, 0);
        assert!((m.prob(VarId(0), 0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn residual_counts_match_synchronous_accounting() {
        // One unary factor, damping 0.1: synchronous sweeps until the
        // damped message stops moving (5 iterations × 1 message);
        // residual pays the priming update plus the geometric damping
        // tail — strictly fewer updates under identical accounting.
        let mut g = FactorGraph::new();
        let v = g.add_var(2);
        let mut params = Params::new();
        let grp = params.add_group_with(vec![1.0]);
        g.add_factor(&[v], Potential::Scores { group: grp, scores: vec![0.0, 1.0] }, 0);
        let sync = run_lbp(&g, &params, &[], &LbpOptions::default()).1;
        let res = run_lbp(
            &g,
            &params,
            &[],
            &LbpOptions { mode: ScheduleMode::Residual, ..Default::default() },
        )
        .1;
        assert_eq!(sync.message_updates, sync.iterations as u64);
        assert!(res.converged && sync.converged);
        assert!(res.message_updates >= 1);
        assert!(
            res.message_updates < sync.message_updates,
            "residual {} vs sync {}",
            res.message_updates,
            sync.message_updates
        );
        // With undamped updates the fixed point is reached in one shot:
        // the priming update is the only message residual mode computes.
        let undamped = LbpOptions { damping: 0.0, ..Default::default() };
        let res0 = run_lbp(
            &g,
            &params,
            &[],
            &LbpOptions { mode: ScheduleMode::Residual, ..undamped.clone() },
        )
        .1;
        assert_eq!(res0.message_updates, 1);
    }

    #[test]
    fn bucket_queue_pops_highest_priority_first() {
        let tol = 1e-4;
        let mut q = BucketQueue::new(tol, 4);
        let mut prio = [0.0f64; 4];
        for (f, p) in [(0u32, 2e-4), (1, 5e-1), (2, 3e-3), (3, 5e-5)] {
            prio[f as usize] = p;
            q.update(f, 0.0, p);
        }
        let mut batch = Vec::new();
        q.pop_batch(2, &mut prio, &mut batch);
        assert_eq!(batch, vec![1, 2], "highest buckets first");
        // Factor 3 was below tol and never queued.
        batch.clear();
        q.pop_batch(8, &mut prio, &mut batch);
        assert_eq!(batch, vec![0]);
        assert!(prio.iter().all(|&p| p == 0.0 || p == 5e-5));
    }

    #[test]
    fn bucket_queue_rebuckets_grown_priorities() {
        let tol = 1e-4;
        let mut q = BucketQueue::new(tol, 2);
        let mut prio = [2e-4f64, 1.0];
        q.update(0, 0.0, 2e-4);
        q.update(1, 0.0, 1.0);
        // Factor 0 grows past factor 1; the stale low-bucket entry must
        // not shadow the fresh one.
        prio[0] = 4.0;
        q.update(0, 2e-4, 4.0);
        let mut batch = Vec::new();
        q.pop_batch(1, &mut prio, &mut batch);
        assert_eq!(batch, vec![0]);
        batch.clear();
        q.pop_batch(4, &mut prio, &mut batch);
        assert_eq!(batch, vec![1]);
    }

    /// Warm-started resume on an appended-to graph must reach the cold
    /// fixed point (both modes) while, in residual mode, recomputing far
    /// fewer messages.
    #[test]
    fn resume_on_appended_graph_matches_cold_fixed_point() {
        // Chain of 30 built in two stages: the first 20 vars/factors,
        // then 10 more appended — ids and edge enumeration of the prefix
        // are identical by construction.
        let build = |n: usize| -> (FactorGraph, Params) {
            let mut g = FactorGraph::new();
            let vars: Vec<VarId> = (0..n).map(|_| g.add_var(2)).collect();
            let mut params = Params::new();
            let grp = params.add_group_with(vec![1.0]);
            g.add_factor(&[vars[0]], Potential::Scores { group: grp, scores: vec![0.0, 1.5] }, 0);
            for w in vars.windows(2) {
                g.add_factor(
                    &[w[0], w[1]],
                    Potential::Scores { group: grp, scores: vec![0.6, 0.0, 0.0, 0.6] },
                    0,
                );
            }
            (g, params)
        };
        let (g20, params) = build(20);
        let (g30, _) = build(30);
        let dirty: Vec<u32> = (g20.num_factors() as u32..g30.num_factors() as u32).collect();
        for mode in [ScheduleMode::Synchronous, ScheduleMode::Residual] {
            let opts = LbpOptions { tol: 1e-10, max_iters: 500, mode, ..Default::default() };
            let mut prefix = LbpEngine::new(&g20);
            prefix.run(&params, &opts);
            let snapshot = prefix.export_messages();

            let mut warm = LbpEngine::new(&g30);
            let warm_res = warm.resume(&snapshot, &params, &opts, &dirty);
            let mut cold = LbpEngine::new(&g30);
            let cold_res = cold.run(&params, &opts);
            assert!(warm_res.converged && cold_res.converged, "{mode:?}");
            let (mw, mc) = (warm.marginals(), cold.marginals());
            for v in 0..g30.num_vars() {
                let v = VarId(v as u32);
                assert!(
                    (mw.prob(v, 1) - mc.prob(v, 1)).abs() < 1e-7,
                    "{mode:?} var {v:?}: warm {} vs cold {}",
                    mw.prob(v, 1),
                    mc.prob(v, 1)
                );
            }
            if mode == ScheduleMode::Residual {
                assert!(
                    warm_res.message_updates * 2 < cold_res.message_updates,
                    "warm resume must at least halve the cold residual work: {} vs {}",
                    warm_res.message_updates,
                    cold_res.message_updates
                );
            }
        }
    }

    /// A connected component the dirty set does not reach performs zero
    /// updates under residual resume: its messages — and marginals — are
    /// preserved bit-for-bit.
    #[test]
    fn resume_leaves_untouched_components_bitwise_frozen() {
        let build = |extended: bool| -> (FactorGraph, Params) {
            let mut g = FactorGraph::new();
            let mut params = Params::new();
            let grp = params.add_group_with(vec![1.0]);
            // Component A: a 3-cycle (loopy, nontrivial fixed point).
            let a: Vec<VarId> = (0..3).map(|_| g.add_var(2)).collect();
            for (i, j) in [(0, 1), (1, 2), (0, 2)] {
                g.add_factor(
                    &[a[i], a[j]],
                    Potential::Scores { group: grp, scores: vec![0.7, 0.0, 0.0, 0.7] },
                    0,
                );
            }
            // Component B: a pair.
            let b0 = g.add_var(2);
            let b1 = g.add_var(2);
            g.add_factor(&[b0], Potential::Scores { group: grp, scores: vec![0.0, 0.9] }, 0);
            g.add_factor(
                &[b0, b1],
                Potential::Scores { group: grp, scores: vec![0.5, 0.0, 0.0, 0.5] },
                0,
            );
            if extended {
                // Delta: one more variable hanging off component B.
                let b2 = g.add_var(2);
                g.add_factor(
                    &[b1, b2],
                    Potential::Scores { group: grp, scores: vec![0.4, 0.0, 0.0, 0.4] },
                    0,
                );
            }
            (g, params)
        };
        let opts = LbpOptions {
            tol: 1e-10,
            max_iters: 500,
            mode: ScheduleMode::Residual,
            ..Default::default()
        };
        let (g0, params) = build(false);
        let mut prefix = LbpEngine::new(&g0);
        prefix.run(&params, &opts);
        let before = prefix.marginals();
        let snapshot = prefix.export_messages();

        let (g1, _) = build(true);
        let dirty: Vec<u32> = (g0.num_factors() as u32..g1.num_factors() as u32).collect();
        let mut warm = LbpEngine::new(&g1);
        let res = warm.resume(&snapshot, &params, &opts, &dirty);
        assert!(res.converged);
        let after = warm.marginals();
        for v in 0..3 {
            let v = VarId(v);
            for (x, y) in before.of(v).iter().zip(after.of(v)) {
                assert_eq!(x.to_bits(), y.to_bits(), "component A must stay frozen");
            }
        }
        // The new variable actually moved off uniform.
        assert!((after.prob(VarId(5), 1) - 0.5).abs() > 1e-3);
    }

    /// The serving retraction sequence — converge, neutralize a factor,
    /// reset its messages, resume with the tombstone and its neighbors
    /// dirty — reaches the fixed point of a graph that never had the
    /// factor (both schedule modes).
    #[test]
    fn neutralize_reset_resume_matches_factor_free_fixed_point() {
        let build = |with_evidence: bool| -> (FactorGraph, Params) {
            let mut g = FactorGraph::new();
            let mut params = Params::new();
            let grp = params.add_group_with(vec![1.0]);
            let a = g.add_var(2);
            let b = g.add_var(2);
            if with_evidence {
                // Factor 0: the evidence that will be retracted.
                g.add_factor(&[a], Potential::Scores { group: grp, scores: vec![0.0, 1.4] }, 0);
            }
            g.add_factor(
                &[a, b],
                Potential::Scores { group: grp, scores: vec![0.6, 0.0, 0.0, 0.6] },
                0,
            );
            g.add_factor(&[b], Potential::Scores { group: grp, scores: vec![0.3, 0.0] }, 0);
            (g, params)
        };
        for mode in [ScheduleMode::Synchronous, ScheduleMode::Residual] {
            let opts = LbpOptions { tol: 1e-10, max_iters: 500, mode, ..Default::default() };
            let (mut g, params) = build(true);
            let mut eng = LbpEngine::new(&g);
            assert!(eng.run(&params, &opts).converged);
            let before = eng.marginals();
            assert!(before.prob(VarId(0), 1) > 0.6, "evidence must matter pre-retraction");
            let snapshot = eng.export_messages();
            drop(eng);

            g.neutralize_factor(FactorId(0));
            let mut warm = LbpEngine::new(&g);
            warm.import_messages(&snapshot);
            warm.reset_factor_messages(&[0]);
            // Dirty: the tombstone plus every live factor sharing one of
            // its variables (here the pair factor 1).
            let res = warm.resume_imported(&params, &opts, &[0, 1]);
            assert!(res.converged, "{mode:?}");

            // Reference: the same system without the evidence factor,
            // converged cold.
            let (g_ref, _) = build(false);
            let mut cold = LbpEngine::new(&g_ref);
            assert!(cold.run(&params, &opts).converged);
            let (mw, mr) = (warm.marginals(), cold.marginals());
            for v in 0..2 {
                assert!(
                    (mw.prob(VarId(v), 1) - mr.prob(VarId(v), 1)).abs() < 1e-7,
                    "{mode:?} var {v}: warm {} vs factor-free {}",
                    mw.prob(VarId(v), 1),
                    mr.prob(VarId(v), 1)
                );
            }
        }
    }

    #[test]
    fn lbp_messages_state_roundtrip_and_bitwise_eq() {
        let mut g = FactorGraph::new();
        let a = g.add_var(2);
        let b = g.add_var(3);
        let mut params = Params::new();
        let grp = params.add_group_with(vec![1.0]);
        g.add_factor(&[a, b], Potential::Scores { group: grp, scores: vec![0.2; 6] }, 0);
        g.add_factor(&[a], Potential::Scores { group: grp, scores: vec![0.0, 0.8] }, 0);
        let mut eng = LbpEngine::new(&g);
        eng.run(&params, &LbpOptions::default());
        let snap = eng.export_messages();
        let (fv, vf, edges) = (snap.fv().to_vec(), snap.vf().to_vec(), snap.num_edges());
        let restored = LbpMessages::import_state(
            MessageArena::Exact(fv.clone()),
            MessageArena::Exact(vf.clone()),
            edges,
        )
        .unwrap();
        assert!(snap.bitwise_eq(&restored));
        assert_eq!(restored.num_edges(), snap.num_edges());
        assert_eq!(restored.store(), MessageStore::Exact);
        // A restored snapshot drives an engine to the identical state.
        let mut eng2 = LbpEngine::new(&g);
        eng2.import_messages(&restored);
        assert!(eng2.export_messages().bitwise_eq(&snap));
        // Mismatched arenas are a typed error, not a panic.
        let exact = |n: usize| MessageArena::Exact(vec![0.0; n]);
        assert!(LbpMessages::import_state(exact(3), exact(2), 1).is_err());
        assert!(LbpMessages::import_state(exact(2), exact(2), 9).is_err());
        let quant = MessageArena::encode(&[0.0, 0.0], MessageStore::Quantized);
        assert!(LbpMessages::import_state(exact(2), quant, 2).is_err(), "mixed stores");
        // A single flipped bit breaks bitwise equality.
        let mut fv2 = fv.clone();
        fv2[0] = f64::from_bits(fv2[0].to_bits() ^ 1);
        let tweaked =
            LbpMessages::import_state(MessageArena::Exact(fv2), MessageArena::Exact(vf), edges)
                .unwrap();
        assert!(!snap.bitwise_eq(&tweaked));
    }

    /// The quantized store round-trips through an engine: committing the
    /// same converged state twice yields bitwise-identical quantized
    /// snapshots (idempotence at the engine level), and the decoded
    /// messages stay within quantization tolerance of the exact store.
    #[test]
    fn quantized_export_is_stable_and_close_to_exact() {
        let (g, params, _) = chain_graph();
        let mut eng = LbpEngine::new(&g);
        eng.run(&params, &LbpOptions::default());
        let exact = eng.export_messages();
        let quant = eng.export_messages_with(MessageStore::Quantized);
        assert_eq!(quant.store(), MessageStore::Quantized);
        assert!(quant.heap_bytes() < exact.heap_bytes());
        // Decode error bounded by block spread × f32 eps (messages are
        // normalized log-probs; no clamps in this graph, so spreads are
        // a few nats at most).
        let (de, dq) = (exact.fv().to_vec(), quant.fv().to_vec());
        for (a, b) in de.iter().zip(&dq) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
        // Import the quantized snapshot and re-commit without running:
        // the stored representation must be a fixed point.
        let mut eng2 = LbpEngine::new(&g);
        eng2.import_messages(&quant);
        let recommit = eng2.export_messages_with(MessageStore::Quantized);
        assert!(recommit.bitwise_eq(&quant));
    }

    #[test]
    #[should_panic(expected = "appending")]
    fn import_rejects_non_prefix_snapshot() {
        let mut g0 = FactorGraph::new();
        let a = g0.add_var(2);
        let mut params = Params::new();
        let grp = params.add_group_with(vec![1.0]);
        g0.add_factor(&[a], Potential::Scores { group: grp, scores: vec![0.0, 1.0] }, 0);
        let mut eng0 = LbpEngine::new(&g0);
        eng0.run(&params, &LbpOptions::default());
        let snap = eng0.export_messages();
        // A *different* graph whose first factor has another arity: the
        // arena prefix cannot line up.
        let mut g1 = FactorGraph::new();
        let x = g1.add_var(3);
        g1.add_factor(&[x], Potential::Scores { group: 0, scores: vec![0.0; 3] }, 0);
        g1.add_factor(&[x], Potential::Scores { group: 0, scores: vec![0.0; 3] }, 0);
        let mut eng1 = LbpEngine::new(&g1);
        eng1.import_messages(&snap);
    }

    #[test]
    fn contradictory_strong_evidence_does_not_nan() {
        let mut g = FactorGraph::new();
        let a = g.add_var(2);
        let b = g.add_var(2);
        let mut params = Params::new();
        let grp = params.add_group_with(vec![50.0]);
        // Disagreement factor, but both ends clamped to the same state.
        g.add_factor(
            &[a, b],
            Potential::Scores { group: grp, scores: vec![0.0, 1.0, 1.0, 0.0] },
            0,
        );
        let (m, _) = run_lbp(&g, &params, &[(a, 0), (b, 0)], &LbpOptions::default());
        for v in [a, b] {
            for &p in m.of(v) {
                assert!(p.is_finite());
            }
        }
    }
}
