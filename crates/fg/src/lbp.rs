//! Loopy belief propagation (sum-product) in the log domain.
//!
//! Implements the inference procedure of paper §3.4:
//!
//! * messages are passed between factor and variable nodes until
//!   convergence ("in practice we found that convergence was achieved
//!   within twenty iterations");
//! * a **phased schedule** reproduces the paper's working procedure —
//!   within an iteration, factor classes update in a fixed order
//!   (canonicalization factors → transitive factors → linking factors →
//!   fact-inclusion factors → consistency factors), then variable classes
//!   (canonicalization variables first, then linking variables);
//! * messages are damped and normalized for stability;
//! * evidence is injected by **clamping** variables, which is how learning
//!   conditions on the labeled configuration `Y|Y_L` (paper Eq. 5).
//!
//! The factor → variable sweep is the hot loop; it parallelizes over
//! contiguous factor ranges with `crossbeam` scoped threads (each range
//! owns a disjoint contiguous slice of the message arena, so the update
//! is deterministic regardless of thread count).

use crate::graph::{FactorGraph, FactorId, VarId};
use crate::logspace::{log_normalize, logsumexp, max_abs_diff, to_probs};
use crate::params::Params;

/// Log-potential treated as "probability zero" while keeping additions
/// well-conditioned (exp(-1e4) underflows to exactly 0.0).
pub const LOG_ZERO: f64 = -1.0e4;

/// Message-passing schedule.
#[derive(Debug, Clone)]
pub enum Schedule {
    /// All factors update together, then all variables. The textbook
    /// flooding schedule.
    Synchronous,
    /// The paper's §3.4 procedure: factor classes update phase by phase,
    /// then variable classes phase by phase. Classes absent from any phase
    /// never update.
    Phased {
        /// Ordered factor-class phases, e.g. `[[F_CANON], [U_TRANS], ...]`.
        factor_phases: Vec<Vec<u8>>,
        /// Ordered variable-class phases.
        var_phases: Vec<Vec<u8>>,
    },
}

/// Options for [`LbpEngine::run`].
#[derive(Debug, Clone)]
pub struct LbpOptions {
    /// Maximum full iterations (paper: ~20 suffices).
    pub max_iters: usize,
    /// Convergence threshold on the max message change.
    pub tol: f64,
    /// Damping λ applied to factor→variable messages:
    /// `m ← λ·m_old + (1−λ)·m_new`.
    pub damping: f64,
    /// Schedule (see [`Schedule`]).
    pub schedule: Schedule,
    /// Worker threads for the factor sweep (1 = serial). The result is
    /// identical for any thread count.
    pub threads: usize,
}

impl Default for LbpOptions {
    fn default() -> Self {
        Self {
            max_iters: 50,
            tol: 1e-4,
            damping: 0.1,
            schedule: Schedule::Synchronous,
            threads: 1,
        }
    }
}

/// Statistics of an LBP run.
#[derive(Debug, Clone, Copy)]
pub struct LbpResult {
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the residual dropped below `tol`.
    pub converged: bool,
    /// Final max message residual.
    pub residual: f64,
}

/// Per-variable marginal distributions.
#[derive(Debug, Clone)]
pub struct Marginals {
    probs: Vec<Vec<f64>>,
}

impl Marginals {
    /// Internal constructor shared with the exact-inference module.
    pub(crate) fn new_internal(probs: Vec<Vec<f64>>) -> Self {
        Self { probs }
    }

    /// Probability vector of variable `v`.
    pub fn of(&self, v: VarId) -> &[f64] {
        &self.probs[v.idx()]
    }

    /// MAP state of variable `v` (ties broken toward the lower state).
    pub fn map_state(&self, v: VarId) -> u32 {
        let p = &self.probs[v.idx()];
        let mut best = 0usize;
        for (i, &x) in p.iter().enumerate() {
            if x > p[best] {
                best = i;
            }
        }
        best as u32
    }

    /// `P(v = state)`.
    pub fn prob(&self, v: VarId, state: u32) -> f64 {
        self.probs[v.idx()][state as usize]
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True when no variables are covered.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }
}

/// Reusable LBP state over one graph.
pub struct LbpEngine<'g> {
    graph: &'g FactorGraph,
    /// Per-edge offset into the message arenas.
    edge_offset: Vec<usize>,
    /// Per-edge variable id (edges are enumerated factor-major by slot).
    edge_var: Vec<u32>,
    /// First edge id of each factor (length `num_factors + 1`).
    factor_edge_start: Vec<u32>,
    /// factor→variable messages (log domain, normalized).
    fv: Vec<f64>,
    /// variable→factor messages (log domain, normalized).
    vf: Vec<f64>,
    /// Scratch buffer for new factor→variable messages.
    new_fv: Vec<f64>,
    clamps: Vec<Option<u32>>,
}

impl<'g> LbpEngine<'g> {
    /// Allocate message storage for `graph`.
    pub fn new(graph: &'g FactorGraph) -> Self {
        let mut edge_offset = Vec::new();
        let mut edge_var = Vec::new();
        let mut factor_edge_start = Vec::with_capacity(graph.num_factors() + 1);
        let mut offset = 0usize;
        for fi in 0..graph.num_factors() {
            factor_edge_start.push(edge_offset.len() as u32);
            for &v in graph.factor_vars(FactorId(fi as u32)) {
                edge_offset.push(offset);
                edge_var.push(v.0);
                offset += graph.cardinality(v) as usize;
            }
        }
        factor_edge_start.push(edge_offset.len() as u32);
        let mut eng = Self {
            graph,
            edge_offset,
            edge_var,
            factor_edge_start,
            fv: vec![0.0; offset],
            vf: vec![0.0; offset],
            new_fv: vec![0.0; offset],
            clamps: vec![None; graph.num_vars()],
        };
        eng.reset_messages();
        eng
    }

    /// Reset all messages to uniform (keeps clamps).
    pub fn reset_messages(&mut self) {
        for e in 0..self.num_edges() {
            let card = self.edge_len(e);
            let uniform = -(card as f64).ln();
            let off = self.edge_offset[e];
            self.fv[off..off + card].fill(uniform);
            self.vf[off..off + card].fill(uniform);
        }
        // Re-apply clamp evidence to vf messages.
        let clamped: Vec<(usize, u32)> = self
            .clamps
            .iter()
            .enumerate()
            .filter_map(|(v, c)| c.map(|s| (v, s)))
            .collect();
        for (v, s) in clamped {
            self.write_clamped_var_messages(VarId(v as u32), s);
        }
    }

    /// Clamp variable `v` to `state` (or release with `None`).
    ///
    /// # Panics
    /// Panics if `state` is out of range.
    pub fn set_clamp(&mut self, v: VarId, state: Option<u32>) {
        if let Some(s) = state {
            assert!(s < self.graph.cardinality(v), "clamp state out of range");
        }
        self.clamps[v.idx()] = state;
    }

    /// Remove all clamps.
    pub fn clear_clamps(&mut self) {
        self.clamps.fill(None);
    }

    /// Number of edges (factor-slot pairs).
    pub fn num_edges(&self) -> usize {
        self.edge_offset.len()
    }

    #[inline]
    fn edge_len(&self, e: usize) -> usize {
        self.graph.cardinality(VarId(self.edge_var[e])) as usize
    }

    #[inline]
    fn edge_range(&self, e: usize) -> std::ops::Range<usize> {
        let off = self.edge_offset[e];
        off..off + self.edge_len(e)
    }

    /// Edge ids of factor `f` in slot order.
    #[inline]
    fn factor_edges(&self, f: usize) -> std::ops::Range<usize> {
        self.factor_edge_start[f] as usize..self.factor_edge_start[f + 1] as usize
    }

    /// Run LBP to convergence (or `max_iters`). Messages persist, so
    /// marginals and factor beliefs can be queried afterwards.
    pub fn run(&mut self, params: &Params, opts: &LbpOptions) -> LbpResult {
        self.reset_messages();
        let (factor_phases, var_phases): (Vec<Vec<u8>>, Vec<Vec<u8>>) = match &opts.schedule {
            Schedule::Synchronous => {
                let mut all_f: Vec<u8> = (0..self.graph.num_factors())
                    .map(|f| self.graph.factor_class(FactorId(f as u32)))
                    .collect();
                all_f.sort_unstable();
                all_f.dedup();
                let mut all_v: Vec<u8> = (0..self.graph.num_vars())
                    .map(|v| self.graph.var_class(VarId(v as u32)))
                    .collect();
                all_v.sort_unstable();
                all_v.dedup();
                (vec![all_f], vec![all_v])
            }
            Schedule::Phased { factor_phases, var_phases } => {
                (factor_phases.clone(), var_phases.clone())
            }
        };
        let mut result = LbpResult { iterations: 0, converged: false, residual: f64::INFINITY };
        for iter in 0..opts.max_iters {
            let mut residual = 0.0f64;
            for phase in &factor_phases {
                residual =
                    residual.max(self.update_factor_messages(params, phase, opts));
            }
            for phase in &var_phases {
                self.update_var_messages(phase);
            }
            result.iterations = iter + 1;
            result.residual = residual;
            if residual < opts.tol {
                result.converged = true;
                break;
            }
        }
        result
    }

    /// Update factor→variable messages for all factors whose class is in
    /// `classes`. Returns the max residual.
    fn update_factor_messages(
        &mut self,
        params: &Params,
        classes: &[u8],
        opts: &LbpOptions,
    ) -> f64 {
        let selected: Vec<u32> = (0..self.graph.num_factors() as u32)
            .filter(|&f| classes.contains(&self.graph.factor_class(FactorId(f))))
            .collect();
        if selected.is_empty() {
            return 0.0;
        }
        let threads = opts.threads.max(1);
        if threads == 1 || selected.len() < 64 {
            let mut scratch = Scratch::default();
            for &f in &selected {
                self.compute_factor_messages_into(params, f as usize, &mut scratch);
            }
        } else {
            self.parallel_factor_sweep(params, &selected, threads);
        }
        // Commit with damping + normalization; measure residual.
        let mut residual = 0.0f64;
        for &f in &selected {
            for e in self.factor_edges(f as usize) {
                let range = self.edge_range(e);
                let lambda = opts.damping;
                for i in range.clone() {
                    self.new_fv[i] = lambda * self.fv[i] + (1.0 - lambda) * self.new_fv[i];
                }
                log_normalize(&mut self.new_fv[range.clone()]);
                residual = residual.max(max_abs_diff(&self.new_fv[range.clone()], &self.fv[range.clone()]));
                self.fv[range.clone()].copy_from_slice(&self.new_fv[range]);
            }
        }
        residual
    }

    /// Compute raw (undamped, unnormalized) new messages of one factor
    /// into `self.new_fv`.
    fn compute_factor_messages_into(&mut self, params: &Params, f: usize, scratch: &mut Scratch) {
        // Split borrows: read vf/graph, write new_fv.
        let (graph, vf, new_fv) = (self.graph, &self.vf, &mut self.new_fv);
        let fd = &graph.factors[f];
        let arity = fd.vars.len();
        let edge_start = self.factor_edge_start[f] as usize;
        scratch.edge_offsets.clear();
        for e in edge_start..edge_start + arity {
            scratch.edge_offsets.push(self.edge_offset[e]);
        }
        // Zero-fill output accumulators (log domain: start at LOG_ZERO and
        // logsumexp-accumulate).
        for (slot, var) in fd.vars.iter().enumerate() {
            let card = graph.cardinality(*var) as usize;
            let off = scratch.edge_offsets[slot];
            new_fv[off..off + card].fill(f64::NEG_INFINITY);
        }
        scratch.states.clear();
        scratch.states.resize(arity, 0u32);
        // Enumerate all joint configurations; slot 0 varies fastest, which
        // matches the flat-index convention of `FactorGraph`.
        for flat in 0..fd.table_size {
            let log_phi = fd.potential.log_phi(params, flat);
            // Incoming sum per slot exclusion, computed directly (arity is
            // tiny) to avoid the numerically dirty subtract-own-message
            // trick.
            for slot in 0..arity {
                let mut lp = log_phi;
                for (k, &st) in scratch.states.iter().enumerate() {
                    if k != slot {
                        lp += vf[scratch.edge_offsets[k] + st as usize];
                    }
                }
                let out = &mut new_fv[scratch.edge_offsets[slot] + scratch.states[slot] as usize];
                // logaddexp(out, lp)
                *out = if *out == f64::NEG_INFINITY {
                    lp
                } else if lp == f64::NEG_INFINITY {
                    *out
                } else {
                    let m = out.max(lp);
                    m + ((*out - m).exp() + (lp - m).exp()).ln()
                };
            }
            // Advance mixed-radix counter.
            for (k, st) in scratch.states.iter_mut().enumerate() {
                *st += 1;
                if (*st as usize) < graph.cardinality(fd.vars[k]) as usize {
                    break;
                }
                *st = 0;
            }
        }
    }

    /// Parallel variant of the factor sweep: contiguous chunks of the
    /// selected factor list are processed by scoped threads. Each factor's
    /// output region in `new_fv` is disjoint, but chunks are not
    /// contiguous in the arena, so threads write through a shared raw
    /// pointer wrapper; disjointness guarantees soundness.
    fn parallel_factor_sweep(&mut self, params: &Params, selected: &[u32], threads: usize) {
        struct SendPtr(*mut f64);
        unsafe impl Send for SendPtr {}
        unsafe impl Sync for SendPtr {}

        let chunk = selected.len().div_ceil(threads);
        let new_fv_ptr = SendPtr(self.new_fv.as_mut_ptr());
        let new_fv_len = self.new_fv.len();
        let this: &LbpEngine = self;
        crossbeam::scope(|s| {
            for chunk_factors in selected.chunks(chunk) {
                let ptr = &new_fv_ptr;
                s.spawn(move |_| {
                    let mut scratch = Scratch::default();
                    for &f in chunk_factors {
                        // SAFETY: each factor owns a disjoint region of
                        // new_fv (edge regions never overlap across
                        // factors), and every factor appears in exactly
                        // one chunk.
                        let new_fv =
                            unsafe { std::slice::from_raw_parts_mut(ptr.0, new_fv_len) };
                        this.compute_factor_messages_shared(params, f as usize, new_fv, &mut scratch);
                    }
                });
            }
        })
        .expect("lbp worker panicked");
    }

    /// Like [`Self::compute_factor_messages_into`] but writing into an
    /// externally provided buffer (used by the parallel sweep).
    fn compute_factor_messages_shared(
        &self,
        params: &Params,
        f: usize,
        new_fv: &mut [f64],
        scratch: &mut Scratch,
    ) {
        let graph = self.graph;
        let vf = &self.vf;
        let fd = &graph.factors[f];
        let arity = fd.vars.len();
        let edge_start = self.factor_edge_start[f] as usize;
        scratch.edge_offsets.clear();
        for e in edge_start..edge_start + arity {
            scratch.edge_offsets.push(self.edge_offset[e]);
        }
        for (slot, var) in fd.vars.iter().enumerate() {
            let card = graph.cardinality(*var) as usize;
            let off = scratch.edge_offsets[slot];
            new_fv[off..off + card].fill(f64::NEG_INFINITY);
        }
        scratch.states.clear();
        scratch.states.resize(arity, 0u32);
        for flat in 0..fd.table_size {
            let log_phi = fd.potential.log_phi(params, flat);
            for slot in 0..arity {
                let mut lp = log_phi;
                for (k, &st) in scratch.states.iter().enumerate() {
                    if k != slot {
                        lp += vf[scratch.edge_offsets[k] + st as usize];
                    }
                }
                let out = &mut new_fv[scratch.edge_offsets[slot] + scratch.states[slot] as usize];
                *out = if *out == f64::NEG_INFINITY {
                    lp
                } else if lp == f64::NEG_INFINITY {
                    *out
                } else {
                    let m = out.max(lp);
                    m + ((*out - m).exp() + (lp - m).exp()).ln()
                };
            }
            for (k, st) in scratch.states.iter_mut().enumerate() {
                *st += 1;
                if (*st as usize) < graph.cardinality(fd.vars[k]) as usize {
                    break;
                }
                *st = 0;
            }
        }
    }

    /// Update variable→factor messages for variables in `classes`.
    fn update_var_messages(&mut self, classes: &[u8]) {
        for v in 0..self.graph.num_vars() {
            let vid = VarId(v as u32);
            if !classes.contains(&self.graph.var_class(vid)) {
                continue;
            }
            if let Some(s) = self.clamps[v] {
                self.write_clamped_var_messages(vid, s);
                continue;
            }
            let card = self.graph.cardinality(vid) as usize;
            // Total incoming per state.
            let mut total = vec![0.0f64; card];
            let adj: Vec<usize> = self.var_out_edges(vid);
            for &e in &adj {
                let r = self.edge_range(e);
                for (t, x) in total.iter_mut().zip(&self.fv[r]) {
                    *t += *x;
                }
            }
            for &e in &adj {
                let r = self.edge_range(e);
                let off = r.start;
                for (i, &t) in total.iter().enumerate().take(card) {
                    self.vf[off + i] = t - self.fv[off + i];
                }
                log_normalize(&mut self.vf[r]);
            }
        }
    }

    /// Edge ids whose variable is `v`.
    fn var_out_edges(&self, v: VarId) -> Vec<usize> {
        self.graph
            .var_factors(v)
            .map(|(f, slot)| self.factor_edge_start[f.idx()] as usize + slot)
            .collect()
    }

    fn write_clamped_var_messages(&mut self, v: VarId, state: u32) {
        let card = self.graph.cardinality(v) as usize;
        for e in self.var_out_edges(v) {
            let off = self.edge_offset[e];
            for i in 0..card {
                self.vf[off + i] = if i == state as usize { 0.0 } else { LOG_ZERO };
            }
        }
    }

    /// Marginal of one variable from the current messages.
    pub fn var_marginal(&self, v: VarId) -> Vec<f64> {
        if let Some(s) = self.clamps[v.idx()] {
            let mut p = vec![0.0; self.graph.cardinality(v) as usize];
            p[s as usize] = 1.0;
            return p;
        }
        let card = self.graph.cardinality(v) as usize;
        let mut log_b = vec![0.0f64; card];
        for e in self.var_out_edges(v) {
            let r = self.edge_range(e);
            for (b, x) in log_b.iter_mut().zip(&self.fv[r]) {
                *b += *x;
            }
        }
        to_probs(&log_b)
    }

    /// All marginals.
    pub fn marginals(&self) -> Marginals {
        Marginals {
            probs: (0..self.graph.num_vars())
                .map(|v| self.var_marginal(VarId(v as u32)))
                .collect(),
        }
    }

    /// Belief (probability per flat configuration) of factor `f`:
    /// `b_f(c) ∝ φ(c) · Π_v m_{v→f}(c_v)`. Used to compute the feature
    /// expectations of the learning gradient (paper Eq. 6).
    pub fn factor_belief(&self, params: &Params, f: FactorId) -> Vec<f64> {
        let fd = &self.graph.factors[f.idx()];
        let arity = fd.vars.len();
        let edge_start = self.factor_edge_start[f.idx()] as usize;
        let offsets: Vec<usize> =
            (edge_start..edge_start + arity).map(|e| self.edge_offset[e]).collect();
        let mut states = vec![0u32; arity];
        let mut log_b = Vec::with_capacity(fd.table_size);
        for flat in 0..fd.table_size {
            let mut lp = fd.potential.log_phi(params, flat);
            for (k, &st) in states.iter().enumerate() {
                lp += self.vf[offsets[k] + st as usize];
            }
            log_b.push(lp);
            for (k, st) in states.iter_mut().enumerate() {
                *st += 1;
                if (*st as usize) < self.graph.cardinality(fd.vars[k]) as usize {
                    break;
                }
                *st = 0;
            }
        }
        let z = logsumexp(&log_b);
        if z == f64::NEG_INFINITY {
            let u = 1.0 / fd.table_size as f64;
            return vec![u; fd.table_size];
        }
        log_b.into_iter().map(|x| (x - z).exp()).collect()
    }
}

/// Reusable per-thread scratch buffers for the factor sweep.
#[derive(Default)]
struct Scratch {
    edge_offsets: Vec<usize>,
    states: Vec<u32>,
}

/// One-shot convenience: build an engine, run, return marginals + stats.
pub fn run_lbp(
    graph: &FactorGraph,
    params: &Params,
    clamps: &[(VarId, u32)],
    opts: &LbpOptions,
) -> (Marginals, LbpResult) {
    let mut eng = LbpEngine::new(graph);
    for &(v, s) in clamps {
        eng.set_clamp(v, Some(s));
    }
    let res = eng.run(params, opts);
    (eng.marginals(), res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Potential;

    /// Single binary variable with a unary factor preferring state 1 with
    /// log-odds 1.0: P(1) = sigmoid(1.0).
    #[test]
    fn single_unary_factor_matches_sigmoid() {
        let mut g = FactorGraph::new();
        let v = g.add_var(2);
        let mut params = Params::new();
        let grp = params.add_group_with(vec![1.0]);
        g.add_factor(&[v], Potential::Scores { group: grp, scores: vec![0.0, 1.0] }, 0);
        let opts = LbpOptions { tol: 1e-12, max_iters: 500, ..Default::default() };
        let (m, res) = run_lbp(&g, &params, &[], &opts);
        assert!(res.converged);
        let expected = 1.0 / (1.0 + (-1.0f64).exp());
        assert!((m.prob(v, 1) - expected).abs() < 1e-9, "{}", m.prob(v, 1));
    }

    /// Two-variable attractive chain: exact marginals by hand.
    #[test]
    fn two_var_chain_exact() {
        let mut g = FactorGraph::new();
        let a = g.add_var(2);
        let b = g.add_var(2);
        let mut params = Params::new();
        let unary = params.add_group_with(vec![1.0]);
        let pair = params.add_group_with(vec![1.0]);
        // φ_a = [0, 0.8] (prefers 1), pairwise agreement potential.
        g.add_factor(&[a], Potential::Scores { group: unary, scores: vec![0.0, 0.8] }, 0);
        g.add_factor(
            &[a, b],
            Potential::Scores { group: pair, scores: vec![0.5, 0.0, 0.0, 0.5] },
            0,
        );
        let opts = LbpOptions { tol: 1e-12, max_iters: 500, ..Default::default() };
        let (m, res) = run_lbp(&g, &params, &[], &opts);
        assert!(res.converged);
        // Brute force: p(a,b) ∝ exp(0.8·[a=1]) · exp(0.5·[a=b])
        let w = |a_s: usize, b_s: usize| -> f64 {
            ((0.8 * a_s as f64) + if a_s == b_s { 0.5 } else { 0.0 }).exp()
        };
        let z: f64 = [w(0, 0), w(0, 1), w(1, 0), w(1, 1)].iter().sum();
        let pa1 = (w(1, 0) + w(1, 1)) / z;
        let pb1 = (w(0, 1) + w(1, 1)) / z;
        assert!((m.prob(a, 1) - pa1).abs() < 1e-6, "{} vs {pa1}", m.prob(a, 1));
        assert!((m.prob(b, 1) - pb1).abs() < 1e-6);
    }

    #[test]
    fn clamping_propagates_through_chain() {
        let mut g = FactorGraph::new();
        let a = g.add_var(2);
        let b = g.add_var(2);
        let mut params = Params::new();
        let grp = params.add_group_with(vec![2.0]);
        // Strong agreement factor.
        g.add_factor(
            &[a, b],
            Potential::Scores { group: grp, scores: vec![1.0, 0.0, 0.0, 1.0] },
            0,
        );
        let (m, _) = run_lbp(&g, &params, &[(a, 1)], &LbpOptions::default());
        assert_eq!(m.prob(a, 1), 1.0);
        assert!(m.prob(b, 1) > 0.8, "{}", m.prob(b, 1));
    }

    #[test]
    fn disconnected_variable_is_uniform() {
        let mut g = FactorGraph::new();
        let a = g.add_var(3);
        let _b = g.add_var(2);
        let mut params = Params::new();
        let grp = params.add_group_with(vec![1.0]);
        g.add_factor(&[a], Potential::Scores { group: grp, scores: vec![0.0, 0.0, 1.0] }, 0);
        let (m, _) = run_lbp(&g, &params, &[], &LbpOptions::default());
        let pb = m.of(VarId(1));
        assert!((pb[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn phased_schedule_matches_synchronous_fixed_point() {
        // On a tree both schedules converge to the same (exact) marginals.
        let mut g = FactorGraph::new();
        let a = g.add_var_with_class(2, 0);
        let b = g.add_var_with_class(2, 1);
        let c = g.add_var_with_class(2, 1);
        let mut params = Params::new();
        let g1 = params.add_group_with(vec![1.0]);
        let g2 = params.add_group_with(vec![0.7]);
        g.add_factor(&[a], Potential::Scores { group: g1, scores: vec![0.0, 0.6] }, 0);
        g.add_factor(&[a, b], Potential::Scores { group: g2, scores: vec![1.0, 0.0, 0.0, 1.0] }, 1);
        g.add_factor(&[a, c], Potential::Scores { group: g2, scores: vec![0.0, 1.0, 1.0, 0.0] }, 2);
        let sync = run_lbp(&g, &params, &[], &LbpOptions::default()).0;
        let phased = run_lbp(
            &g,
            &params,
            &[],
            &LbpOptions {
                schedule: Schedule::Phased {
                    factor_phases: vec![vec![0], vec![1], vec![2]],
                    var_phases: vec![vec![0], vec![1]],
                },
                ..LbpOptions::default()
            },
        )
        .0;
        for v in [a, b, c] {
            assert!((sync.prob(v, 1) - phased.prob(v, 1)).abs() < 1e-6);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        // A ring of 40 binary variables with mixed potentials.
        let mut g = FactorGraph::new();
        let vars: Vec<VarId> = (0..40).map(|_| g.add_var(2)).collect();
        let mut params = Params::new();
        let grp = params.add_group_with(vec![0.9]);
        for i in 0..40 {
            let j = (i + 1) % 40;
            let scores = if i % 2 == 0 {
                vec![0.7, 0.1, 0.1, 0.7]
            } else {
                vec![0.1, 0.6, 0.6, 0.1]
            };
            g.add_factor(&[vars[i], vars[j]], Potential::Scores { group: grp, scores }, 0);
        }
        let serial = run_lbp(&g, &params, &[], &LbpOptions { threads: 1, ..Default::default() }).0;
        let parallel = run_lbp(
            &g,
            &params,
            &[],
            &LbpOptions { threads: 4, ..Default::default() },
        )
        .0;
        for &v in &vars {
            assert!(
                (serial.prob(v, 1) - parallel.prob(v, 1)).abs() < 1e-12,
                "thread count changed the result"
            );
        }
    }

    #[test]
    fn factor_belief_sums_to_one() {
        let mut g = FactorGraph::new();
        let a = g.add_var(2);
        let b = g.add_var(3);
        let mut params = Params::new();
        let grp = params.add_group_with(vec![1.0]);
        let f = g.add_factor(
            &[a, b],
            Potential::Scores { group: grp, scores: vec![0.1, 0.4, 0.3, 0.2, 0.0, 0.5] },
            0,
        );
        let mut eng = LbpEngine::new(&g);
        eng.run(&params, &LbpOptions::default());
        let belief = eng.factor_belief(&params, f);
        assert_eq!(belief.len(), 6);
        assert!((belief.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(belief.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn map_state_picks_argmax() {
        let mut g = FactorGraph::new();
        let v = g.add_var(3);
        let mut params = Params::new();
        let grp = params.add_group_with(vec![1.0]);
        g.add_factor(&[v], Potential::Scores { group: grp, scores: vec![0.0, 2.0, 1.0] }, 0);
        let (m, _) = run_lbp(&g, &params, &[], &LbpOptions::default());
        assert_eq!(m.map_state(v), 1);
    }

    #[test]
    fn contradictory_strong_evidence_does_not_nan() {
        let mut g = FactorGraph::new();
        let a = g.add_var(2);
        let b = g.add_var(2);
        let mut params = Params::new();
        let grp = params.add_group_with(vec![50.0]);
        // Disagreement factor, but both ends clamped to the same state.
        g.add_factor(
            &[a, b],
            Potential::Scores { group: grp, scores: vec![0.0, 1.0, 1.0, 0.0] },
            0,
        );
        let (m, _) = run_lbp(&g, &params, &[(a, 0), (b, 0)], &LbpOptions::default());
        for v in [a, b] {
            for &p in m.of(v) {
                assert!(p.is_finite());
            }
        }
    }
}
