//! Exact inference by brute-force enumeration.
//!
//! Only feasible for tiny graphs; used to validate LBP in unit and
//! property tests (LBP is exact on trees and approximate on loopy
//! graphs).

use crate::graph::{FactorGraph, VarId};
use crate::lbp::Marginals;
use crate::logspace::logsumexp;
use crate::params::Params;

/// Hard cap on the joint configuration count (2^22) to catch accidental
/// use on large graphs.
const MAX_CONFIGS: usize = 1 << 22;

/// Compute exact marginals, optionally conditioning on clamped variables.
///
/// # Panics
/// Panics if the joint space exceeds [`MAX_CONFIGS`] configurations.
pub fn exact_marginals(graph: &FactorGraph, params: &Params, clamps: &[(VarId, u32)]) -> Marginals {
    let n = graph.num_vars();
    let cards: Vec<usize> = (0..n).map(|v| graph.cardinality(VarId(v as u32)) as usize).collect();
    let total: usize = cards
        .iter()
        .try_fold(1usize, |acc, &c| {
            let next = acc.checked_mul(c)?;
            (next <= MAX_CONFIGS).then_some(next)
        })
        .expect("joint space too large for exact inference");

    let clamp_map: std::collections::HashMap<usize, u32> =
        clamps.iter().map(|&(v, s)| (v.idx(), s)).collect();

    // Accumulate log-weights per (var, state).
    let mut state = vec![0u32; n];
    let mut log_weights: Vec<Vec<Vec<f64>>> = (0..n).map(|v| vec![Vec::new(); cards[v]]).collect();
    let mut all_logw = Vec::with_capacity(total);
    'outer: for _ in 0..total {
        // Respect clamps: skip configurations contradicting evidence.
        let consistent = clamp_map.iter().all(|(&v, &s)| state[v] == s);
        if consistent {
            let mut lw = 0.0;
            for (fi, fd) in graph.factors.iter().enumerate() {
                let flat = graph.flat_index(
                    crate::graph::FactorId(fi as u32),
                    &fd.vars.iter().map(|v| state[v.idx()]).collect::<Vec<_>>(),
                );
                lw += fd.potential.log_phi(params, flat);
            }
            for v in 0..n {
                log_weights[v][state[v] as usize].push(lw);
            }
            all_logw.push(lw);
        }
        // Advance mixed-radix counter.
        for v in 0..n {
            state[v] += 1;
            if (state[v] as usize) < cards[v] {
                continue 'outer;
            }
            state[v] = 0;
        }
        break;
    }
    let log_z = logsumexp(&all_logw);
    let probs: Vec<Vec<f64>> = log_weights
        .into_iter()
        .map(|per_state| {
            per_state
                .into_iter()
                .map(|lws| {
                    if lws.is_empty() || log_z == f64::NEG_INFINITY {
                        0.0
                    } else {
                        (logsumexp(&lws) - log_z).exp()
                    }
                })
                .collect()
        })
        .collect();
    Marginals::from_probs(probs)
}

impl Marginals {
    /// Construct from raw probability vectors (used by [`exact_marginals`]
    /// and tests).
    pub fn from_probs(probs: Vec<Vec<f64>>) -> Self {
        // Private-field constructor lives here to keep `lbp` the owner of
        // the type's invariants.
        Self::new_internal(probs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Potential;
    use crate::lbp::{run_lbp, LbpOptions};

    #[test]
    fn exact_matches_lbp_on_tree() {
        let mut g = FactorGraph::new();
        let a = g.add_var(2);
        let b = g.add_var(3);
        let c = g.add_var(2);
        let mut params = Params::new();
        let g1 = params.add_group_with(vec![1.3]);
        g.add_factor(&[a], Potential::Scores { group: g1, scores: vec![0.2, 0.9] }, 0);
        g.add_factor(
            &[a, b],
            Potential::Scores { group: g1, scores: vec![0.3, 0.1, 0.0, 0.7, 0.2, 0.5] },
            0,
        );
        g.add_factor(
            &[b, c],
            Potential::Scores { group: g1, scores: vec![0.0, 0.4, 0.9, 0.2, 0.6, 0.1] },
            0,
        );
        let exact = exact_marginals(&g, &params, &[]);
        let (lbp, res) =
            run_lbp(&g, &params, &[], &LbpOptions { tol: 1e-10, ..Default::default() });
        assert!(res.converged);
        for v in [a, b, c] {
            for s in 0..g.cardinality(v) {
                assert!(
                    (exact.prob(v, s) - lbp.prob(v, s)).abs() < 1e-6,
                    "var {v:?} state {s}: exact {} lbp {}",
                    exact.prob(v, s),
                    lbp.prob(v, s)
                );
            }
        }
    }

    #[test]
    fn exact_respects_clamps() {
        let mut g = FactorGraph::new();
        let a = g.add_var(2);
        let b = g.add_var(2);
        let mut params = Params::new();
        let g1 = params.add_group_with(vec![1.0]);
        g.add_factor(&[a, b], Potential::Scores { group: g1, scores: vec![1.0, 0.0, 0.0, 1.0] }, 0);
        let m = exact_marginals(&g, &params, &[(a, 1)]);
        assert_eq!(m.prob(a, 1), 1.0);
        assert!(m.prob(b, 1) > 0.5);
    }

    #[test]
    fn marginals_sum_to_one() {
        let mut g = FactorGraph::new();
        let a = g.add_var(4);
        let mut params = Params::new();
        let g1 = params.add_group_with(vec![1.0]);
        g.add_factor(&[a], Potential::Scores { group: g1, scores: vec![0.0, 1.0, 2.0, 3.0] }, 0);
        let m = exact_marginals(&g, &params, &[]);
        let total: f64 = m.of(a).iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
