//! Criterion microbenchmarks for the performance-critical kernels:
//! similarity signals, LBP sweeps (dense vs sparse U4 tables, serial vs
//! parallel), HAC, blocking and candidate generation, plus an end-to-end
//! pipeline scaling series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jocl_core::signals::build_signals;
use jocl_core::{block_pairs, build_graph, Jocl, JoclConfig};
use jocl_datagen::reverb45k_like;
use jocl_embed::SgnsOptions;
use jocl_fg::lbp::LbpEngine;
use jocl_fg::{FactorGraph, LbpOptions, Params, Potential, VarId};
use jocl_kb::{CandidateGen, CandidateOptions};
use jocl_text::sim::{jaro_winkler, levenshtein_sim, ngram_jaccard};
use jocl_text::IdfIndex;
use std::hint::black_box;

fn bench_similarities(c: &mut Criterion) {
    let idf = IdfIndex::build([
        "university of maryland",
        "university of virginia",
        "the oracle of omaha",
        "warren buffett",
    ]);
    let a = "the university of maryland at college park";
    let b = "university of maryland";
    let mut g = c.benchmark_group("similarity");
    g.bench_function("idf_token_overlap", |bench| {
        bench.iter(|| black_box(idf.sim(black_box(a), black_box(b))))
    });
    g.bench_function("jaro_winkler", |bench| {
        bench.iter(|| black_box(jaro_winkler(black_box(a), black_box(b))))
    });
    g.bench_function("levenshtein", |bench| {
        bench.iter(|| black_box(levenshtein_sim(black_box(a), black_box(b))))
    });
    g.bench_function("ngram_jaccard", |bench| {
        bench.iter(|| black_box(ngram_jaccard(black_box(a), black_box(b))))
    });
    g.finish();
}

/// LBP over a ring with ternary factors: dense Scores vs sparse TwoLevel.
fn bench_lbp_tables(c: &mut Criterion) {
    let build = |sparse: bool| -> (FactorGraph, Params) {
        let mut g = FactorGraph::new();
        let mut params = Params::new();
        let grp = params.add_group_with(vec![1.5]);
        let k = 8u32;
        let vars: Vec<VarId> = (0..60).map(|_| g.add_var(k)).collect();
        for w in vars.windows(3) {
            let size = (k * k * k) as usize;
            let high: Vec<u32> = (0..size as u32).filter(|x| x % 37 == 0).collect();
            let pot = if sparse {
                Potential::two_level(grp, size, high, 0.9, 0.1)
            } else {
                let mut scores = vec![0.1; size];
                for &h in &high {
                    scores[h as usize] = 0.9;
                }
                Potential::Scores { group: grp, scores }
            };
            g.add_factor(&[w[0], w[1], w[2]], pot, 0);
        }
        (g, params)
    };
    let opts = LbpOptions { max_iters: 5, ..Default::default() };
    let mut group = c.benchmark_group("lbp_u4_table");
    for (name, sparse) in [("dense", false), ("sparse_two_level", true)] {
        let (g, params) = build(sparse);
        group.bench_function(name, |bench| {
            bench.iter(|| {
                let mut eng = LbpEngine::new(&g);
                black_box(eng.run(&params, &opts))
            })
        });
    }
    group.finish();
}

fn bench_lbp_threads(c: &mut Criterion) {
    let mut g = FactorGraph::new();
    let mut params = Params::new();
    let grp = params.add_group_with(vec![1.0]);
    let vars: Vec<VarId> = (0..400).map(|_| g.add_var(4)).collect();
    for i in 0..400 {
        let j = (i + 1) % 400;
        let scores: Vec<f64> = (0..16).map(|x| (x % 5) as f64 * 0.2).collect();
        g.add_factor(&[vars[i], vars[j]], Potential::Scores { group: grp, scores }, 0);
    }
    let mut group = c.benchmark_group("lbp_threads");
    for threads in [1usize, 4] {
        let opts = LbpOptions { max_iters: 10, threads, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(threads), &opts, |bench, opts| {
            bench.iter(|| {
                let mut eng = LbpEngine::new(&g);
                black_box(eng.run(&params, opts))
            })
        });
    }
    group.finish();
}

fn bench_pipeline_stages(c: &mut Criterion) {
    let dataset = reverb45k_like(5, 0.005);
    let signals = build_signals(
        &dataset.okb,
        &dataset.ckb,
        &dataset.ppdb,
        &dataset.corpus,
        &SgnsOptions { dim: 24, epochs: 2, ..Default::default() },
    );
    let config = JoclConfig::default();
    let mut group = c.benchmark_group("pipeline_stages");
    group.sample_size(10);
    group.bench_function("blocking", |bench| {
        bench.iter(|| black_box(block_pairs(&dataset.okb, &signals, &config)))
    });
    let blocking = block_pairs(&dataset.okb, &signals, &config);
    group.bench_function("graph_build", |bench| {
        bench.iter(|| {
            black_box(build_graph(
                &dataset.okb,
                &dataset.ckb,
                &signals,
                &blocking,
                &config,
            ))
        })
    });
    group.bench_function("candidate_generation", |bench| {
        let gen = CandidateGen::new(&dataset.ckb, CandidateOptions::default());
        bench.iter(|| {
            for (_, t) in dataset.okb.triples().take(50) {
                black_box(gen.entity_candidates(&t.subject));
            }
        })
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("jocl_end_to_end");
    group.sample_size(10);
    for scale in [0.002f64, 0.005] {
        let dataset = reverb45k_like(5, scale);
        let signals = build_signals(
            &dataset.okb,
            &dataset.ckb,
            &dataset.ppdb,
            &dataset.corpus,
            &SgnsOptions { dim: 24, epochs: 2, ..Default::default() },
        );
        let input = jocl_core::JoclInput {
            okb: &dataset.okb,
            ckb: &dataset.ckb,
            ppdb: &dataset.ppdb,
            corpus: &dataset.corpus,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}triples", dataset.okb.len())),
            &(),
            |bench, ()| {
                let config = JoclConfig { train_epochs: 0, ..Default::default() };
                bench.iter(|| black_box(Jocl::new(config.clone()).run_with_signals(input, &signals, None)))
            },
        );
    }
    group.finish();
}

fn bench_hac(c: &mut Criterion) {
    use jocl_cluster::{hac_threshold, Linkage};
    let n = 2000usize;
    let edges: Vec<(usize, usize, f64)> = (0..n)
        .flat_map(|i| {
            [(i, (i + 1) % n, 0.8), (i, (i + 7) % n, 0.4)]
        })
        .collect();
    let mut group = c.benchmark_group("hac");
    for linkage in [Linkage::Single, Linkage::Average, Linkage::Complete] {
        group.bench_function(format!("{linkage:?}"), |bench| {
            bench.iter(|| black_box(hac_threshold(n, &edges, linkage, 0.6)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_similarities,
    bench_lbp_tables,
    bench_lbp_threads,
    bench_pipeline_stages,
    bench_end_to_end,
    bench_hac
);
criterion_main!(benches);
