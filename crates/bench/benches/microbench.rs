//! Criterion microbenchmarks for the performance-critical kernels:
//! similarity signals, LBP sweeps (dense vs sparse U4 tables, serial vs
//! parallel), HAC, blocking and candidate generation, plus an end-to-end
//! pipeline scaling series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jocl_core::signals::build_signals;
use jocl_core::{block_pairs, build_graph, Jocl, JoclConfig};
use jocl_datagen::reverb45k_like;
use jocl_embed::SgnsOptions;
use jocl_fg::lbp::LbpEngine;
use jocl_fg::{FactorGraph, LbpOptions, Params, Potential, VarId};
use jocl_kb::{CandidateGen, CandidateOptions};
use jocl_text::sim::{jaro_winkler, levenshtein_sim, ngram_jaccard};
use jocl_text::IdfIndex;
use std::hint::black_box;

fn bench_similarities(c: &mut Criterion) {
    let idf = IdfIndex::build([
        "university of maryland",
        "university of virginia",
        "the oracle of omaha",
        "warren buffett",
    ]);
    let a = "the university of maryland at college park";
    let b = "university of maryland";
    let mut g = c.benchmark_group("similarity");
    g.bench_function("idf_token_overlap", |bench| {
        bench.iter(|| black_box(idf.sim(black_box(a), black_box(b))))
    });
    g.bench_function("jaro_winkler", |bench| {
        bench.iter(|| black_box(jaro_winkler(black_box(a), black_box(b))))
    });
    g.bench_function("levenshtein", |bench| {
        bench.iter(|| black_box(levenshtein_sim(black_box(a), black_box(b))))
    });
    g.bench_function("ngram_jaccard", |bench| {
        bench.iter(|| black_box(ngram_jaccard(black_box(a), black_box(b))))
    });
    g.finish();
}

/// LBP over a ring with ternary factors: dense Scores vs sparse TwoLevel.
fn bench_lbp_tables(c: &mut Criterion) {
    let build = |sparse: bool| -> (FactorGraph, Params) {
        let mut g = FactorGraph::new();
        let mut params = Params::new();
        let grp = params.add_group_with(vec![1.5]);
        let k = 8u32;
        let vars: Vec<VarId> = (0..60).map(|_| g.add_var(k)).collect();
        for w in vars.windows(3) {
            let size = (k * k * k) as usize;
            let high: Vec<u32> = (0..size as u32).filter(|x| x % 37 == 0).collect();
            let pot = if sparse {
                Potential::two_level(grp, size, high, 0.9, 0.1)
            } else {
                let mut scores = vec![0.1; size];
                for &h in &high {
                    scores[h as usize] = 0.9;
                }
                Potential::Scores { group: grp, scores }
            };
            g.add_factor(&[w[0], w[1], w[2]], pot, 0);
        }
        (g, params)
    };
    let opts = LbpOptions { max_iters: 5, ..Default::default() };
    let mut group = c.benchmark_group("lbp_u4_table");
    for (name, sparse) in [("dense", false), ("sparse_two_level", true)] {
        let (g, params) = build(sparse);
        group.bench_function(name, |bench| {
            bench.iter(|| {
                let mut eng = LbpEngine::new(&g);
                black_box(eng.run(&params, &opts))
            })
        });
    }
    group.finish();
}

/// A ring of `n` 4-state variables with dense pairwise factors.
fn build_ring(n: usize) -> (FactorGraph, Params) {
    let mut g = FactorGraph::new();
    let mut params = Params::new();
    let grp = params.add_group_with(vec![1.0]);
    let vars: Vec<VarId> = (0..n).map(|_| g.add_var(4)).collect();
    for i in 0..n {
        let j = (i + 1) % n;
        let scores: Vec<f64> = (0..16).map(|x| (x % 5) as f64 * 0.2).collect();
        g.add_factor(&[vars[i], vars[j]], Potential::Scores { group: grp, scores }, 0);
    }
    (g, params)
}

/// Median wall-clock of `f` over `runs` executions (after one warm-up).
fn median_time(runs: usize, mut f: impl FnMut()) -> std::time::Duration {
    f();
    let mut samples: Vec<std::time::Duration> = (0..runs)
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

fn bench_lbp_threads(c: &mut Criterion) {
    let (g, params) = build_ring(400);
    let mut group = c.benchmark_group("lbp_threads");
    for threads in [1usize, 4] {
        let opts = LbpOptions { max_iters: 10, threads, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(threads), &opts, |bench, opts| {
            bench.iter(|| {
                let mut eng = LbpEngine::new(&g);
                black_box(eng.run(&params, opts))
            })
        });
    }
    group.finish();

    // Crossover sweep: the smallest ring where the pooled 4-thread sweep
    // first beats serial. Under `cargo test --benches` each size runs
    // once (smoke); under `cargo bench` medians are measured.
    let bench_mode = std::env::args().any(|a| a == "--bench");
    let runs = if bench_mode { 7 } else { 1 };
    let hw = jocl_exec::available_parallelism();
    let mut crossover = None;
    println!("\ngroup: lbp_threads_crossover (hardware threads: {hw})");
    for n in [50usize, 100, 200, 400, 800, 1600] {
        let (g, params) = build_ring(n);
        let time_with = |threads: usize| {
            let opts = LbpOptions { max_iters: 10, threads, ..Default::default() };
            median_time(runs, || {
                let mut eng = LbpEngine::new(&g);
                black_box(eng.run(&params, &opts));
            })
        };
        let t1 = time_with(1);
        let t4 = time_with(4);
        println!("  {n:>5} vars: serial {t1:>12?}  pooled(4) {t4:>12?}");
        if crossover.is_none() && t4 < t1 {
            crossover = Some(n);
        }
    }
    match crossover {
        Some(n) => println!("  crossover: parallel first wins at {n} vars"),
        None => println!(
            "  crossover: none in range (expected on {hw}-thread hardware: the pool \
             clamps to the machine, so pooled == serial)"
        ),
    }
}

/// Synchronous sweeps vs residual-scheduled message passing over
/// unevenly-converging graphs (a strong evidence head driving a long
/// weakly-coupled tail — the shape where priority scheduling pays):
/// wall-clock for both modes, plus a message-update crossover sweep over
/// graph sizes printing the counter ratio the scale CI gate relies on.
fn bench_lbp_schedule(c: &mut Criterion) {
    use jocl_fg::ScheduleMode;
    // A "comet": a dense clique head (strong potentials, slow to settle)
    // towing a long chain tail (settles after a few updates). Synchronous
    // sweeps keep re-updating the tail; residual scheduling stops
    // touching it once its residuals die.
    let build_comet = |n_tail: usize| -> (FactorGraph, Params) {
        let mut g = FactorGraph::new();
        let mut params = Params::new();
        let grp = params.add_group_with(vec![1.2]);
        let head: Vec<VarId> = (0..6).map(|_| g.add_var(4)).collect();
        for i in 0..head.len() {
            for j in i + 1..head.len() {
                let scores: Vec<f64> = (0..16).map(|x| ((x % 5) as f64) * 0.3).collect();
                g.add_factor(&[head[i], head[j]], Potential::Scores { group: grp, scores }, 0);
            }
        }
        let mut prev = head[0];
        for k in 0..n_tail {
            let v = g.add_var(4);
            let w = 0.05 + 0.1 * ((k % 3) as f64);
            let scores: Vec<f64> = (0..16).map(|x| if x % 5 == 0 { w } else { 0.0 }).collect();
            g.add_factor(&[prev, v], Potential::Scores { group: grp, scores }, 0);
            prev = v;
        }
        (g, params)
    };
    let opts =
        |mode: ScheduleMode| LbpOptions { max_iters: 50, tol: 1e-6, mode, ..Default::default() };
    let mut group = c.benchmark_group("lbp_schedule");
    for (name, mode) in
        [("synchronous", ScheduleMode::Synchronous), ("residual", ScheduleMode::Residual)]
    {
        let (g, params) = build_comet(400);
        let opts = opts(mode);
        group.bench_function(name, |bench| {
            bench.iter(|| {
                let mut eng = LbpEngine::new(&g);
                black_box(eng.run(&params, &opts))
            })
        });
    }
    group.finish();

    // Crossover sweep on the message-update counter: deterministic (no
    // timing noise), so it prints under `cargo test --benches` too.
    println!("\ngroup: lbp_schedule_crossover (message updates, sync vs residual)");
    for n_tail in [50usize, 100, 200, 400, 800] {
        let (g, params) = build_comet(n_tail);
        let run_mode = |mode: ScheduleMode| {
            let mut eng = LbpEngine::new(&g);
            eng.run(&params, &opts(mode))
        };
        let sync = run_mode(ScheduleMode::Synchronous);
        let residual = run_mode(ScheduleMode::Residual);
        let ratio = sync.message_updates as f64 / residual.message_updates.max(1) as f64;
        println!(
            "  tail {n_tail:>4}: sync {:>9} updates ({} iters)  residual {:>9} updates ({} sweep-eq)  ratio {ratio:.2}x",
            sync.message_updates, sync.iterations, residual.message_updates, residual.iterations
        );
    }
}

/// Persistent pool vs a fresh pool per sweep — the amortization the
/// `jocl_exec` crate exists for. Uses exactly 4 workers (no hardware
/// clamp) so the spawn cost is visible on any machine.
fn bench_exec_pool(c: &mut Criterion) {
    use std::sync::atomic::{AtomicU64, Ordering};
    let sweeps = 16usize;
    let sweep = |pool: &jocl_exec::Pool<'_>, sink: &AtomicU64| {
        pool.chunked_for_each(4096, 256, |_, range| {
            let mut acc = 0u64;
            for i in range {
                acc = acc.wrapping_add((i as u64).wrapping_mul(0x9E3779B97F4A7C15));
            }
            sink.fetch_add(acc, Ordering::Relaxed);
        });
    };
    let mut group = c.benchmark_group("exec_pool");
    group.bench_function("pool_reused_across_sweeps", |bench| {
        bench.iter(|| {
            let sink = AtomicU64::new(0);
            jocl_exec::with_pool(4, |pool| {
                for _ in 0..sweeps {
                    sweep(pool, &sink);
                }
            });
            black_box(sink.into_inner())
        })
    });
    group.bench_function("pool_spawned_per_sweep", |bench| {
        bench.iter(|| {
            let sink = AtomicU64::new(0);
            for _ in 0..sweeps {
                jocl_exec::with_pool(4, |pool| sweep(pool, &sink));
            }
            black_box(sink.into_inner())
        })
    });
    group.finish();
}

fn bench_pipeline_stages(c: &mut Criterion) {
    let dataset = reverb45k_like(5, 0.005);
    let signals = build_signals(
        &dataset.okb,
        &dataset.ckb,
        &dataset.ppdb,
        &dataset.corpus,
        &SgnsOptions { dim: 24, epochs: 2, ..Default::default() },
    );
    let config = JoclConfig::default();
    let mut group = c.benchmark_group("pipeline_stages");
    group.sample_size(10);
    group.bench_function("blocking", |bench| {
        bench.iter(|| black_box(block_pairs(&dataset.okb, &signals, &config)))
    });
    let blocking = block_pairs(&dataset.okb, &signals, &config);
    group.bench_function("graph_build", |bench| {
        bench.iter(|| {
            black_box(build_graph(&dataset.okb, &dataset.ckb, &signals, &blocking, &config))
        })
    });
    // Shard-count sweep: the built graph is identical for any value;
    // the timing shows how construction scales with workers (flat on a
    // 1-thread machine, where `build_threads` clamps to the hardware).
    for build_threads in [1usize, 2, 4, 8] {
        let sharded = JoclConfig { build_threads, ..config.clone() };
        group.bench_with_input(
            BenchmarkId::new("graph_build_shards", build_threads),
            &sharded,
            |bench, cfg| {
                bench.iter(|| {
                    black_box(build_graph(&dataset.okb, &dataset.ckb, &signals, &blocking, cfg))
                })
            },
        );
    }
    group.bench_function("candidate_generation", |bench| {
        let gen = CandidateGen::new(&dataset.ckb, CandidateOptions::default());
        bench.iter(|| {
            for (_, t) in dataset.okb.triples().take(50) {
                black_box(gen.entity_candidates(&t.subject));
            }
        })
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("jocl_end_to_end");
    group.sample_size(10);
    for scale in [0.002f64, 0.005] {
        let dataset = reverb45k_like(5, scale);
        let signals = build_signals(
            &dataset.okb,
            &dataset.ckb,
            &dataset.ppdb,
            &dataset.corpus,
            &SgnsOptions { dim: 24, epochs: 2, ..Default::default() },
        );
        let input = jocl_core::JoclInput {
            okb: &dataset.okb,
            ckb: &dataset.ckb,
            ppdb: &dataset.ppdb,
            corpus: &dataset.corpus,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}triples", dataset.okb.len())),
            &(),
            |bench, ()| {
                let config = JoclConfig { train_epochs: 0, ..Default::default() };
                bench.iter(|| {
                    black_box(Jocl::new(config.clone()).run_with_signals(input, &signals, None))
                })
            },
        );
    }
    group.finish();
}

/// Warm delta ingestion vs cold rebuild (ROADMAP "streaming ingestion").
/// Wall-clock benches on the shared microbench world, then the
/// deterministic message-update comparison at `JOCL_SCALE` (default
/// 0.02 — the scale the `stream_scale` CI gate asserts ≥3× on).
fn bench_delta_ingest(c: &mut Criterion) {
    use jocl_bench::runner::env_scale;
    use jocl_core::{IncrementalJocl, ScheduleMode};
    use jocl_kb::{Okb, Triple};

    let prepare = |scale: f64, seed: u64| {
        let dataset = reverb45k_like(seed, scale);
        let triples: Vec<Triple> = dataset.okb.triples().map(|(_, t)| t.clone()).collect();
        let mut union = Okb::new();
        for t in &triples {
            union.ingest_triple(t.clone());
        }
        let signals = build_signals(
            &union,
            &dataset.ckb,
            &dataset.ppdb,
            &dataset.corpus,
            &SgnsOptions { dim: 24, epochs: 2, seed, ..Default::default() },
        );
        (dataset, triples, union, signals)
    };
    let mut config = JoclConfig { train_epochs: 0, ..Default::default() };
    config.lbp.mode = ScheduleMode::Residual;

    let (dataset, triples, union, signals) = prepare(0.005, 5);
    let tail = 24usize.min(triples.len() / 4).max(1);
    let split = triples.len() - tail;
    let mut warm_base = IncrementalJocl::new(config.clone(), &dataset.ckb, &signals);
    warm_base.apply_delta(&triples[..split]);
    let mut group = c.benchmark_group("delta_ingest");
    group.sample_size(10);
    group.bench_function(format!("warm_delta_{tail}"), |bench| {
        bench.iter(|| {
            // Fork the warm session so every iteration ingests the same
            // delta against identical warm state.
            let mut session = warm_base.clone();
            black_box(session.apply_delta(&triples[split..]))
        })
    });
    let input = jocl_core::JoclInput {
        okb: &union,
        ckb: &dataset.ckb,
        ppdb: &dataset.ppdb,
        corpus: &dataset.corpus,
    };
    group.bench_function("cold_rebuild", |bench| {
        bench.iter(|| black_box(Jocl::new(config.clone()).run_with_signals(input, &signals, None)))
    });
    group.finish();

    // Deterministic update-count comparison (no timing noise) at the
    // acceptance scale; prints under `cargo test --benches` too.
    let scale = env_scale();
    let (dataset, triples, union, signals) = prepare(scale, 42);
    let input = jocl_core::JoclInput {
        okb: &union,
        ckb: &dataset.ckb,
        ppdb: &dataset.ppdb,
        corpus: &dataset.corpus,
    };
    let cold = Jocl::new(config.clone())
        .run_with_signals(input, &signals, None)
        .diagnostics
        .lbp
        .message_updates;
    println!(
        "\ngroup: delta_ingest_updates (scale {scale}, residual; warm delta vs cold rebuild = \
         {cold} updates)"
    );
    for tail in [16usize, 48, triples.len() / 4] {
        if tail == 0 || tail >= triples.len() {
            continue;
        }
        let split = triples.len() - tail;
        let mut session = IncrementalJocl::new(config.clone(), &dataset.ckb, &signals);
        session.apply_delta(&triples[..split]);
        let out = session.apply_delta(&triples[split..]);
        let updates = out.stats.lbp.message_updates;
        println!(
            "  tail {tail:>4} triples: warm {updates:>9} updates  ({:.2}x fewer than cold)",
            cold as f64 / updates.max(1) as f64
        );
    }
}

fn bench_hac(c: &mut Criterion) {
    use jocl_cluster::{hac_threshold, Linkage};
    let n = 2000usize;
    let edges: Vec<(usize, usize, f64)> =
        (0..n).flat_map(|i| [(i, (i + 1) % n, 0.8), (i, (i + 7) % n, 0.4)]).collect();
    let mut group = c.benchmark_group("hac");
    for linkage in [Linkage::Single, Linkage::Average, Linkage::Complete] {
        group.bench_function(format!("{linkage:?}"), |bench| {
            bench.iter(|| black_box(hac_threshold(n, &edges, linkage, 0.6)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_similarities,
    bench_lbp_tables,
    bench_lbp_threads,
    bench_lbp_schedule,
    bench_exec_pool,
    bench_pipeline_stages,
    bench_end_to_end,
    bench_delta_ingest,
    bench_hac
);
criterion_main!(benches);
