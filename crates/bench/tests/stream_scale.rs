//! Acceptance gate for streaming delta ingestion at CI scale: replaying
//! the `JOCL_SCALE=0.02` world in `JOCL_STREAM_BATCH` (default 4)
//! arrival batches must
//!
//! 1. decode **identically** to the one-shot batch pipeline on the union
//!    (the gold correctness property of `jocl_core::incremental`);
//! 2. pay fewer total message updates than re-running the batch pipeline
//!    cold once per arrival batch — measured honestly, on the *growing
//!    prefixes* a cold-per-arrival deployment would actually process;
//! 3. converge a serving-sized warm delta (the last 48 triples against
//!    an otherwise warm session) with **≥3× fewer** message updates than
//!    one cold rebuild — the `delta_ingest` headline claim.
//!
//! On bit-exactness: warm and cold runs agree on *touched* regions only
//! to within the LBP tolerance, so exact decode equality relies on no
//! marginal sitting inside that band of a decode threshold. That holds
//! for the pinned CI seed/scale (and a 200-case randomized stress run);
//! if a future seed ever trips it, the decode disagreement will name
//! the near-threshold pair — tighten `lbp.tol` rather than loosening
//! the assertion, since bit-identical decode *is* the acceptance
//! criterion.
//!
//! Guarded behind `--ignored` like `bin_smoke` (it builds experiment-
//! scale graphs):
//!
//! ```text
//! JOCL_SCALE=0.02 cargo test -p jocl_bench --release --test stream_scale -- --ignored
//! ```

use jocl_bench::runner::{env_scale, env_schedule_mode, env_seed, env_stream_batches};
use jocl_core::signals::build_signals;
use jocl_core::{IncrementalJocl, Jocl, JoclConfig, JoclInput};
use jocl_datagen::reverb45k_like;
use jocl_embed::SgnsOptions;
use jocl_kb::{Okb, Triple};

#[test]
#[ignore = "experiment-scale graphs; run with -- --ignored"]
fn streamed_replay_matches_batch_with_warm_savings() {
    let scale = env_scale();
    let seed = env_seed();
    let batches = env_stream_batches();
    let mode = env_schedule_mode();

    let dataset = reverb45k_like(seed, scale);
    let triples: Vec<Triple> = dataset.okb.triples().map(|(_, t)| t.clone()).collect();
    let mut union = Okb::new();
    for t in &triples {
        union.ingest_triple(t.clone());
    }
    let signals = build_signals(
        &union,
        &dataset.ckb,
        &dataset.ppdb,
        &dataset.corpus,
        &SgnsOptions { dim: 24, epochs: 2, seed, ..Default::default() },
    );
    let mut config = JoclConfig { train_epochs: 0, ..Default::default() };
    config.lbp.mode = mode;
    // As in `schedule_scale`: give both engines an iteration budget under
    // which they *genuinely* converge at this scale (the paper-default 20
    // leaves synchronous sweeps residual-limited), so convergence and
    // update counts are measured at the same fixed point.
    config.lbp.max_iters = 100;

    let mut session = IncrementalJocl::new(config.clone(), &dataset.ckb, &signals);
    let chunk = triples.len().div_ceil(batches.max(1)).max(1);
    let mut last = None;
    let mut prefix_ends: Vec<usize> = Vec::new();
    for delta in triples.chunks(chunk) {
        let out = session.apply_delta(delta);
        assert!(out.output.diagnostics.lbp.converged, "every delta must converge");
        prefix_ends.push(prefix_ends.last().copied().unwrap_or(0) + delta.len());
        last = Some(out);
    }
    let last = last.expect("at least one batch");

    // What a cold-per-arrival deployment actually pays: one batch run on
    // each growing prefix of the arrival sequence.
    let cold_per_arrival: u64 = prefix_ends
        .iter()
        .map(|&end| {
            let mut prefix = Okb::new();
            for t in &triples[..end] {
                prefix.ingest_triple(t.clone());
            }
            let input = JoclInput {
                okb: &prefix,
                ckb: &dataset.ckb,
                ppdb: &dataset.ppdb,
                corpus: &dataset.corpus,
            };
            Jocl::new(config.clone())
                .run_with_signals(input, &signals, None)
                .diagnostics
                .lbp
                .message_updates
        })
        .sum();

    let input =
        JoclInput { okb: &union, ckb: &dataset.ckb, ppdb: &dataset.ppdb, corpus: &dataset.corpus };
    let batch = Jocl::new(config.clone()).run_with_signals(input, &signals, None);
    assert!(batch.diagnostics.lbp.converged, "batch reference must converge");
    let cold = batch.diagnostics.lbp.message_updates;
    println!(
        "streamed total {} vs cold-per-arrival (growing prefixes) {} ({:.2}x); final warm \
         delta {} vs one cold rebuild of the union {} ({:.2}x)",
        session.total_message_updates,
        cold_per_arrival,
        cold_per_arrival as f64 / session.total_message_updates.max(1) as f64,
        last.stats.lbp.message_updates,
        cold,
        cold as f64 / last.stats.lbp.message_updates.max(1) as f64,
    );

    // 1. Bit-identical decode on the union.
    assert_eq!(last.output.np_links, batch.np_links, "np links diverged from batch");
    assert_eq!(last.output.rp_links, batch.rp_links, "rp links diverged from batch");
    assert_eq!(
        last.output.np_clustering.assignment(),
        batch.np_clustering.assignment(),
        "np clustering diverged from batch"
    );
    assert_eq!(
        last.output.rp_clustering.assignment(),
        batch.rp_clustering.assignment(),
        "rp clustering diverged from batch"
    );

    // 2. Streaming beats re-running the batch job per arrival batch,
    //    against the honest baseline (cold runs on the growing
    //    prefixes, not batches × the full-union cost).
    assert!(
        session.total_message_updates < cold_per_arrival,
        "streamed replay ({}) must pay fewer updates than {batches} cold per-arrival runs ({})",
        session.total_message_updates,
        cold_per_arrival
    );

    // 3. The warm-start headline (residual mode; synchronous warm sweeps
    //    still help but are not the headline path): a serving-sized
    //    arrival — the last 48 triples against a session warmed on
    //    everything before them — converges with ≥3× fewer updates than
    //    the cold rebuild of the whole union.
    if mode == jocl_core::ScheduleMode::Residual && triples.len() > 96 {
        let split = triples.len() - 48;
        let mut warm = IncrementalJocl::new(config.clone(), &dataset.ckb, &signals);
        let chunk = split.div_ceil(batches.max(1)).max(1);
        for delta in triples[..split].chunks(chunk) {
            warm.apply_delta(delta);
        }
        let tail = warm.apply_delta(&triples[split..]);
        println!(
            "serving-sized tail delta ({} triples): {} updates vs cold rebuild {} ({:.2}x)",
            48,
            tail.stats.lbp.message_updates,
            cold,
            cold as f64 / tail.stats.lbp.message_updates.max(1) as f64,
        );
        assert_eq!(tail.output.np_links, batch.np_links, "tail-delta decode diverged");
        assert!(
            tail.stats.lbp.message_updates * 3 <= cold,
            "a warm serving-sized delta must be ≥3x cheaper than a cold rebuild: {} vs {}",
            tail.stats.lbp.message_updates,
            cold
        );
    }
}
