//! Acceptance gate for the observability plane at CI scale
//! (`JOCL_SCALE=0.02`):
//!
//! 1. **Metrics don't change the answer** — the end-to-end decode is
//!    bitwise identical with `JOCL_METRICS` off and on (links,
//!    clustering assignments, message-update counts).
//! 2. **Metrics are ≤2% overhead** — on `lbp_sweep` and `end_to_end`,
//!    the median of paired on/off wall-clock ratios must stay within
//!    2% (each pair runs both arms back-to-back in alternating order,
//!    so machine drift cancels within the pair).
//! 3. **The exposition is byte-stable** — two `metrics` reads of an
//!    idle writer return byte-identical `metrics.v1` frames: a metrics
//!    read records nothing, not even about itself.
//!
//! Guarded behind `--ignored` like the other scale gates; CI runs it
//! under both `JOCL_SCHEDULE` modes:
//!
//! ```text
//! JOCL_SCALE=0.02 cargo test -p jocl_bench --release --test obs_scale -- --ignored
//! ```

use jocl_bench::{env_scale, env_schedule_mode, env_seed};
use jocl_core::signals::build_signals;
use jocl_core::{Jocl, JoclConfig, JoclInput};
use jocl_datagen::reverb45k_like;
use jocl_embed::SgnsOptions;
use jocl_fg::lbp::LbpEngine;
use jocl_fg::{FactorGraph, LbpOptions, Params, Potential, VarId};
use jocl_serve::{parse_command, Engine, EngineOptions, FeedRole, Response, ServeConfig};
use std::hint::black_box;
use std::time::Instant;

/// A ring of `n` 4-state variables with dense pairwise factors — the
/// same pure-LBP workload the bench-regression gate times, big enough
/// here that a median is meaningful against 2%.
fn build_ring(n: usize) -> (FactorGraph, Params) {
    let mut g = FactorGraph::new();
    let mut params = Params::new();
    let grp = params.add_group_with(vec![1.0]);
    let vars: Vec<VarId> = (0..n).map(|_| g.add_var(4)).collect();
    for i in 0..n {
        let j = (i + 1) % n;
        let scores: Vec<f64> = (0..16).map(|x| (x % 5) as f64 * 0.2).collect();
        g.add_factor(&[vars[i], vars[j]], Potential::Scores { group: grp, scores }, 0);
    }
    (g, params)
}

fn median<T: Copy + PartialOrd>(mut v: Vec<T>) -> T {
    v.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Paired A/B samples: each pair runs `f` with metrics off and on
/// back-to-back (order alternating per pair, so warm-cache bias hits
/// both arms equally), giving per-pair ratios in which machine drift —
/// thermal, noisy neighbors, scheduler jitter — cancels. Only the
/// recording cost separates the arms within a pair.
fn ab_pairs(samples: usize, mut f: impl FnMut()) -> Vec<(u64, u64)> {
    let mut time = |enabled: bool| {
        jocl_obs::set_metrics_enabled(enabled);
        let t = Instant::now();
        f();
        t.elapsed().as_nanos() as u64
    };
    // One warm-up per arm so neither pays first-touch costs.
    time(false);
    time(true);
    let pairs = (0..samples)
        .map(|i| {
            if i % 2 == 0 {
                let off = time(false);
                (off, time(true))
            } else {
                let on = time(true);
                (time(false), on)
            }
        })
        .collect();
    jocl_obs::set_metrics_enabled(true);
    pairs
}

/// Gate on the median of per-pair on/off ratios — pairing makes the
/// estimator robust to the drift that tears apart two independent
/// medians on a busy machine.
fn assert_overhead(name: &str, pairs: &[(u64, u64)]) {
    let off_ns = median(pairs.iter().map(|&(off, _)| off).collect());
    let on_ns = median(pairs.iter().map(|&(_, on)| on).collect());
    let ratio = median(pairs.iter().map(|&(off, on)| on as f64 / off.max(1) as f64).collect());
    println!("  {name:<12} off {off_ns:>12} ns  on {on_ns:>12} ns  (paired {ratio:.4}x)");
    assert!(
        ratio <= 1.02,
        "{name}: metrics-on runs exceed 2% over paired metrics-off runs ({ratio:.4}x median \
         ratio; medians off {off_ns} ns, on {on_ns} ns) — a recording site grew a lock or an \
         allocation"
    );
}

/// One sequential test: the arms flip the process-global metrics switch,
/// so interleaving with other tests would tear the A/B comparison.
#[test]
#[ignore = "observability gate at CI scale; run with -- --ignored"]
fn metrics_are_free_deterministic_and_byte_stable() {
    let seed = env_seed();
    let scale = env_scale();
    let mode = env_schedule_mode();
    let dataset = reverb45k_like(seed, scale);
    let signals = build_signals(
        &dataset.okb,
        &dataset.ckb,
        &dataset.ppdb,
        &dataset.corpus,
        &SgnsOptions { dim: 24, epochs: 2, seed, ..Default::default() },
    );
    let mut config = JoclConfig { train_epochs: 0, ..Default::default() };
    config.lbp.mode = mode;
    let input = JoclInput {
        okb: &dataset.okb,
        ckb: &dataset.ckb,
        ppdb: &dataset.ppdb,
        corpus: &dataset.corpus,
    };

    // 1. Bitwise decode parity with recording off vs on.
    jocl_obs::set_metrics_enabled(false);
    let off = Jocl::new(config.clone()).run_with_signals(input, &signals, None);
    jocl_obs::set_metrics_enabled(true);
    let on = Jocl::new(config.clone()).run_with_signals(input, &signals, None);
    assert_eq!(off.np_links, on.np_links, "np links must not depend on metrics ({mode:?})");
    assert_eq!(off.rp_links, on.rp_links, "rp links must not depend on metrics ({mode:?})");
    assert_eq!(
        off.np_clustering.assignment(),
        on.np_clustering.assignment(),
        "np clustering must not depend on metrics ({mode:?})"
    );
    assert_eq!(
        off.rp_clustering.assignment(),
        on.rp_clustering.assignment(),
        "rp clustering must not depend on metrics ({mode:?})"
    );
    assert_eq!(
        off.diagnostics.lbp.message_updates, on.diagnostics.lbp.message_updates,
        "the sweep trajectory must not depend on metrics ({mode:?})"
    );

    // 2. ≤2% overhead on the two hottest instrumented paths.
    println!("metrics overhead ({mode:?}):");
    let (g, params) = build_ring(600);
    let opts = LbpOptions { max_iters: 10, mode, ..Default::default() };
    let pairs = ab_pairs(21, || {
        let mut eng = LbpEngine::new(&g);
        black_box(eng.run(&params, &opts));
    });
    assert_overhead("lbp_sweep", &pairs);
    let pairs = ab_pairs(5, || {
        black_box(Jocl::new(config.clone()).run_with_signals(input, &signals, None));
    });
    assert_overhead("end_to_end", &pairs);

    // 3. Byte-identical metrics frames across two reads of an idle
    // writer (request counters, latency samples, gauges — all of it).
    let dir = std::env::temp_dir().join(format!("jocl-obs-scale-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let pool: Vec<jocl_kb::Triple> = dataset.okb.triples().map(|(_, t)| t.clone()).collect();
    let mut engine = Engine::open(
        config,
        ServeConfig::builder().compact_threshold(f64::INFINITY).build(),
        &dataset.ckb,
        &signals,
        pool,
        EngineOptions {
            snapshot_path: dir.join("session.snap"),
            feed: FeedRole::Writer(dir.join("feed.log")),
        },
    );
    let mut exec = |line: &str| match engine.execute_caught(&parse_command(line).unwrap().unwrap())
    {
        Response::Ok(lines) => lines,
        Response::Err(e) => panic!("{line:?} failed: {e}"),
    };
    exec("ingest 48");
    exec("stats");
    let first = exec("metrics");
    let second = exec("metrics");
    assert_eq!(
        first, second,
        "two metrics reads of an idle writer must be byte-identical — \
         a metrics read recorded something"
    );
    let parsed = jocl_serve::parse_metrics(&first).expect("well-formed metrics frame");
    for required in
        ["jocl_requests_total{plane=\"writer\"}", "jocl_lbp_sweep_ns", "jocl_graph_build_ns"]
    {
        assert!(
            parsed.iter().any(|(k, _)| k.starts_with(required)),
            "metrics inventory is missing {required}: {:?}",
            parsed.iter().map(|(k, _)| k).take(20).collect::<Vec<_>>()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
