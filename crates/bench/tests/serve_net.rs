//! Acceptance gate for the networked serving plane at CI scale
//! (`JOCL_SCALE=0.02`):
//!
//! 1. **Replica parity is bitwise** — a read replica warm-booted from
//!    the writer's snapshot + cursor sidecar, following the writer's
//!    delta-feed log through an interleaved add/retract/revise stream
//!    (manual compaction included), exports state byte-identical to the
//!    writer's.
//! 2. **Warm catch-up ≥3× cheaper than a cold rebuild** — the message
//!    updates the replica spends replaying the log tail vs a
//!    from-scratch batch run on the writer's live triples (residual
//!    mode — the serving path; synchronous must merely not exceed it).
//! 3. **Concurrent readers never block on writes** — with a large
//!    ingest in flight on the socket front-end, reader connections
//!    complete `stats`/`query` from the published view before the write
//!    lands, and a malformed-command fuzz stream only ever produces
//!    typed `ERR` lines: the server survives, the session stays
//!    consistent.
//!
//! Guarded behind `--ignored` like the other scale gates; CI runs it
//! under both `JOCL_SCHEDULE` modes:
//!
//! ```text
//! JOCL_SCALE=0.02 cargo test -p jocl_bench --release --test serve_net -- --ignored
//! ```

use jocl_bench::{env_scale, env_schedule_mode, env_seed};
use jocl_core::signals::build_signals;
use jocl_core::{Jocl, JoclConfig, JoclInput, ScheduleMode, Signals};
use jocl_datagen::reverb45k_like;
use jocl_embed::SgnsOptions;
use jocl_kb::{Ckb, Okb, Triple};
use jocl_serve::{
    parse_command, Engine, EngineOptions, FeedRole, ListenAddr, Response, ServeConfig,
};
use std::io::{BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::{Barrier, Mutex, OnceLock};
use std::time::{Duration, Instant};

struct World {
    ckb: Ckb,
    signals: Signals,
    pool: Vec<Triple>,
    ppdb: jocl_rules::ParaphraseStore,
    corpus: Vec<Vec<String>>,
}

/// One CI-scale world, built once and shared by both gate tests (the
/// signals are the frozen shared serving resource, as everywhere).
fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let seed = env_seed();
        let dataset = reverb45k_like(seed, env_scale());
        let mut union = Okb::new();
        for (_, t) in dataset.okb.triples() {
            union.ingest_triple(t.clone());
        }
        let pool: Vec<Triple> = union.triples().map(|(_, t)| t.clone()).collect();
        assert!(pool.len() > 96, "gate needs a non-trivial world (JOCL_SCALE too small?)");
        let signals = build_signals(
            &union,
            &dataset.ckb,
            &dataset.ppdb,
            &dataset.corpus,
            &SgnsOptions { dim: 24, epochs: 2, seed, ..Default::default() },
        );
        World { ckb: dataset.ckb, signals, pool, ppdb: dataset.ppdb, corpus: dataset.corpus }
    })
}

fn gate_config() -> JoclConfig {
    let mut config = JoclConfig { train_epochs: 0, ..Default::default() };
    config.lbp.mode = env_schedule_mode();
    // As in the other serving gates: a budget under which both engines
    // genuinely converge at this scale.
    config.lbp.max_iters = 100;
    config
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jocl-serve-net-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn open_writer(dir: &Path) -> Engine<'static> {
    let w = world();
    Engine::open(
        gate_config(),
        ServeConfig::builder().compact_threshold(f64::INFINITY).build(),
        &w.ckb,
        &w.signals,
        w.pool.clone(),
        EngineOptions {
            snapshot_path: dir.join("session.snap"),
            feed: FeedRole::Writer(dir.join("feed.log")),
        },
    )
}

fn ok(engine: &mut Engine<'static>, line: &str) -> Vec<String> {
    match engine.execute_caught(&parse_command(line).unwrap().unwrap()) {
        Response::Ok(lines) => lines,
        Response::Err(e) => panic!("{line:?} failed: {e}"),
    }
}

#[test]
#[ignore = "experiment-scale graphs; run with -- --ignored"]
fn replica_parity_is_bitwise_and_catchup_beats_cold_rebuild() {
    let w = world();
    let mode = env_schedule_mode();
    let dir = temp_dir("parity");
    let mut writer = open_writer(&dir);
    let n = w.pool.len();

    // Phase 1 — the writer's history up to the snapshot: everything but
    // a 48-triple tail, in two batches, plus a retraction.
    ok(&mut writer, &format!("ingest {}", n / 2));
    ok(&mut writer, &format!("ingest {}", n - 48 - n / 2));
    ok(&mut writer, "retract #3");
    ok(&mut writer, "snapshot");
    let snapshot_offset = writer.feed_offset();

    // Phase 2 — the post-snapshot tail the replica's warm catch-up is
    // priced on: the last 48 arrivals interleaved with retract/revise.
    // (Deliberately no `compact` here — a manual compaction is a cold
    // rebuild by definition, replayed and parity-checked in phase 3.)
    ok(&mut writer, &format!("ingest {n}"));
    ok(&mut writer, "retract #10");
    ok(&mut writer, "revise #11 => Gate Corp | be audit by | The Gate");
    ok(&mut writer, "add Gate Corp | headquarter in | Gate City");

    // Replica warm-boot from the snapshot + cursor sidecar.
    let mut replica = Engine::open_replica(
        gate_config(),
        ServeConfig::builder().compact_threshold(f64::INFINITY).build(),
        &w.ckb,
        &w.signals,
        w.pool.clone(),
        EngineOptions {
            snapshot_path: dir.join("session.snap"),
            feed: FeedRole::Follower(dir.join("feed.log")),
        },
    )
    .expect("replica warm-boot");
    assert_eq!(replica.feed_offset(), snapshot_offset, "cursor sidecar pinned the log offset");

    let updates_at_boot = replica.session().session().total_message_updates;
    let t0 = Instant::now();
    let applied = replica.poll_feed().expect("catch up");
    let catchup_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(applied, 4, "one log entry per post-snapshot write batch");
    assert_eq!(replica.poll_feed().expect("idempotent"), 0);
    let catchup = replica.session().session().total_message_updates - updates_at_boot;

    // 1. Bitwise parity with the writer, full exported state (messages
    //    included) — the replication log preserved batch boundaries, so
    //    the replica took the writer's exact warm-start path.
    let writer_bytes = jocl_serve::snapshot::session_to_bytes(writer.session_mut().session_mut());
    let replica_bytes = jocl_serve::snapshot::session_to_bytes(replica.session_mut().session_mut());
    assert_eq!(
        writer_bytes, replica_bytes,
        "replica state must be bitwise-identical to the writer after catch-up"
    );

    // 2. Warm catch-up vs a cold rebuild of the same final state.
    let live = writer.session().live_view().expect("writer decoded");
    let survivors: Vec<Triple> =
        live.triples.iter().map(|&t| writer.session().session().okb().triple(t).clone()).collect();
    let mut cold_okb = Okb::new();
    for t in &survivors {
        cold_okb.ingest_triple(t.clone());
    }
    let input = JoclInput { okb: &cold_okb, ckb: &w.ckb, ppdb: &w.ppdb, corpus: &w.corpus };
    let t0 = Instant::now();
    let batch = Jocl::new(gate_config()).run_with_signals(input, &w.signals, None);
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cold = batch.diagnostics.lbp.message_updates;
    println!(
        "replica catch-up: {applied} log entries, {catchup} msg updates in {catchup_ms:.1} ms vs \
         cold rebuild of {} live triples: {cold} msg updates in {cold_ms:.1} ms ({:.2}x updates)",
        survivors.len(),
        cold as f64 / catchup.max(1) as f64,
    );
    // As in serve_scale: residual is the serving path and carries the
    // headline; the synchronous warm path helps but is not asserted.
    if mode == ScheduleMode::Residual {
        assert!(
            catchup * 3 <= cold,
            "warm replica catch-up must be ≥3x cheaper than a cold rebuild: {catchup} vs {cold}"
        );
    }

    // Phase 3 — a manual compaction and a post-compact add on the
    // writer; the replica replays both (triple ids remap wholesale
    // across a compaction, so parity here proves the `Compact` log
    // entry lands at the same point in both streams).
    ok(&mut writer, "compact");
    ok(&mut writer, "add Late Arrival | land after | The Compaction");
    assert_eq!(replica.poll_feed().expect("catch up"), 2);
    let writer_bytes = jocl_serve::snapshot::session_to_bytes(writer.session_mut().session_mut());
    let replica_bytes = jocl_serve::snapshot::session_to_bytes(replica.session_mut().session_mut());
    assert_eq!(
        writer_bytes, replica_bytes,
        "replica must stay bitwise-identical across a replayed compaction"
    );
    std::fs::remove_dir_all(&dir).ok();
}

struct Client {
    reader: BufReader<UnixStream>,
    stream: UnixStream,
}

impl Client {
    fn connect(path: &Path) -> Self {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match UnixStream::connect(path) {
                Ok(stream) => {
                    let reader = BufReader::new(stream.try_clone().unwrap());
                    return Self { reader, stream };
                }
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20))
                }
                Err(e) => panic!("cannot connect to {}: {e}", path.display()),
            }
        }
    }

    fn request(&mut self, line: &str) -> Response {
        writeln!(self.stream, "{line}").unwrap();
        self.stream.flush().unwrap();
        Response::read_from(&mut self.reader).unwrap()
    }

    fn ok(&mut self, line: &str) -> Vec<String> {
        match self.request(line) {
            Response::Ok(lines) => lines,
            Response::Err(e) => panic!("{line:?} failed: {e}"),
        }
    }
}

#[test]
#[ignore = "experiment-scale graphs; run with -- --ignored"]
fn socket_readers_never_block_and_fuzz_never_kills_the_server() {
    let w = world();
    let dir = temp_dir("socket");
    let engine = open_writer(&dir);
    let addr = ListenAddr::Unix(dir.join("serve.sock"));
    let sock = dir.join("serve.sock");
    let stop = AtomicBool::new(false);
    let n = w.pool.len();

    let readers = 4;
    let barrier = Barrier::new(readers + 1);
    let write_done = Mutex::new(None::<Instant>);
    std::thread::scope(|s| {
        let server = s.spawn(|| {
            jocl_serve::net::serve(engine, &addr, &stop, &mut |_| {}).expect("server runs")
        });
        let mut writer = Client::connect(&sock);
        writer.ok("ingest 32");

        // The in-flight write: the rest of the pool in one delta.
        let barrier_ref = &barrier;
        let write_done_ref = &write_done;
        s.spawn(move || {
            barrier_ref.wait();
            writer.ok(&format!("ingest {n}"));
            *write_done_ref.lock().unwrap() = Some(Instant::now());
        });
        let mut handles = Vec::new();
        for _ in 0..readers {
            let sock = &sock;
            handles.push(s.spawn(move || {
                let mut c = Client::connect(sock);
                barrier_ref.wait();
                for _ in 0..25 {
                    let st = c.ok("stats");
                    jocl_serve::parse_stats(&st[0]).expect("well-formed stats line");
                    c.ok("query the gate");
                }
                Instant::now()
            }));
        }
        let finished: Vec<Instant> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let done = loop {
            if let Some(t) = *write_done.lock().unwrap() {
                break t;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        for f in &finished {
            assert!(
                *f < done,
                "a reader was blocked behind the in-flight write ({:?} after it)",
                f.duration_since(done)
            );
        }

        // Malformed-command fuzz against the live server: typed ERRs
        // only, session stays consistent, server stays up.
        let mut c = Client::connect(&sock);
        let before = c.ok("stats");
        for g in [
            "ingest",
            "ingest NaN",
            "ingest -1",
            "add",
            "add a|b",
            "add  | x | y",
            "retract",
            "retract #",
            "retract #999999",
            "revise a | b | c",
            "revise #0 => ",
            "query",
            "stats --verbose",
            "snapshot\u{0}withnul",
            "compact --force",
            "shutdown please",
            "DROP TABLE triples;",
            "\u{1b}[31mgarbage\u{1b}[0m",
        ] {
            match c.request(g) {
                Response::Err(_) => {}
                Response::Ok(lines) => panic!("{g:?} unexpectedly succeeded: {lines:?}"),
            }
        }
        let after = c.ok("stats");
        // Uptime and request/error totals advance with every request —
        // that's the point of the observability plane — so the "state
        // unchanged" claim is made on the parsed session fields, with
        // the registry-sourced fields normalized out.
        let normalize = |lines: &[String]| {
            let mut s = jocl_serve::parse_stats(&lines[0]).expect("well-formed stats line");
            s.uptime_ms = 0;
            s.requests = 0;
            s.errors = 0;
            s.last_compaction_ms = 0;
            s
        };
        assert_eq!(normalize(&before), normalize(&after), "fuzz must not change session state");

        c.ok("shutdown");
        let (engine, stats) = server.join().expect("server thread");
        assert!(stats.requests > 0 && stats.errors >= 18, "{stats:?}");
        assert_eq!(engine.session().session().len(), n, "the full pool landed despite the fuzz");
    });
    std::fs::remove_dir_all(&dir).ok();
}
