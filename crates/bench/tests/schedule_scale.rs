//! Acceptance gate for residual-scheduled message passing at CI scale:
//! on the `JOCL_SCALE=0.02` factor graph (the scale-smoke world, ≈900
//! triples), residual mode must reach the same marginals as the
//! synchronous sweeps within tolerance while performing **at least 2×
//! fewer message updates**.
//!
//! Guarded behind `--ignored` like `bin_smoke` (it builds a full
//! experiment-scale graph):
//!
//! ```text
//! cargo test -p jocl_bench --release --test schedule_scale -- --ignored
//! ```

use jocl_core::config::paper_schedule;
use jocl_core::signals::build_signals;
use jocl_core::{block_pairs, build_graph, JoclConfig, ScheduleMode};
use jocl_datagen::reverb45k_like;
use jocl_embed::SgnsOptions;
use jocl_fg::lbp::LbpEngine;
use jocl_fg::VarId;

#[test]
#[ignore = "experiment-scale graph; run with -- --ignored"]
fn residual_halves_message_updates_at_scale_002() {
    let scale = jocl_bench::env_scale();
    let seed = jocl_bench::env_seed();
    let dataset = reverb45k_like(seed, scale);
    let signals = build_signals(
        &dataset.okb,
        &dataset.ckb,
        &dataset.ppdb,
        &dataset.corpus,
        &SgnsOptions { dim: 24, epochs: 2, seed, ..Default::default() },
    );
    let config = JoclConfig::default();
    let blocking = block_pairs(&dataset.okb, &signals, &config);
    let plan = build_graph(&dataset.okb, &dataset.ckb, &signals, &blocking, &config);
    println!(
        "graph at scale {scale}: {} vars, {} factors, total table size {}",
        plan.graph.num_vars(),
        plan.graph.num_factors(),
        plan.graph.total_table_size()
    );

    // The pipeline's inference settings (paper schedule, default damping),
    // with the tolerance tightened a notch so "same fixed point within
    // tol" is measured where both engines genuinely converge.
    let mut opts = config.lbp.clone();
    opts.schedule = paper_schedule();
    opts.tol = 1e-4;
    opts.max_iters = 100;

    let mut sync_engine = LbpEngine::new(&plan.graph);
    opts.mode = ScheduleMode::Synchronous;
    let sync = sync_engine.run(&plan.params, &opts);
    let sync_marginals = sync_engine.marginals();

    let mut residual_engine = LbpEngine::new(&plan.graph);
    opts.mode = ScheduleMode::Residual;
    let residual = residual_engine.run(&plan.params, &opts);
    let residual_marginals = residual_engine.marginals();

    println!(
        "synchronous: {} updates over {} iters (converged={})",
        sync.message_updates, sync.iterations, sync.converged
    );
    println!(
        "residual:    {} updates ({} sweep-eq, converged={})",
        residual.message_updates, residual.iterations, residual.converged
    );
    assert!(sync.converged, "synchronous LBP must converge at this scale");
    assert!(residual.converged, "residual LBP must converge at this scale");

    // Same fixed point: every marginal entry within a small multiple of
    // the convergence tolerance.
    let mut max_diff = 0.0f64;
    for v in 0..plan.graph.num_vars() {
        let v = VarId(v as u32);
        for (a, b) in sync_marginals.of(v).iter().zip(residual_marginals.of(v)) {
            max_diff = max_diff.max((a - b).abs());
        }
    }
    println!("max marginal difference: {max_diff:.3e}");
    assert!(max_diff < 1e-2, "residual mode diverged from the synchronous fixed point: {max_diff}");

    // The headline claim: ≥2× fewer message updates.
    assert!(
        residual.message_updates * 2 <= sync.message_updates,
        "residual mode must halve message updates at scale {scale}: {} vs {}",
        residual.message_updates,
        sync.message_updates
    );
}
