//! Acceptance gate for the durable serving subsystem at CI scale
//! (`JOCL_SCALE=0.02`):
//!
//! 1. **Retraction parity** — after warm-retracting the 48 most recent
//!    arrivals from a fully-ingested session, the live view decodes
//!    **identically** to a from-scratch batch run on the survivors.
//!    Retracting recent arrivals keeps the parity exact even under the
//!    default blocking caps: the caps were consumed by the prefix both
//!    runs share (see the `jocl_core::incremental` module docs).
//! 2. **Warm retract ≥3× cheaper than a cold rebuild** of the
//!    survivors (message updates, residual mode — the serving path).
//! 3. **Snapshot restore ≥10× cheaper than a cold build** (wall-clock:
//!    deserializing the warm session vs re-running blocking + graph
//!    build + LBP), resuming with bitwise-identical state.
//!
//! Guarded behind `--ignored` like the other scale gates:
//!
//! ```text
//! JOCL_SCALE=0.02 cargo test -p jocl_bench --release --test serve_scale -- --ignored
//! ```

use jocl_bench::runner::{env_scale, env_schedule_mode, env_seed, env_stream_batches};
use jocl_core::signals::build_signals;
use jocl_core::{DeltaOp, Jocl, JoclConfig, JoclInput, ScheduleMode};
use jocl_datagen::reverb45k_like;
use jocl_embed::SgnsOptions;
use jocl_kb::{Okb, Triple};
use jocl_serve::{snapshot, ServeConfig, ServeSession};
use std::time::Instant;

#[test]
#[ignore = "experiment-scale graphs; run with -- --ignored"]
fn retraction_parity_with_warm_and_restore_savings() {
    let scale = env_scale();
    let seed = env_seed();
    let mode = env_schedule_mode();
    let batches = env_stream_batches();

    let dataset = reverb45k_like(seed, scale);
    // Distinct arrival sequence (the session dedups on ingest).
    let mut union = Okb::new();
    for (_, t) in dataset.okb.triples() {
        union.ingest_triple(t.clone());
    }
    let triples: Vec<Triple> = union.triples().map(|(_, t)| t.clone()).collect();
    assert!(triples.len() > 96, "gate needs a non-trivial world (JOCL_SCALE too small?)");
    let signals = build_signals(
        &union,
        &dataset.ckb,
        &dataset.ppdb,
        &dataset.corpus,
        &SgnsOptions { dim: 24, epochs: 2, seed, ..Default::default() },
    );
    let mut config = JoclConfig { train_epochs: 0, ..Default::default() };
    config.lbp.mode = mode;
    // As in stream_scale: a budget under which both engines genuinely
    // converge at this scale.
    config.lbp.max_iters = 100;

    // Ingest everything in arrival batches, then warm-retract the tail.
    let mut session = ServeSession::open(
        config.clone(),
        ServeConfig::builder().compact_threshold(f64::INFINITY).build(),
        &dataset.ckb,
        &signals,
    );
    let chunk = triples.len().div_ceil(batches.max(1)).max(1);
    for delta in triples.chunks(chunk) {
        let out = session.add_all(delta);
        assert!(out.output.diagnostics.lbp.converged, "ingest deltas must converge");
    }
    let split = triples.len() - 48;
    let retract_ops: Vec<DeltaOp> =
        triples[split..].iter().cloned().map(DeltaOp::Retract).collect();
    let t0 = Instant::now();
    let retract_out = session.apply(&retract_ops);
    let retract_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(retract_out.output.diagnostics.lbp.converged, "retract delta must converge");
    assert_eq!(retract_out.stats.retracted, 48);
    assert!(retract_out.stats.tombstoned_factors > 0);

    // Reference: cold batch run on the survivors (same frozen signals).
    let mut survivors = Okb::new();
    for t in &triples[..split] {
        survivors.ingest_triple(t.clone());
    }
    let input = JoclInput {
        okb: &survivors,
        ckb: &dataset.ckb,
        ppdb: &dataset.ppdb,
        corpus: &dataset.corpus,
    };
    let t0 = Instant::now();
    let batch = Jocl::new(config.clone()).run_with_signals(input, &signals, None);
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(batch.diagnostics.lbp.converged, "batch reference must converge");
    let (warm, cold) =
        (retract_out.stats.lbp.message_updates, batch.diagnostics.lbp.message_updates);
    println!(
        "warm retract of 48 triples: {warm} msg updates in {retract_ms:.1} ms vs cold rebuild \
         of the {} survivors: {cold} msg updates in {cold_ms:.1} ms ({:.2}x updates)",
        split,
        cold as f64 / warm.max(1) as f64,
    );

    // 1. Decode parity on the live view.
    let view = session.live_view().expect("session decoded");
    assert_eq!(view.triples.len(), split, "live view covers exactly the survivors");
    assert_eq!(view.np_links, batch.np_links, "np links diverged from batch on survivors");
    assert_eq!(view.rp_links, batch.rp_links, "rp links diverged from batch on survivors");
    assert_eq!(
        view.np_clustering.assignment(),
        batch.np_clustering.assignment(),
        "np clustering diverged from batch on survivors"
    );
    assert_eq!(
        view.rp_clustering.assignment(),
        batch.rp_clustering.assignment(),
        "rp clustering diverged from batch on survivors"
    );

    // 2. Warm-retract savings (residual mode — the serving path; the
    //    synchronous warm path helps but is not the headline).
    if mode == ScheduleMode::Residual {
        assert!(
            warm * 3 <= cold,
            "a warm 48-triple retraction must be ≥3x cheaper than a cold rebuild: \
             {warm} vs {cold}"
        );
    }

    // 3. Snapshot → restore ≥10× cheaper than the cold build, resuming
    //    bitwise-identically.
    let dir = std::env::temp_dir().join(format!("jocl-serve-scale-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("session.snap");
    let bytes_written = session.snapshot_to(&path).unwrap();
    let t0 = Instant::now();
    let restored = snapshot::load_session(&path, config.clone(), &dataset.ckb, &signals).unwrap();
    let restore_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "snapshot {} bytes; restore {restore_ms:.1} ms vs cold build {cold_ms:.1} ms ({:.1}x)",
        bytes_written,
        cold_ms / restore_ms.max(1e-9),
    );
    let mut restored = restored;
    assert_eq!(
        restored.export_state(),
        session.session_mut().export_state(),
        "restored session must be bitwise identical"
    );
    assert!(
        restore_ms * 10.0 <= cold_ms,
        "restoring a warm snapshot must be ≥10x cheaper than a cold build: \
         {restore_ms:.1} ms vs {cold_ms:.1} ms"
    );
    std::fs::remove_dir_all(&dir).ok();
}
