//! Memory acceptance gates for the compressed storage layer.
//!
//! Two ignored tests, wired into CI's scale-smoke job:
//!
//! * `quantized_store_memory_wall` (`JOCL_SCALE=0.02`) — the PR-7
//!   headline numbers: with `MessageStore::Quantized`, the committed
//!   message arenas must shed **≥ 40%** of their resident bytes and the
//!   snapshot envelope **≥ 30%** of its size versus the exact store on
//!   the same warm session, while the decode stays identical.
//! * `scale_full` (`JOCL_SCALE=1.0`, `JOCL_SCHEDULE=residual`) — the
//!   paper-scale end-to-end run must complete, converge, and stay under
//!   a peak-memory ceiling (`JOCL_MEM_CEILING_MB`, default 8192).
//!
//! ```text
//! JOCL_SCALE=0.02 cargo test -p jocl_bench --release --test memory_scale -- --ignored quantized
//! JOCL_SCALE=1.0 JOCL_SCHEDULE=residual cargo test -p jocl_bench --release --test memory_scale -- --ignored scale_full
//! ```

use jocl_bench::{env_mem_ceiling_mb, env_scale, env_schedule_mode, env_seed};
use jocl_core::signals::build_signals;
use jocl_core::{BlockingIndex, IncrementalJocl, JoclConfig};
use jocl_datagen::{reverb45k_like, stress_like};
use jocl_embed::SgnsOptions;
use jocl_fg::MessageStore;
use jocl_kb::{Okb, Triple};
use std::time::Instant;

/// Peak resident set of this process in KiB (`VmHWM`); `None` off Linux.
fn peak_memory_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[test]
#[ignore = "experiment-scale graphs; run with -- --ignored"]
fn quantized_store_memory_wall() {
    let scale = env_scale();
    let seed = env_seed();
    let mode = env_schedule_mode();

    let dataset = reverb45k_like(seed, scale);
    let mut union = Okb::new();
    for (_, t) in dataset.okb.triples() {
        union.ingest_triple(t.clone());
    }
    let triples: Vec<Triple> = union.triples().map(|(_, t)| t.clone()).collect();
    let signals = build_signals(
        &union,
        &dataset.ckb,
        &dataset.ppdb,
        &dataset.corpus,
        &SgnsOptions { dim: 24, epochs: 2, seed, ..Default::default() },
    );
    let mut config = JoclConfig { train_epochs: 0, ..Default::default() };
    config.lbp.mode = mode;
    config.lbp.max_iters = 100;

    // One warm session per store, identical ingest.
    let warm = |store: MessageStore| {
        let mut config = config.clone();
        config.message_store = store;
        let mut session = IncrementalJocl::new(config, &dataset.ckb, &signals);
        let out = session.apply_delta(&triples);
        assert!(out.output.diagnostics.lbp.converged, "{store:?} ingest must converge");
        (session, out.output)
    };
    let (mut exact, exact_out) = warm(MessageStore::Exact);
    let (mut quant, quant_out) = warm(MessageStore::Quantized);

    // Decode parity: quantization must not move the decode at this
    // scale (links and clusterings, both families).
    assert_eq!(quant_out.np_links, exact_out.np_links, "np links diverged under quantization");
    assert_eq!(quant_out.rp_links, exact_out.rp_links, "rp links diverged under quantization");
    assert_eq!(
        quant_out.np_clustering.assignment(),
        exact_out.np_clustering.assignment(),
        "np clustering diverged under quantization"
    );
    assert_eq!(
        quant_out.rp_clustering.assignment(),
        exact_out.rp_clustering.assignment(),
        "rp clustering diverged under quantization"
    );

    // Message-arena resident bytes: ≥ 40% reduction.
    let (arena_exact, arena_quant) = (exact.message_heap_bytes(), quant.message_heap_bytes());
    println!(
        "message arenas: exact {arena_exact} B, quantized {arena_quant} B \
         ({:.1}% reduction); session totals {} B vs {} B",
        100.0 * (1.0 - arena_quant as f64 / arena_exact.max(1) as f64),
        exact.heap_bytes(),
        quant.heap_bytes(),
    );
    assert!(arena_exact > 0 && arena_quant > 0, "gate needs warm sessions");
    assert!(
        arena_quant * 100 <= arena_exact * 60,
        "quantized message arenas must be ≥40% smaller: {arena_quant} vs {arena_exact}"
    );

    // Snapshot envelope: the PR-7 wire format (delta-coded sections +
    // quantized arenas) must undercut the fixed-width format it
    // replaced by ≥ 30%, and both stores must restore bit-exactly.
    // 4 598 927 B is the snapshot the pre-PR-7 codec wrote for exactly
    // this world (scale 0.02, seed 42 — the values CI pins; measured
    // via the seed `serve_scale` gate), so the constant only gates that
    // configuration.
    let snap_exact = jocl_serve::snapshot::session_to_bytes(&mut exact);
    let snap_quant = jocl_serve::snapshot::session_to_bytes(&mut quant);
    println!(
        "snapshots: exact {} B, quantized {} B ({:.1}% smaller than exact)",
        snap_exact.len(),
        snap_quant.len(),
        100.0 * (1.0 - snap_quant.len() as f64 / snap_exact.len().max(1) as f64),
    );
    assert!(
        snap_quant.len() < snap_exact.len(),
        "quantized snapshot must undercut the exact one: {} vs {}",
        snap_quant.len(),
        snap_exact.len()
    );
    if scale == 0.02 && seed == 42 {
        const PRE_PR7_SNAPSHOT_BYTES: usize = 4_598_927;
        println!(
            "vs pre-PR-7 format ({PRE_PR7_SNAPSHOT_BYTES} B): exact -{:.1}%, quantized -{:.1}%",
            100.0 * (1.0 - snap_exact.len() as f64 / PRE_PR7_SNAPSHOT_BYTES as f64),
            100.0 * (1.0 - snap_quant.len() as f64 / PRE_PR7_SNAPSHOT_BYTES as f64),
        );
        assert!(
            snap_quant.len() * 100 <= PRE_PR7_SNAPSHOT_BYTES * 70,
            "quantized snapshot must be ≥30% smaller than the pre-PR-7 format: {} vs \
             {PRE_PR7_SNAPSHOT_BYTES}",
            snap_quant.len()
        );
    }
    for (bytes, session, what) in
        [(&snap_exact, &mut exact, "exact"), (&snap_quant, &mut quant, "quantized")]
    {
        let mut restored = jocl_serve::snapshot::session_from_bytes(
            bytes,
            session.config().clone(),
            &dataset.ckb,
            &signals,
        )
        .unwrap_or_else(|e| panic!("{what} snapshot must restore: {e}"));
        assert_eq!(
            restored.export_state(),
            session.export_state(),
            "{what} snapshot round-trip must be bit-exact"
        );
    }
}

#[test]
#[ignore = "paper-scale end-to-end run; run with -- --ignored"]
fn scale_full() {
    let scale = env_scale();
    let seed = env_seed();
    let mode = env_schedule_mode();
    let ceiling_mb: u64 = env_mem_ceiling_mb(8192);

    let t0 = Instant::now();
    let dataset = reverb45k_like(seed, scale);
    let gen_s = t0.elapsed().as_secs_f64();
    let mut union = Okb::new();
    for (_, t) in dataset.okb.triples() {
        union.ingest_triple(t.clone());
    }
    let triples: Vec<Triple> = union.triples().map(|(_, t)| t.clone()).collect();
    let t1 = Instant::now();
    let signals = build_signals(
        &union,
        &dataset.ckb,
        &dataset.ppdb,
        &dataset.corpus,
        &SgnsOptions { dim: 24, epochs: 2, seed, ..Default::default() },
    );
    let signals_s = t1.elapsed().as_secs_f64();

    let mut config = JoclConfig { train_epochs: 0, ..Default::default() };
    config.lbp.mode = mode;
    config.lbp.max_iters = 100;
    config.message_store = MessageStore::Quantized;

    let t2 = Instant::now();
    let mut session = IncrementalJocl::new(config, &dataset.ckb, &signals);
    let out = session.apply_delta(&triples);
    let infer_s = t2.elapsed().as_secs_f64();
    assert!(out.output.diagnostics.lbp.converged, "paper-scale run must converge");

    let peak_kb = peak_memory_kb();
    println!(
        "scale_full (scale {scale}, {:?}): {} triples, {} vars, {} factors; datagen {gen_s:.1}s, \
         signals {signals_s:.1}s, ingest+inference {infer_s:.1}s, total {:.1}s; session heap \
         {} KiB accounted; peak RSS {} KiB",
        mode,
        triples.len(),
        out.output.diagnostics.num_vars,
        out.output.diagnostics.num_factors,
        t0.elapsed().as_secs_f64(),
        session.heap_bytes() / 1024,
        peak_kb.map_or_else(|| "?".into(), |k| k.to_string()),
    );
    if let Some(kb) = peak_kb {
        assert!(
            kb <= ceiling_mb * 1024,
            "peak RSS {} KiB exceeds the {ceiling_mb} MiB ceiling (JOCL_MEM_CEILING_MB)",
            kb
        );
    }
}

/// Storage-layer profile on the millions-of-triples stress preset
/// (`jocl_datagen::stress_like`; `JOCL_SCALE=1.0` ≈ 2.25M triples):
/// ingest + blocking only — the components whose arenas this PR
/// compresses — with per-structure accounted bytes, so "what dominates"
/// is a printed number, not a guess. Inference at this size is the
/// ROADMAP's 100× north star, not this gate; the full pipeline is gated
/// at paper scale by `scale_full`.
#[test]
#[ignore = "millions-of-triples stress preset; run with -- --ignored"]
fn stress_ingest() {
    let scale = env_scale();
    let seed = env_seed();
    let ceiling_mb: u64 = env_mem_ceiling_mb(32_768);

    let t0 = Instant::now();
    let dataset = stress_like(seed, scale);
    let gen_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let mut okb = Okb::new();
    for (_, t) in dataset.okb.triples() {
        okb.ingest_triple(t.clone());
    }
    let ingest_s = t1.elapsed().as_secs_f64();

    // Blocking needs only the IDF side of the signal set; the embedding/
    // rule signals are inference inputs and stay out of this profile.
    let t2 = Instant::now();
    let signals = build_signals(
        &okb,
        &dataset.ckb,
        &dataset.ppdb,
        &[],
        &SgnsOptions { dim: 8, epochs: 1, seed, ..Default::default() },
    );
    let idf_s = t2.elapsed().as_secs_f64();

    let config = JoclConfig::default();
    let t3 = Instant::now();
    let mut blocking = BlockingIndex::new(&config);
    let mut pairs = 0usize;
    for (t, triple) in okb.triples() {
        let delta = blocking.append_triple(t, triple, &signals);
        pairs += delta.subj_pairs.len() + delta.pred_pairs.len() + delta.obj_pairs.len();
    }
    let blocking_s = t3.elapsed().as_secs_f64();

    let (okb_b, blk_b) = (okb.heap_bytes(), blocking.heap_bytes());
    println!(
        "stress_ingest (scale {scale}): {} triples, {pairs} blocking pairs; datagen {gen_s:.1}s, \
         ingest {ingest_s:.1}s, idf/signals {idf_s:.1}s, blocking {blocking_s:.1}s; okb {} KiB, \
         blocking index {} KiB accounted; peak RSS {} KiB",
        okb.len(),
        okb_b / 1024,
        blk_b / 1024,
        peak_memory_kb().map_or_else(|| "?".into(), |k| k.to_string()),
    );
    assert!(!okb.is_empty() && pairs > 0, "stress world must produce blocking work");
    if let Some(kb) = peak_memory_kb() {
        assert!(
            kb <= ceiling_mb * 1024,
            "peak RSS {} KiB exceeds the {ceiling_mb} MiB ceiling (JOCL_MEM_CEILING_MB)",
            kb
        );
    }
}
