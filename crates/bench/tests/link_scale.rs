//! Acceptance gate for the entity-linking subsystem at CI scale
//! (`JOCL_SCALE=0.02`):
//!
//! 1. **Side information lifts link F1** — the alias dictionary that
//!    recovers the `ckb_alias_gap`-dropped surface forms (imported
//!    through the TSV machinery, fingerprint preserved) measurably
//!    improves linking F1 over the no-side-info decode on the seeded
//!    fixture, and changes at least one link — while an *empty* side
//!    table decodes identically to no table at all.
//! 2. **Writer and replica serve identical `LinkReport`s** — a warm
//!    replica booted from the writer's snapshot answers every probed
//!    `link` request with byte-identical `link.v1` frames, and a
//!    replica restored under the *wrong* side table is refused by the
//!    snapshot config fingerprint.
//!
//! Guarded behind `--ignored` like the other scale gates; CI runs it
//! under both `JOCL_SCHEDULE` modes:
//!
//! ```text
//! JOCL_SCALE=0.02 cargo test -p jocl_bench --release --test link_scale -- --ignored
//! ```

use jocl_bench::{env_scale, env_schedule_mode, env_seed};
use jocl_core::signals::build_signals;
use jocl_core::{Jocl, JoclConfig, JoclInput};
use jocl_datagen::reverb45k_like;
use jocl_embed::SgnsOptions;
use jocl_eval::linking_prf;
use jocl_kb::{Okb, SideKb, Triple};
use jocl_serve::{
    format_link, parse_command, parse_link_target, Engine, EngineOptions, FeedRole, LinkRequest,
    Response, ServeConfig,
};
use std::path::PathBuf;
use std::sync::Arc;

fn gate_config(side: Option<Arc<SideKb>>) -> JoclConfig {
    let mut config = JoclConfig { train_epochs: 0, ..Default::default() };
    config.lbp.mode = env_schedule_mode();
    // As in the other serving gates: a budget under which the engines
    // genuinely converge at this scale.
    config.lbp.max_iters = 100;
    config.side_info = side;
    config
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jocl-link-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
#[ignore = "experiment-scale graphs; run with -- --ignored"]
fn alias_dictionary_lifts_link_f1() {
    let seed = env_seed();
    let dataset = reverb45k_like(seed, env_scale());
    let signals = build_signals(
        &dataset.okb,
        &dataset.ckb,
        &dataset.ppdb,
        &dataset.corpus,
        &SgnsOptions { dim: 24, epochs: 2, seed, ..Default::default() },
    );
    let input = JoclInput {
        okb: &dataset.okb,
        ckb: &dataset.ckb,
        ppdb: &dataset.ppdb,
        corpus: &dataset.corpus,
    };

    // The imported dictionary: exactly the aliases the CKB lost, through
    // the TSV import path an operator would use (fingerprint preserved).
    let side = dataset.alias_side_kb(0.9);
    assert!(!side.is_empty(), "the gap must have dropped aliases at this scale");
    let dir = temp_dir("tsv");
    let tsv = dir.join("side.tsv");
    jocl_kb::tsv::write_side_kb(&side, &tsv).unwrap();
    let side = jocl_kb::tsv::read_side_kb(&tsv).unwrap();
    assert_eq!(side.fingerprint(), dataset.alias_side_kb(0.9).fingerprint(), "TSV round trip");

    let out_none = Jocl::new(gate_config(None)).run_with_signals(input, &signals, None);
    let out_side =
        Jocl::new(gate_config(Some(Arc::new(side)))).run_with_signals(input, &signals, None);
    assert!(out_none.diagnostics.lbp.converged && out_side.diagnostics.lbp.converged);

    // The table binds: at least one link decision moved.
    assert!(
        out_none.np_links != out_side.np_links || out_none.rp_links != out_side.rp_links,
        "an imported alias table must change the seeded fixture's decode"
    );

    // …and moves the needle the right way: combined NP+RP link F1.
    let f1_of = |out: &jocl_core::JoclOutput| {
        let np = linking_prf(&out.np_links, &dataset.gold.np_entity);
        let rp = linking_prf(&out.rp_links, &dataset.gold.rp_relation);
        let all = jocl_eval::LinkPrf { tp: np.tp + rp.tp, fp: np.fp + rp.fp, fn_: np.fn_ + rp.fn_ };
        (np.f1(), rp.f1(), all.f1())
    };
    let (np_none, rp_none, all_none) = f1_of(&out_none);
    let (np_side, rp_side, all_side) = f1_of(&out_side);
    println!(
        "link F1 without side info: np {np_none:.4} rp {rp_none:.4} all {all_none:.4}; \
         with the alias dictionary: np {np_side:.4} rp {rp_side:.4} all {all_side:.4}"
    );
    assert!(
        all_side > all_none,
        "the recovered alias dictionary must lift combined link F1: \
         {all_side:.4} vs {all_none:.4}"
    );

    // The inert-table contract at scale: `Some(empty)` ≡ `None`.
    let out_empty = Jocl::new(gate_config(Some(Arc::new(SideKb::new()))))
        .run_with_signals(input, &signals, None);
    assert_eq!(out_empty.np_links, out_none.np_links, "empty table changed np links");
    assert_eq!(out_empty.rp_links, out_none.rp_links, "empty table changed rp links");
    assert_eq!(out_empty.np_clustering.assignment(), out_none.np_clustering.assignment());
    assert_eq!(out_empty.rp_clustering.assignment(), out_none.rp_clustering.assignment());
    std::fs::remove_dir_all(&dir).ok();
}

fn ok(engine: &mut Engine<'_>, line: &str) -> Vec<String> {
    match engine.execute_caught(&parse_command(line).unwrap().unwrap()) {
        Response::Ok(lines) => lines,
        Response::Err(e) => panic!("{line:?} failed: {e}"),
    }
}

#[test]
#[ignore = "experiment-scale graphs; run with -- --ignored"]
fn writer_and_replica_serve_identical_link_reports() {
    let seed = env_seed();
    let dataset = reverb45k_like(seed, env_scale());
    let mut union = Okb::new();
    for (_, t) in dataset.okb.triples() {
        union.ingest_triple(t.clone());
    }
    let pool: Vec<Triple> = union.triples().map(|(_, t)| t.clone()).collect();
    assert!(pool.len() > 96, "gate needs a non-trivial world (JOCL_SCALE too small?)");
    let signals = build_signals(
        &union,
        &dataset.ckb,
        &dataset.ppdb,
        &dataset.corpus,
        &SgnsOptions { dim: 24, epochs: 2, seed, ..Default::default() },
    );
    let side = Arc::new(dataset.alias_side_kb(0.9));
    let serve = ServeConfig::builder().compact_threshold(f64::INFINITY).build();

    let dir = temp_dir("replica");
    let mut writer = Engine::open(
        gate_config(Some(side.clone())),
        serve.clone(),
        &dataset.ckb,
        &signals,
        pool.clone(),
        EngineOptions {
            snapshot_path: dir.join("session.snap"),
            feed: FeedRole::Writer(dir.join("feed.log")),
        },
    );
    let n = pool.len();
    ok(&mut writer, &format!("ingest {}", n - 8));
    ok(&mut writer, "snapshot");
    // A post-snapshot tail so the replica exercises warm catch-up too.
    ok(&mut writer, &format!("ingest {n}"));
    ok(&mut writer, "retract #3");

    // The snapshot fingerprint pins the side-info source: restoring
    // under a different (here: missing) table must be refused, naming
    // the field.
    match Engine::open_replica(
        gate_config(None),
        serve.clone(),
        &dataset.ckb,
        &signals,
        pool.clone(),
        EngineOptions {
            snapshot_path: dir.join("session.snap"),
            feed: FeedRole::Follower(dir.join("feed.log")),
        },
    ) {
        Err(err) => assert!(err.to_string().contains("side_info"), "{err}"),
        Ok(_) => panic!("a replica without the writer's side table must not boot"),
    }

    let mut replica = Engine::open_replica(
        gate_config(Some(side.clone())),
        serve,
        &dataset.ckb,
        &signals,
        pool,
        EngineOptions {
            snapshot_path: dir.join("session.snap"),
            feed: FeedRole::Follower(dir.join("feed.log")),
        },
    )
    .expect("replica warm-boot");
    assert_eq!(replica.poll_feed().expect("catch up"), 2, "the post-snapshot tail replayed");

    // Probe the link API on both planes: live surfaces, dictionary-only
    // surfaces, and the canonical URIs the writer itself hands out.
    let wv = writer.read_view();
    let rv = replica.read_view();
    let mut probes: Vec<String> = writer
        .session()
        .session()
        .live_triples()
        .iter()
        .take(12)
        .flat_map(|t| [t.subject.clone(), t.predicate.clone()])
        .collect();
    probes.extend(side.canonical_rows().iter().take(8).map(|(_, s, _, _)| s.to_string()));
    let mut uris = Vec::new();
    let mut compared = 0usize;
    let mut nonempty = 0usize;
    for probe in &probes {
        let req = LinkRequest::surface(probe);
        let (w, r) = (wv.link(&req), rv.link(&req));
        assert_eq!(w, r, "planes diverged on surface {probe:?}");
        assert_eq!(
            format_link(&w),
            format_link(&r),
            "serialized link frames must be byte-identical"
        );
        nonempty += usize::from(!w.is_empty());
        compared += 1;
        uris.extend(w.np.iter().chain(&w.rp).map(|c| c.uri.clone()).take(2));
    }
    uris.sort();
    uris.dedup();
    for uri in &uris {
        let req = LinkRequest {
            target: parse_link_target(uri).expect("served URIs parse"),
            limit: None,
            threshold: None,
        };
        let (w, r) = (wv.link(&req), rv.link(&req));
        assert_eq!(w, r, "planes diverged on {uri}");
        compared += 1;
    }
    println!("compared {compared} link reports ({nonempty} non-empty surface probes)");
    assert!(nonempty > 0, "the probe set must exercise real candidates");
    std::fs::remove_dir_all(&dir).ok();
}
