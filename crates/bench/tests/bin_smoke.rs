//! Smoke tests: every experiment binary must parse its env config and
//! run end-to-end on a tiny `jocl_datagen` world.
//!
//! Guarded behind `--ignored` (the satellite requirement) because each
//! test executes a full, if miniature, experiment:
//!
//! ```text
//! cargo test -p jocl_bench --test bin_smoke -- --ignored
//! ```

use std::process::Command;

/// Run one compiled experiment binary at minimal scale and return stdout.
fn run_bin(exe: &str) -> String {
    let out = Command::new(exe)
        // ~90x smaller world than the default experiment scale.
        .env("JOCL_SCALE", "0.002")
        .env("JOCL_SEED", "5")
        // Skip weight learning: smoke tests check plumbing, not quality.
        .env("JOCL_TRAIN_EPOCHS", "0")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} exited with {:?}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("experiment output must be utf8")
}

macro_rules! smoke {
    ($name:ident, $bin:literal, $expect:literal) => {
        #[test]
        #[ignore = "miniature but complete experiment; run with -- --ignored"]
        fn $name() {
            let stdout = run_bin(env!(concat!("CARGO_BIN_EXE_", $bin)));
            assert!(stdout.contains($expect), "{} output missing {:?}:\n{}", $bin, $expect, stdout);
        }
    };
}

smoke!(table1_runs, "table1", "Table 1");
smoke!(table2_runs, "table2", "Table 2");
smoke!(table3_runs, "table3", "Table 3");
smoke!(table4_runs, "table4", "Table 4");
smoke!(table5_fig4_runs, "table5_fig4", "Table 5");
smoke!(fig3_runs, "fig3", "Figure 3");
smoke!(fig2_convergence_runs, "fig2_convergence", "Figure 2");
smoke!(stream_runs, "stream", "PARITY ok");

/// The `serve` bin drives its full command vocabulary over stdin:
/// ingest, content- and id-addressed retraction, revision, phrase
/// queries, snapshot/restore through `JOCL_SNAPSHOT_DIR`, and manual
/// compaction.
#[test]
#[ignore = "miniature but complete experiment; run with -- --ignored"]
fn serve_runs() {
    use std::io::Write;
    use std::process::{Command, Stdio};

    let dir = std::env::temp_dir().join(format!("jocl-serve-smoke-{}", std::process::id()));
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .env("JOCL_SCALE", "0.002")
        .env("JOCL_SEED", "5")
        .env("JOCL_TRAIN_EPOCHS", "0")
        .env("JOCL_SNAPSHOT_DIR", &dir)
        .env("JOCL_COMPACT_THRESHOLD", "0.5")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(
            b"ingest 25\n\
              add Acme Corp | be base in | Springfield\n\
              retract #2\n\
              revise #3 => Foo Inc | be locate in | Bar City\n\
              query foo inc\n\
              snapshot\n\
              restore\n\
              ingest 10\n\
              compact\n\
              stats\n\
              quit\n",
        )
        .expect("write script");
    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "serve exited with {:?}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    for expect in ["snapshot written", "restored warm", "[COMPACTED]", "Foo Inc", "SERVE ok"] {
        assert!(stdout.contains(expect), "serve output missing {expect:?}:\n{stdout}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// With `JOCL_LISTEN` the same bin becomes the socket front-end: this
/// drives the line protocol over a unix socket — framed `OK`/`ERR`
/// responses, a malformed line surviving as a typed error, `shutdown`
/// stopping the server — and checks the `NET ok` epilogue.
#[test]
#[ignore = "miniature but complete experiment; run with -- --ignored"]
fn serve_listens() {
    use jocl_serve::{ErrCode, Response};
    use std::io::{BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::process::{Command, Stdio};
    use std::time::{Duration, Instant};

    let dir = std::env::temp_dir().join(format!("jocl-serve-net-smoke-{}", std::process::id()));
    let sock = dir.join("serve.sock");
    std::fs::create_dir_all(&dir).unwrap();
    let child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .env("JOCL_SCALE", "0.002")
        .env("JOCL_SEED", "5")
        .env("JOCL_TRAIN_EPOCHS", "0")
        .env("JOCL_SNAPSHOT_DIR", &dir)
        .env("JOCL_LISTEN", format!("unix:{}", sock.display()))
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");

    // The world builds before the listener comes up; poll for the socket.
    let deadline = Instant::now() + Duration::from_secs(60);
    let stream = loop {
        match UnixStream::connect(&sock) {
            Ok(s) => break s,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            Err(e) => panic!("serve never listened on {}: {e}", sock.display()),
        }
    };
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut stream = stream;
    // Frames are decoded through the one serialization path (R5): the
    // client never pattern-matches raw "OK "/"ERR " literals itself.
    let mut request = |line: &str| -> Response {
        writeln!(stream, "{line}").unwrap();
        stream.flush().unwrap();
        Response::read_from(&mut reader).expect("well-formed response frame")
    };
    let ok = |resp: Response| -> Vec<String> {
        match resp {
            Response::Ok(lines) => lines,
            Response::Err(e) => panic!("expected an OK frame, got {e}"),
        }
    };
    let err_code = |resp: Response| -> ErrCode {
        match resp {
            Response::Err(e) => e.code,
            Response::Ok(lines) => panic!("expected an ERR frame, got OK {lines:?}"),
        }
    };

    let ingested = ok(request("ingest 20")).join("\n");
    assert!(ingested.contains("ingest 20"), "{ingested}");
    let added = ok(request("add Acme Corp | be base in | Springfield")).join("\n");
    assert!(added.contains("+1 -0"), "{added}");
    assert_eq!(err_code(request("retract #99999")), ErrCode::BadId);
    assert_eq!(err_code(request("no such command")), ErrCode::Unknown);
    let stats = ok(request("stats")).join("\n");
    assert!(stats.contains("triples=21") && stats.contains("version="), "{stats}");
    let metrics = ok(request("metrics"));
    jocl_serve::parse_metrics(&metrics).expect("well-formed metrics frame");
    let query = ok(request("query acme corp")).join("\n");
    assert!(query.contains("Acme Corp"), "{query}");
    assert_eq!(ok(request("shutdown")), ["shutting down"]);

    let out = child.wait_with_output().expect("serve exits");
    assert!(
        out.status.success(),
        "serve exited with {:?}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    for expect in ["listening on unix:", "NET ok: 1 connections", "SERVE ok"] {
        assert!(stdout.contains(expect), "serve output missing {expect:?}:\n{stdout}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
