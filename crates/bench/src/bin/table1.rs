//! **Table 1** — Performance on the NP canonicalization task.
//!
//! Reproduces the paper's 8-method × 2-dataset comparison (macro, micro,
//! pairwise and average F1). Expected shape: JOCL > SIST > CESI >
//! string-similarity baselines in average F1 on both datasets.

use jocl_baselines as baselines;
use jocl_bench::{env_cesi_threshold, env_scale, env_seed, env_sist_threshold, ExperimentContext};
use jocl_core::{FeatureSet, Variant};
use jocl_datagen::{nytimes2018_like, reverb45k_like};
use jocl_eval::Table;

fn main() {
    let (scale, seed) = (env_scale(), env_seed());
    for dataset in [reverb45k_like(seed, scale), nytimes2018_like(seed, scale)] {
        let name = dataset.name.clone();
        let ctx = ExperimentContext::prepare(dataset, seed);
        let mut table = Table::new(
            format!("Table 1 — NP canonicalization on {name} (scale {scale})"),
            &["Method", "Macro F1", "Micro F1", "Pairwise F1", "Average F1"],
        );
        let cesi_t: f64 = env_cesi_threshold();
        let sist_t: f64 = env_sist_threshold();
        let mut add = |label: &str, c: &jocl_cluster::Clustering| {
            let s = ctx.score_np(c);
            table.row_scores(label, &[s.macro_.f1, s.micro.f1, s.pairwise.f1, s.average_f1()]);
        };
        add("Morph Norm", &baselines::morph_norm(&ctx.dataset.okb));
        add(
            "Wikidata Integrator",
            &baselines::wikidata_integrator(&ctx.dataset.okb, &ctx.dataset.ckb).0,
        );
        add("Text Similarity", &baselines::text_similarity(&ctx.dataset.okb, &ctx.signals, 0.92));
        add(
            "IDF Token Overlap",
            &baselines::idf_token_overlap(&ctx.dataset.okb, &ctx.signals, 0.55),
        );
        add(
            "Attribute Overlap",
            &baselines::attribute_overlap(&ctx.dataset.okb, &ctx.signals, 0.35),
        );
        add("CESI", &baselines::cesi(&ctx.dataset.okb, &ctx.dataset.ckb, &ctx.signals, cesi_t));
        add("SIST", &baselines::sist(&ctx.dataset.okb, &ctx.dataset.ckb, &ctx.signals, sist_t));
        let jocl = ctx.run_jocl(Variant::Full, FeatureSet::All);
        add("JOCL", &jocl.np_clustering);
        print!("{}", table.render());
        println!(
            "  [jocl: {} vars, {} factors, lbp {:?} {} iters, {} message updates, converged={}]\n",
            jocl.diagnostics.num_vars,
            jocl.diagnostics.num_factors,
            jocl_bench::env_schedule_mode(),
            jocl.diagnostics.lbp.iterations,
            jocl.diagnostics.lbp.message_updates,
            jocl.diagnostics.lbp.converged
        );
    }
}
