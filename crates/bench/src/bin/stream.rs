//! **stream** — replay a generated dataset as arrival batches through
//! the incremental session ([`jocl_core::IncrementalJocl`]) and verify
//! decode parity against the one-shot batch pipeline on the union.
//!
//! ```text
//! JOCL_SCALE=0.02 JOCL_STREAM_BATCH=4 JOCL_SCHEDULE=residual \
//!     cargo run --release -p jocl_bench --bin stream
//! ```
//!
//! Per batch it prints what the delta appended, how far its influence
//! reached (affected / total connected components), and what the warm
//! LBP run cost; the footer compares the session's total message updates
//! with what `JOCL_STREAM_BATCH` cold batch re-runs would have paid, and
//! exits non-zero on any decode mismatch.

use jocl_bench::runner::{
    env_message_store, env_scale, env_schedule_mode, env_seed, env_stream_batches,
};
use jocl_core::signals::build_signals;
use jocl_core::{IncrementalJocl, Jocl, JoclConfig, JoclInput};
use jocl_datagen::reverb45k_like;
use jocl_embed::SgnsOptions;
use jocl_kb::{Okb, Triple};
use std::time::Instant;

fn main() {
    jocl_obs::set_metrics_enabled(jocl_bench::env_metrics());
    jocl_obs::set_trace_enabled(jocl_bench::env_trace());
    let scale = env_scale();
    let seed = env_seed();
    let batches = env_stream_batches();
    let mode = env_schedule_mode();

    let dataset = reverb45k_like(seed, scale);
    let triples: Vec<Triple> = dataset.okb.triples().map(|(_, t)| t.clone()).collect();
    // The union OKB the batch reference runs on: the same dedup ingest
    // the session applies.
    let mut union = Okb::new();
    for t in &triples {
        union.ingest_triple(t.clone());
    }
    let signals = build_signals(
        &union,
        &dataset.ckb,
        &dataset.ppdb,
        &dataset.corpus,
        &SgnsOptions { dim: 24, epochs: 2, seed, ..Default::default() },
    );
    let mut config = JoclConfig { train_epochs: 0, ..Default::default() };
    config.lbp.mode = mode;
    let store = env_message_store();
    config.message_store = store;

    println!(
        "Streaming ingestion: {} triples ({} distinct) as {batches} arrival batches \
         (scale {scale}, seed {seed}, {mode:?})",
        triples.len(),
        union.len(),
    );
    println!(
        "{:>5} {:>8} {:>6} {:>8} {:>9} {:>12} {:>14} {:>9}",
        "batch", "triples", "dup", "vars+", "factors+", "components", "msg updates", "ms"
    );

    let mut session = IncrementalJocl::new(config.clone(), &dataset.ckb, &signals);
    let chunk = triples.len().div_ceil(batches.max(1)).max(1);
    let mut last = None;
    let mut applied_batches = 0usize;
    for (i, delta) in triples.chunks(chunk).enumerate() {
        applied_batches += 1;
        let t0 = Instant::now();
        let out = session.apply_delta(delta);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:>5} {:>8} {:>6} {:>8} {:>9} {:>6}/{:<5} {:>14} {:>9.1}",
            i + 1,
            out.stats.appended,
            out.stats.duplicates,
            out.stats.new_vars,
            out.stats.new_factors,
            out.stats.affected_components,
            out.stats.total_components,
            out.stats.lbp.message_updates,
            ms
        );
        last = Some(out);
    }
    let last = last.expect("at least one batch");

    // Batch reference on the union with the same frozen signals.
    let input =
        JoclInput { okb: &union, ckb: &dataset.ckb, ppdb: &dataset.ppdb, corpus: &dataset.corpus };
    let t0 = Instant::now();
    let batch = Jocl::new(config).run_with_signals(input, &signals, None);
    let batch_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Upper bound on the cold-per-arrival baseline (each cold re-run
    // would process a growing *prefix*, not the full union; the
    // stream_scale gate measures the prefix runs exactly). Uses the
    // number of batches actually applied, which chunking can make
    // smaller than JOCL_STREAM_BATCH on tiny datasets.
    let cold_total = batch.diagnostics.lbp.message_updates * applied_batches as u64;
    println!(
        "cold batch run on the union: {} msg updates in {batch_ms:.1} ms; {applied_batches} cold \
         rebuilds of the union would pay {cold_total} vs {} streamed ({:.2}x), final warm \
         delta {} ({:.2}x vs one cold rebuild)",
        batch.diagnostics.lbp.message_updates,
        session.total_message_updates,
        cold_total as f64 / session.total_message_updates.max(1) as f64,
        last.stats.lbp.message_updates,
        batch.diagnostics.lbp.message_updates as f64 / last.stats.lbp.message_updates.max(1) as f64,
    );

    println!(
        "session heap: {} KiB accounted ({store:?} message store)",
        session.heap_bytes() / 1024
    );

    let parity = last.output.np_links == batch.np_links
        && last.output.rp_links == batch.rp_links
        && last.output.np_clustering.assignment() == batch.np_clustering.assignment()
        && last.output.rp_clustering.assignment() == batch.rp_clustering.assignment();
    if jocl_obs::trace_enabled() {
        eprint!("{}", jocl_obs::take_trace_tsv());
    }
    if parity {
        println!("PARITY ok: streamed decode is identical to the batch decode on the union");
    } else {
        println!("PARITY MISMATCH: streamed decode differs from the batch decode");
        std::process::exit(1);
    }
}
