//! **Table 3** — Performance on the OKB entity linking task.
//!
//! Accuracy of Falcon, EARL, Spotlight, TagMe, KBPearl and JOCL on both
//! datasets. Expected shape: JOCL best on both.

use jocl_baselines as baselines;
use jocl_bench::{env_scale, env_seed, ExperimentContext};
use jocl_core::{FeatureSet, Variant};
use jocl_datagen::{nytimes2018_like, reverb45k_like};
use jocl_eval::Table;

fn main() {
    let (scale, seed) = (env_scale(), env_seed());
    let mut table = Table::new(
        format!("Table 3 — OKB entity linking accuracy (scale {scale})"),
        &["Method", "ReVerb45K-like", "NYTimes2018-like"],
    );
    let mut rows: Vec<(&str, Vec<f64>)> = vec![
        ("Falcon", vec![]),
        ("EARL", vec![]),
        ("Spotlight", vec![]),
        ("Tagme", vec![]),
        ("KBPearl", vec![]),
        ("JOCL", vec![]),
    ];
    for dataset in [reverb45k_like(seed, scale), nytimes2018_like(seed, scale)] {
        let ctx = ExperimentContext::prepare(dataset, seed);
        let okb = &ctx.dataset.okb;
        let ckb = &ctx.dataset.ckb;
        let scores = [
            ctx.score_entity_linking(&baselines::falcon(okb, ckb).0),
            ctx.score_entity_linking(&baselines::earl(okb, ckb).0),
            ctx.score_entity_linking(&baselines::spotlight(okb, ckb)),
            ctx.score_entity_linking(&baselines::tagme(okb, ckb)),
            ctx.score_entity_linking(&baselines::kbpearl(okb, ckb, 8).0),
            ctx.score_entity_linking(&ctx.run_jocl(Variant::Full, FeatureSet::All).np_links),
        ];
        for (row, s) in rows.iter_mut().zip(scores) {
            row.1.push(s);
        }
    }
    for (label, values) in rows {
        table.row_scores(label, &values);
    }
    print!("{}", table.render());
}
