//! **Table 5 + Figure 4** — feature-combination variants (§4.5).
//!
//! `JOCL-single` / `JOCL-double` / `JOCL-all` use growing feature subsets
//! per factor (Table 5); Figure 4 plots their NP canonicalization F1
//! (4a) and OKB entity linking accuracy (4b) on ReVerb45K. Expected
//! shape: "the more useful signals, the better the performance".

use jocl_bench::{env_scale, env_seed, ExperimentContext};
use jocl_core::{FeatureSet, Variant};
use jocl_datagen::reverb45k_like;
use jocl_eval::{BarChart, Table};

fn main() {
    let (scale, seed) = (env_scale(), env_seed());
    let ctx = ExperimentContext::prepare(reverb45k_like(seed, scale), seed);
    let mut spec = Table::new(
        "Table 5 — feature sets per variant",
        &["Variant", "F1,F3", "F2", "F4,F6", "F5"],
    );
    spec.row(&[
        "JOCL-single".into(),
        "f_idf".into(),
        "f_idf".into(),
        "f_pop".into(),
        "f_ngram".into(),
    ]);
    spec.row(&[
        "JOCL-double".into(),
        "f_idf,f_emb".into(),
        "f_idf,f_emb".into(),
        "f_pop,f_emb'".into(),
        "f_ngram,f_emb'".into(),
    ]);
    spec.row(&[
        "JOCL-all".into(),
        "f1 (all)".into(),
        "f2 (all)".into(),
        "f4 (all)".into(),
        "f5 (all)".into(),
    ]);
    print!("{}", spec.render());

    let mut fig4a =
        BarChart::new(format!("Figure 4(a) — NP canonicalization average F1 (scale {scale})"), 1.0);
    let mut fig4b =
        BarChart::new(format!("Figure 4(b) — OKB entity linking accuracy (scale {scale})"), 1.0);
    for (label, fs) in [
        ("JOCL-single", FeatureSet::Single),
        ("JOCL-double", FeatureSet::Double),
        ("JOCL-all", FeatureSet::All),
    ] {
        let out = ctx.run_jocl(Variant::Full, fs);
        fig4a.bar(label, ctx.score_np(&out.np_clustering).average_f1());
        fig4b.bar(label, ctx.score_entity_linking(&out.np_links));
    }
    print!("{}", fig4a.render());
    print!("{}", fig4b.render());
}
