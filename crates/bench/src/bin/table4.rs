//! **Table 4** — JOCL working separately for each task (ablation of the
//! consistency factors, §4.4).
//!
//! * `JOCLcano` — canonicalization factors only;
//! * `JOCLlink` — linking factors only;
//! * `JOCL` — the full joint model.
//!
//! Expected shape: the joint model beats both single-task variants —
//! the paper's headline interaction effect.

use jocl_bench::{env_scale, env_seed, ExperimentContext};
use jocl_core::{FeatureSet, Variant};
use jocl_datagen::reverb45k_like;
use jocl_eval::Table;

fn main() {
    let (scale, seed) = (env_scale(), env_seed());
    let ctx = ExperimentContext::prepare(reverb45k_like(seed, scale), seed);
    let mut table = Table::new(
        format!("Table 4 — interaction ablation on ReVerb45K-like (scale {scale})"),
        &["Variant", "Macro F1", "Micro F1", "Pairwise F1", "Average F1", "Accuracy"],
    );
    let cano = ctx.run_jocl(Variant::CanoOnly, FeatureSet::All);
    let s = ctx.score_np(&cano.np_clustering);
    table.row(&[
        "JOCLcano".into(),
        format!("{:.3}", s.macro_.f1),
        format!("{:.3}", s.micro.f1),
        format!("{:.3}", s.pairwise.f1),
        format!("{:.3}", s.average_f1()),
        "-".into(),
    ]);
    let link = ctx.run_jocl(Variant::LinkOnly, FeatureSet::All);
    table.row(&[
        "JOCLlink".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{:.3}", ctx.score_entity_linking(&link.np_links)),
    ]);
    let full = ctx.run_jocl(Variant::Full, FeatureSet::All);
    let s = ctx.score_np(&full.np_clustering);
    table.row(&[
        "JOCL".into(),
        format!("{:.3}", s.macro_.f1),
        format!("{:.3}", s.micro.f1),
        format!("{:.3}", s.pairwise.f1),
        format!("{:.3}", s.average_f1()),
        format!("{:.3}", ctx.score_entity_linking(&full.np_links)),
    ]);
    print!("{}", table.render());
}
