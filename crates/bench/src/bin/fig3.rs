//! **Figure 3** — Performance on the OKB relation linking task
//! (ReVerb45K, accuracy bar chart).
//!
//! Methods: Falcon, EARL, KBPearl, Rematch, JOCL. Expected shape: JOCL
//! best; absolute numbers lower than entity linking (the paper notes the
//! task is harder because relations have more surface variation).

use jocl_baselines as baselines;
use jocl_bench::{env_scale, env_seed, ExperimentContext};
use jocl_core::{FeatureSet, Variant};
use jocl_datagen::reverb45k_like;
use jocl_eval::BarChart;

fn main() {
    let (scale, seed) = (env_scale(), env_seed());
    let ctx = ExperimentContext::prepare(reverb45k_like(seed, scale), seed);
    let okb = &ctx.dataset.okb;
    let ckb = &ctx.dataset.ckb;
    let mut chart = BarChart::new(
        format!("Figure 3 — OKB relation linking accuracy on ReVerb45K-like (scale {scale})"),
        1.0,
    );
    chart.bar("Falcon", ctx.score_relation_linking(&baselines::falcon(okb, ckb).1));
    chart.bar("EARL", ctx.score_relation_linking(&baselines::earl(okb, ckb).1));
    chart.bar("KBPearl", ctx.score_relation_linking(&baselines::kbpearl(okb, ckb, 8).1));
    chart.bar(
        "Rematch",
        ctx.score_relation_linking(&baselines::rematch(okb, ckb, &ctx.dataset.synsets)),
    );
    chart.bar(
        "JOCL",
        ctx.score_relation_linking(&ctx.run_jocl(Variant::Full, FeatureSet::All).rp_links),
    );
    print!("{}", chart.render());
}
