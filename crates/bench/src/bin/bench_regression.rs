//! **bench-regression** — the CI perf gate.
//!
//! Re-times the six hot-path metrics the project optimizes for
//! (`lbp_sweep`, `graph_build`, `end_to_end`, `delta_ingest`,
//! `snapshot_restore`, `replica_catchup`) with criterion-style
//! median-of-N wall-clock sampling, then compares them against the
//! checked-in `BENCH_BASELINE.json` at the repository root. Any metric
//! slower than `baseline × (1 + tolerance)` fails the process (exit 1),
//! so speedups stop being anecdotes in `BENCH_NOTES.md`: regressing one
//! turns the CI job red.
//!
//! ```text
//! cargo run --release -p jocl_bench --bin bench_regression            # gate
//! cargo run --release -p jocl_bench --bin bench_regression -- --update # refresh
//! scripts/update_bench_baseline.sh                                    # ditto
//! cargo run --release -p jocl_bench --bin bench_regression -- --json out.json
//!                                       # gate + archive the measurements
//! ```
//!
//! The baseline and the gated run rarely share hardware (laptop vs CI
//! runner, or two differently-loaded shared VMs), so raw nanoseconds
//! are not comparable across them. Every run therefore also times a
//! **calibration workload** — a fixed pure-arithmetic loop that tracks
//! CPU speed but deliberately shares no code with the gated kernels, so
//! a real LBP/graph-build regression cannot hide in the denominator —
//! and the gate compares *calibrated* ratios:
//! `(metric / calibration) vs (baseline_metric / baseline_calibration)`.
//!
//! Since PR 7 the gate also covers **memory**: `session_heap_bytes`
//! (accounted resident bytes of the warm serving session) and
//! `snapshot_bytes` (its snapshot envelope), plus `peak_memory_kb`
//! (`VmHWM` from `/proc/self/status` where available). Byte counts are
//! machine-independent, so they are compared **raw** — no calibration
//! ratio — which makes them the sharpest regression tripwires here.
//!
//! Knobs: `JOCL_BENCH_TOLERANCE` (relative slack, default `0.30`;
//! timings are medians and calibration absorbs first-order machine
//! differences, so the gate only trips on real regressions) and
//! `JOCL_BENCH_BASELINE` (alternate baseline path). Refresh the
//! baseline deliberately via the script, never by hand-editing.

use jocl_core::signals::build_signals;
use jocl_core::{block_pairs, build_graph, Jocl, JoclConfig};
use jocl_datagen::reverb45k_like;
use jocl_embed::SgnsOptions;
use jocl_fg::lbp::LbpEngine;
use jocl_fg::{FactorGraph, LbpOptions, Params, Potential, VarId};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Median wall-clock ns of `f` over `samples` runs after one warm-up.
fn median_ns(samples: usize, mut f: impl FnMut()) -> u64 {
    f();
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Calibration workload: a fixed xorshift + floating-point loop. Pure
/// ALU/FPU, no allocation, no repo code — it scales with the machine's
/// single-thread speed (what every gated metric runs on) but cannot be
/// sped up or slowed down by changes to this workspace.
fn calibration_ns() -> u64 {
    median_ns(9, || {
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut acc = 0.0f64;
        for _ in 0..2_000_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x >> 11) as f64) * 1e-18;
        }
        black_box(acc);
    })
}

/// A ring of `n` 4-state variables with dense pairwise factors — the
/// `lbp_threads` microbench workload.
fn build_ring(n: usize) -> (FactorGraph, Params) {
    let mut g = FactorGraph::new();
    let mut params = Params::new();
    let grp = params.add_group_with(vec![1.0]);
    let vars: Vec<VarId> = (0..n).map(|_| g.add_var(4)).collect();
    for i in 0..n {
        let j = (i + 1) % n;
        let scores: Vec<f64> = (0..16).map(|x| (x % 5) as f64 * 0.2).collect();
        g.add_factor(&[vars[i], vars[j]], Potential::Scores { group: grp, scores }, 0);
    }
    (g, params)
}

/// Peak resident set of this process in KiB (`VmHWM` from
/// `/proc/self/status`); `None` off Linux. Recorded after the timed
/// workloads so it covers the full measured footprint.
fn peak_memory_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Units-aware push helpers: wall-clock medians compare via the
/// calibration ratio; byte counts are machine-independent and compare
/// raw.
trait PushMetric {
    fn push_calibrated(&mut self, metric: (&'static str, u64));
    fn push_raw(&mut self, metric: (&'static str, u64));
}

impl PushMetric for Vec<(&'static str, u64, bool)> {
    fn push_calibrated(&mut self, (name, value): (&'static str, u64)) {
        self.push((name, value, true));
    }
    fn push_raw(&mut self, (name, value): (&'static str, u64)) {
        self.push((name, value, false));
    }
}

/// The gated metrics: `(name, value, calibrated)`.
fn measure() -> Vec<(&'static str, u64, bool)> {
    let mut metrics: Vec<(&'static str, u64, bool)> = Vec::new();

    // lbp_sweep: 10 synchronous iterations over the 400-var ring.
    let (g, params) = build_ring(400);
    let opts = LbpOptions { max_iters: 10, ..Default::default() };
    metrics.push_calibrated((
        "lbp_sweep",
        median_ns(15, || {
            let mut eng = LbpEngine::new(&g);
            black_box(eng.run(&params, &opts));
        }),
    ));

    // graph_build + end_to_end share the microbench dataset/signals.
    let dataset = reverb45k_like(5, 0.005);
    let signals = build_signals(
        &dataset.okb,
        &dataset.ckb,
        &dataset.ppdb,
        &dataset.corpus,
        &SgnsOptions { dim: 24, epochs: 2, ..Default::default() },
    );
    let config = JoclConfig::default();
    let blocking = block_pairs(&dataset.okb, &signals, &config);
    metrics.push_calibrated((
        "graph_build",
        median_ns(7, || {
            black_box(build_graph(&dataset.okb, &dataset.ckb, &signals, &blocking, &config));
        }),
    ));

    let input = jocl_core::JoclInput {
        okb: &dataset.okb,
        ckb: &dataset.ckb,
        ppdb: &dataset.ppdb,
        corpus: &dataset.corpus,
    };
    let e2e_config = JoclConfig { train_epochs: 0, ..Default::default() };
    metrics.push_calibrated((
        "end_to_end",
        median_ns(7, || {
            black_box(Jocl::new(e2e_config.clone()).run_with_signals(input, &signals, None));
        }),
    ));

    // delta_ingest: warm ingestion of a 24-triple tail against a session
    // warmed on everything before it (residual mode). The warm session is
    // forked per sample so each run ingests the same delta from identical
    // state; the fork is part of the serving cost and stays in the timing.
    let mut stream_config = e2e_config.clone();
    stream_config.lbp.mode = jocl_core::ScheduleMode::Residual;
    let triples: Vec<jocl_kb::Triple> = dataset.okb.triples().map(|(_, t)| t.clone()).collect();
    let split = triples.len().saturating_sub(24).max(1);
    let mut warm_base =
        jocl_core::IncrementalJocl::new(stream_config.clone(), &dataset.ckb, &signals);
    warm_base.apply_delta(&triples[..split]);
    metrics.push_calibrated((
        "delta_ingest",
        median_ns(9, || {
            let mut session = warm_base.clone();
            black_box(session.apply_delta(&triples[split..]));
        }),
    ));

    // snapshot_restore: rebuilding the warm session from its snapshot
    // envelope (deserialize + validate + reindex; no file I/O, no
    // inference) — the serving restart path whose headline is "≥10x
    // cheaper than a cold build".
    let snapshot_bytes = jocl_serve::snapshot::session_to_bytes(&mut warm_base);
    metrics.push_calibrated((
        "snapshot_restore",
        median_ns(9, || {
            black_box(
                jocl_serve::snapshot::session_from_bytes(
                    &snapshot_bytes,
                    stream_config.clone(),
                    &dataset.ckb,
                    &signals,
                )
                .expect("snapshot restores"),
            );
        }),
    ));

    // replica_catchup: the read-replica warm-boot path — restore the
    // writer's snapshot, then replay the replication-log tail (the same
    // 24-triple batch) exactly as the writer applied it. This is what a
    // `serve --replica` pays on boot instead of a cold rebuild.
    metrics.push_calibrated((
        "replica_catchup",
        median_ns(9, || {
            let mut replica = jocl_serve::snapshot::session_from_bytes(
                &snapshot_bytes,
                stream_config.clone(),
                &dataset.ckb,
                &signals,
            )
            .expect("snapshot restores");
            black_box(replica.apply_delta(&triples[split..]));
        }),
    ));

    // Memory metrics (raw comparison): the warm serving session's
    // accounted resident bytes and its snapshot envelope size. Both are
    // pure functions of the code + workload, so any drift is a real
    // storage-layer change, not machine noise.
    metrics.push_raw(("session_heap_bytes", warm_base.heap_bytes() as u64));
    metrics.push_raw(("snapshot_bytes", snapshot_bytes.len() as u64));
    if let Some(kb) = peak_memory_kb() {
        // Peak RSS tracks allocator behaviour too, so it is noisier
        // than the accounted metrics — still raw (bytes are bytes),
        // still inside the same tolerance.
        metrics.push_raw(("peak_memory_kb", kb));
    }
    metrics
}

fn baseline_path() -> PathBuf {
    if let Some(p) = jocl_bench::env_bench_baseline() {
        return p;
    }
    // crates/bench → repository root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_BASELINE.json")
}

/// Serialize metrics as the flat JSON object the gate reads back.
/// Calibrated metrics keep the `_ns` suffix; raw byte metrics carry
/// their unit in the name already and get `_raw`.
fn to_json(calibration: u64, metrics: &[(&'static str, u64, bool)]) -> String {
    let mut out = String::from("{\n");
    out.push_str(
        "  \"comment\": \"_ns metrics are medians compared per-machine via the calibration ratio; _raw metrics (bytes) compare raw; refresh via scripts/update_bench_baseline.sh\",\n",
    );
    out.push_str(&format!("  \"calibration_ns\": {calibration},\n"));
    for (i, (name, value, calibrated)) in metrics.iter().enumerate() {
        let sep = if i + 1 == metrics.len() { "" } else { "," };
        let suffix = if *calibrated { "ns" } else { "raw" };
        out.push_str(&format!("  \"{name}_{suffix}\": {value}{sep}\n"));
    }
    out.push_str("}\n");
    out
}

/// Extract `"<name>_ns": <digits>` from the baseline JSON. Hand-rolled
/// (the offline dependency set has no JSON crate) but strict: a missing
/// or malformed entry is a hard error, not a silent pass.
fn parse_baseline(json: &str, name: &str, suffix: &str) -> Result<u64, String> {
    let key = format!("\"{name}_{suffix}\"");
    let at = json.find(&key).ok_or_else(|| format!("baseline is missing {key}"))?;
    let rest = &json[at + key.len()..];
    let colon = rest.find(':').ok_or_else(|| format!("no ':' after {key}"))?;
    let digits: String =
        rest[colon + 1..].trim_start().chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse::<u64>().map_err(|_| format!("no integer value for {key}"))
}

/// `--json PATH` / `--json=PATH`: where to write this run's
/// measurements as the same flat JSON the baseline uses — so CI can
/// archive every run machine-readably, not just the pass/fail verdict.
fn json_out_path() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if let Some(p) = a.strip_prefix("--json=") {
            return Some(PathBuf::from(p));
        }
        if a == "--json" {
            let p = args.next().unwrap_or_else(|| {
                panic!("--json needs a path (write measurements as JSON there)")
            });
            return Some(PathBuf::from(p));
        }
    }
    None
}

fn main() {
    let update = std::env::args().any(|a| a == "--update");
    let tolerance: f64 = jocl_bench::env_bench_tolerance();
    let path = baseline_path();

    println!("bench-regression gate (tolerance {:.0}%)", tolerance * 100.0);
    let calibration = calibration_ns();
    println!("  calibration  {calibration:>12} ns  (machine speed reference)");
    let metrics = measure();

    // Written before the gate verdict, so a regressing run still leaves
    // its measurements behind for the archaeology.
    if let Some(out) = json_out_path() {
        std::fs::write(&out, to_json(calibration, &metrics))
            .unwrap_or_else(|e| panic!("cannot write measurements to {}: {e}", out.display()));
        println!("  measurements written to {}", out.display());
    }

    if update {
        std::fs::write(&path, to_json(calibration, &metrics)).expect("write BENCH_BASELINE.json");
        for (name, value, calibrated) in &metrics {
            let unit = if *calibrated { "ns" } else { "" };
            println!("  {name:<18} {value:>12} {unit:<2} (recorded)");
        }
        println!("baseline written to {}", path.display());
        return;
    }

    let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); record one with scripts/update_bench_baseline.sh",
            path.display()
        )
    });
    let base_calibration =
        parse_baseline(&json, "calibration", "ns").unwrap_or_else(|e| panic!("{e}"));
    println!(
        "  machine vs baseline machine: {:.2}x (calibrated comparison)",
        calibration as f64 / base_calibration.max(1) as f64
    );
    let mut failed = false;
    for (name, value, calibrated) in &metrics {
        let suffix = if *calibrated { "ns" } else { "raw" };
        let base = match parse_baseline(&json, name, suffix) {
            Ok(b) => b,
            // `peak_memory_kb` only exists on baselines recorded on
            // Linux; a baseline without it simply doesn't gate it.
            Err(_) if *name == "peak_memory_kb" => {
                println!("  {name:<18} {value:>12}     (no baseline entry — skipped)");
                continue;
            }
            Err(e) => panic!("{e}"),
        };
        // Calibrated ratio: how much slower this metric got relative to
        // how much slower this *machine* is — hardware differences
        // between the baseline recorder and this runner divide out.
        // Byte metrics skip the denominator: bytes are bytes on any box.
        let ratio = if *calibrated {
            (*value as f64 / calibration.max(1) as f64)
                / (base.max(1) as f64 / base_calibration.max(1) as f64)
        } else {
            *value as f64 / base.max(1) as f64
        };
        let verdict = if ratio > 1.0 + tolerance {
            failed = true;
            "REGRESSION"
        } else if ratio < 1.0 {
            "improved"
        } else {
            "ok"
        };
        let kind = if *calibrated { "calibrated" } else { "raw" };
        println!(
            "  {name:<18} {value:>12}  vs baseline {base:>12}  ({kind} {ratio:>5.2}x)  {verdict}"
        );
    }
    if failed {
        eprintln!(
            "bench-regression: at least one metric regressed more than {:.0}% — \
             optimize, or refresh the baseline deliberately with \
             scripts/update_bench_baseline.sh and justify it in BENCH_NOTES.md",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!("bench-regression: all metrics within tolerance");
}
