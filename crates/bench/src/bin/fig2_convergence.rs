//! **Figure 2 (convergence)** — LBP convergence behaviour.
//!
//! §3.4 states "in practice we found that convergence was achieved within
//! twenty iterations" (the corresponding figure is not present in the
//! extracted paper text; this binary reproduces the stated claim). We
//! sweep the LBP iteration cap and report the message residual plus both
//! task metrics at each cap.

use jocl_bench::{env_scale, env_seed, ExperimentContext};
use jocl_core::{FeatureSet, Jocl, JoclConfig, Variant};
use jocl_eval::Table;

fn main() {
    let (scale, seed) = (env_scale(), env_seed());
    let ctx = ExperimentContext::prepare(jocl_datagen::reverb45k_like(seed, scale), seed);
    let mut table = Table::new(
        format!("Figure 2 — LBP convergence on ReVerb45K-like (scale {scale})"),
        &["Max iters", "Residual", "Converged", "Average F1", "Accuracy"],
    );
    for max_iters in [1usize, 2, 4, 8, 12, 16, 20, 30] {
        let mut config = JoclConfig {
            variant: Variant::Full,
            features: FeatureSet::All,
            train_epochs: 0, // isolate inference behaviour
            ..ctx.jocl_config()
        };
        config.lbp.max_iters = max_iters;
        config.lbp.tol = 1e-5;
        let out = Jocl::new(config).run_with_signals(ctx.input(), &ctx.signals, None);
        let s = ctx.score_np(&out.np_clustering);
        table.row(&[
            max_iters.to_string(),
            format!("{:.2e}", out.diagnostics.lbp.residual),
            out.diagnostics.lbp.converged.to_string(),
            format!("{:.3}", s.average_f1()),
            format!("{:.3}", ctx.score_entity_linking(&out.np_links)),
        ]);
    }
    print!("{}", table.render());
}
