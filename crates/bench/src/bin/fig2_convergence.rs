//! **Figure 2 (convergence)** — LBP convergence behaviour.
//!
//! §3.4 states "in practice we found that convergence was achieved within
//! twenty iterations" (the corresponding figure is not present in the
//! extracted paper text; this binary reproduces the stated claim). We
//! sweep the LBP iteration cap and report, **for both schedule modes**,
//! the message residual and the cumulative message-update count at each
//! cap — the update-count curves are where the residual schedule's
//! savings show up — plus both task metrics (scored on the synchronous
//! run; the residual schedule reaches the same fixed point within
//! tolerance, see the `schedule_scale` gate).

use jocl_bench::{env_scale, env_seed, ExperimentContext};
use jocl_core::{FeatureSet, Jocl, JoclConfig, ScheduleMode, Variant};
use jocl_eval::Table;

fn main() {
    let (scale, seed) = (env_scale(), env_seed());
    let ctx = ExperimentContext::prepare(jocl_datagen::reverb45k_like(seed, scale), seed);
    let mut table = Table::new(
        format!("Figure 2 — LBP convergence on ReVerb45K-like (scale {scale})"),
        &[
            "Max iters",
            "Sync residual",
            "Sync updates",
            "Resid residual",
            "Resid updates",
            "Converged s/r",
            "Average F1",
            "Accuracy",
        ],
    );
    for max_iters in [1usize, 2, 4, 8, 12, 16, 20, 30] {
        let run = |mode: ScheduleMode| {
            let mut config = JoclConfig {
                variant: Variant::Full,
                features: FeatureSet::All,
                train_epochs: 0, // isolate inference behaviour
                ..ctx.jocl_config()
            };
            config.lbp.max_iters = max_iters;
            config.lbp.tol = 1e-5;
            config.lbp.mode = mode;
            Jocl::new(config).run_with_signals(ctx.input(), &ctx.signals, None)
        };
        let sync = run(ScheduleMode::Synchronous);
        let resid = run(ScheduleMode::Residual);
        let s = ctx.score_np(&sync.np_clustering);
        table.row(&[
            max_iters.to_string(),
            format!("{:.2e}", sync.diagnostics.lbp.residual),
            sync.diagnostics.lbp.message_updates.to_string(),
            format!("{:.2e}", resid.diagnostics.lbp.residual),
            resid.diagnostics.lbp.message_updates.to_string(),
            format!(
                "{}/{}",
                sync.diagnostics.lbp.converged as u8, resid.diagnostics.lbp.converged as u8
            ),
            format!("{:.3}", s.average_f1()),
            format!("{:.3}", ctx.score_entity_linking(&sync.np_links)),
        ]);
    }
    print!("{}", table.render());
}
