//! **Table 2** — Performance on the RP canonicalization task (ReVerb45K).
//!
//! Methods: AMIE, PATTY, SIST, JOCL. Expected shape: AMIE weakest (low
//! rule coverage), JOCL best in average F1.

use jocl_baselines as baselines;
use jocl_bench::{env_scale, env_seed, ExperimentContext};
use jocl_core::{FeatureSet, Variant};
use jocl_datagen::reverb45k_like;
use jocl_eval::Table;
use jocl_rules::AmieOptions;

fn main() {
    let (scale, seed) = (env_scale(), env_seed());
    let ctx = ExperimentContext::prepare(reverb45k_like(seed, scale), seed);
    let mut table = Table::new(
        format!("Table 2 — RP canonicalization on ReVerb45K-like (scale {scale})"),
        &["Method", "Macro F1", "Micro F1", "Pairwise F1", "Average F1"],
    );
    let mut add = |label: &str, c: &jocl_cluster::Clustering| {
        let s = ctx.score_rp(c);
        table.row_scores(label, &[s.macro_.f1, s.micro.f1, s.pairwise.f1, s.average_f1()]);
    };
    add("AMIE", &baselines::amie_baseline(&ctx.dataset.okb, AmieOptions::default()));
    add("PATTY", &baselines::patty(&ctx.dataset.okb, &ctx.dataset.synsets));
    add("SIST", &baselines::sist_rp(&ctx.dataset.okb, &ctx.dataset.synsets, &ctx.dataset.ppdb));
    let jocl = ctx.run_jocl(Variant::Full, FeatureSet::All);
    add("JOCL", &jocl.rp_clustering);
    print!("{}", table.render());
}
