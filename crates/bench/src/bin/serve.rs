//! **serve** — an interactive serving session over a generated OKB:
//! the `jocl_serve` subsystem driven by a stdin command loop, with
//! per-operation [`DeltaStats`] lines.
//!
//! ```text
//! JOCL_SCALE=0.002 JOCL_SNAPSHOT_DIR=/tmp/jocl \
//!     cargo run --release -p jocl_bench --bin serve
//! ```
//!
//! Commands (one per line; blank lines and `#` comments are ignored):
//!
//! ```text
//! ingest N                     feed the next N generated triples as adds
//! add S | P | O                add one triple
//! retract S | P | O            retract by content (also: retract #ID)
//! revise S | P | O => S | P | O   correct a triple (also: revise #ID => …)
//! query PHRASE                 cluster + link of live mentions with PHRASE
//! stats                        session summary
//! snapshot [PATH]              persist the warm session (default: JOCL_SNAPSHOT_DIR)
//! restore [PATH]               restart from a snapshot
//! compact                      rebuild cold from the survivors
//! quit                         print totals and exit
//! ```
//!
//! Knobs: `JOCL_SCALE`, `JOCL_SEED`, `JOCL_SCHEDULE`,
//! `JOCL_COMPACT_THRESHOLD` (auto-compaction density, `off` disables),
//! `JOCL_SNAPSHOT_DIR` (default snapshot location). The inference pool
//! is the session config's `lbp.threads` (the `jocl_exec` pool), as in
//! every other bin.

use jocl_bench::runner::{
    env_compact_threshold, env_scale, env_schedule_mode, env_seed, env_snapshot_dir,
};
use jocl_core::signals::build_signals;
use jocl_core::{DeltaOp, DeltaOutput, JoclConfig};
use jocl_datagen::reverb45k_like;
use jocl_embed::SgnsOptions;
use jocl_kb::{Triple, TripleId};
use jocl_serve::{ServeConfig, ServeSession};
use std::io::BufRead;
use std::path::PathBuf;
use std::time::Instant;

fn parse_triple(s: &str) -> Result<Triple, String> {
    let parts: Vec<&str> = s.split('|').map(str::trim).collect();
    match parts.as_slice() {
        [s, p, o] if !s.is_empty() && !p.is_empty() && !o.is_empty() => Ok(Triple::new(s, p, o)),
        _ => Err(format!("expected 'subject | predicate | object', got {s:?}")),
    }
}

/// `S | P | O` or `#ID` (resolved against the live session). A dead id
/// is an error — its content may live on under a fresh id after a
/// re-add, and expanding the reference would silently target that.
fn parse_triple_ref(session: &ServeSession<'_>, s: &str) -> Result<Triple, String> {
    let s = s.trim();
    if let Some(id) = s.strip_prefix('#') {
        let id: u32 = id.trim().parse().map_err(|_| format!("bad triple id {s:?}"))?;
        if (id as usize) >= session.session().len() {
            return Err(format!("triple #{id} does not exist (have {})", session.session().len()));
        }
        if !session.session().is_live(TripleId(id)) {
            return Err(format!("triple #{id} is already retracted"));
        }
        return Ok(session.session().okb().triple(TripleId(id)).clone());
    }
    parse_triple(s)
}

fn stats_line(out: &DeltaOutput, ms: f64) {
    let s = &out.stats;
    println!(
        "  +{} -{} ~{} dup {} miss {} | vars+{} factors+{} tomb {} | live {} density {:.3} | \
         {} msg {} | {:.1} ms{}",
        s.appended,
        s.retracted,
        s.revised,
        s.duplicates,
        s.missed_retracts,
        s.new_vars,
        s.new_factors,
        s.tombstoned_factors,
        s.live_triples,
        s.tombstone_density,
        if s.warm_started { "warm" } else { "cold" },
        s.lbp.message_updates,
        ms,
        if s.compacted { " [COMPACTED]" } else { "" }
    );
}

fn default_snapshot_path() -> PathBuf {
    env_snapshot_dir()
        .unwrap_or_else(|| std::env::temp_dir().join(format!("jocl-serve-{}", std::process::id())))
        .join("session.snap")
}

fn main() {
    let scale = env_scale();
    let seed = env_seed();
    let mode = env_schedule_mode();
    let threshold = env_compact_threshold();

    let dataset = reverb45k_like(seed, scale);
    let pool: Vec<Triple> = dataset.okb.triples().map(|(_, t)| t.clone()).collect();
    let signals = build_signals(
        &dataset.okb,
        &dataset.ckb,
        &dataset.ppdb,
        &dataset.corpus,
        &SgnsOptions { dim: 24, epochs: 2, seed, ..Default::default() },
    );
    let mut config = JoclConfig { train_epochs: 0, ..Default::default() };
    config.lbp.mode = mode;
    let serve_config = ServeConfig { compact_threshold: threshold };

    println!(
        "Serving session over a {}-triple feed (scale {scale}, seed {seed}, {mode:?}, \
         compact threshold {threshold}); commands: ingest/add/retract/revise/query/stats/\
         snapshot/restore/compact/quit",
        pool.len()
    );

    let mut session =
        ServeSession::open(config.clone(), serve_config.clone(), &dataset.ckb, &signals);
    let mut cursor = 0usize; // next unfed generated triple
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("stdin error: {e}");
                break;
            }
        };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (cmd, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        let t0 = Instant::now();
        match cmd {
            "ingest" => {
                let n: usize = match rest.parse() {
                    Ok(n) => n,
                    Err(_) => {
                        println!("error: ingest needs a count, got {rest:?}");
                        continue;
                    }
                };
                let end = (cursor + n).min(pool.len());
                let out = session.add_all(&pool[cursor..end]);
                println!("ingest {} (feed {}..{})", end - cursor, cursor, end);
                cursor = end;
                stats_line(&out, t0.elapsed().as_secs_f64() * 1e3);
            }
            "add" => match parse_triple(rest) {
                Ok(t) => {
                    let out = session.apply(&[DeltaOp::Add(t)]);
                    stats_line(&out, t0.elapsed().as_secs_f64() * 1e3);
                }
                Err(e) => println!("error: {e}"),
            },
            "retract" => match parse_triple_ref(&session, rest) {
                Ok(t) => {
                    let out = session.apply(&[DeltaOp::Retract(t)]);
                    stats_line(&out, t0.elapsed().as_secs_f64() * 1e3);
                }
                Err(e) => println!("error: {e}"),
            },
            "revise" => {
                let Some((old, new)) = rest.split_once("=>") else {
                    println!("error: revise needs 'OLD => NEW'");
                    continue;
                };
                match (parse_triple_ref(&session, old), parse_triple(new.trim())) {
                    (Ok(old), Ok(new)) => {
                        let out = session.apply(&[DeltaOp::Revise { old, new }]);
                        stats_line(&out, t0.elapsed().as_secs_f64() * 1e3);
                    }
                    (Err(e), _) | (_, Err(e)) => println!("error: {e}"),
                }
            }
            "query" => {
                let reports = session.query_phrase(rest);
                if reports.is_empty() {
                    println!("  no live mention of {rest:?}");
                }
                for r in reports {
                    println!(
                        "  triple #{} {}: cluster of {} {:?}{}{}",
                        r.triple.0,
                        r.role,
                        r.cluster_size,
                        r.cluster_phrases,
                        r.entity.map(|e| format!(" -> entity {}", e.0)).unwrap_or_default(),
                        r.relation.map(|x| format!(" -> relation {}", x.0)).unwrap_or_default(),
                    );
                }
            }
            "stats" => {
                let s = session.session();
                println!(
                    "  {} triples ({} live), {} vars, {} factors, density {:.3}, \
                     {} ops, {} compactions, {} total msg updates",
                    s.len(),
                    s.num_live(),
                    s.num_vars(),
                    s.num_factors(),
                    s.tombstone_density(),
                    session.ops_applied,
                    session.compactions,
                    s.total_message_updates,
                );
            }
            "snapshot" => {
                let path =
                    if rest.is_empty() { default_snapshot_path() } else { PathBuf::from(rest) };
                if let Some(dir) = path.parent() {
                    if let Err(e) = std::fs::create_dir_all(dir) {
                        println!("error: creating {}: {e}", dir.display());
                        continue;
                    }
                }
                match session.snapshot_to(&path) {
                    Ok(bytes) => {
                        // The feed cursor is a bin concept the snapshot
                        // cannot carry; persist it in a sidecar so a
                        // restore resumes the feed exactly (a seen-scan
                        // fallback breaks once compaction has dropped
                        // retracted texts).
                        std::fs::write(path.with_extension("cursor"), cursor.to_string()).ok();
                        println!(
                            "  snapshot written: {} ({bytes} bytes, {:.1} ms)",
                            path.display(),
                            t0.elapsed().as_secs_f64() * 1e3
                        );
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            "restore" => {
                let path =
                    if rest.is_empty() { default_snapshot_path() } else { PathBuf::from(rest) };
                match ServeSession::restore_from(
                    &path,
                    config.clone(),
                    serve_config.clone(),
                    &dataset.ckb,
                    &signals,
                ) {
                    Ok(restored) => {
                        session = restored;
                        // Resync the feed cursor: prefer the sidecar the
                        // snapshot command wrote; fall back to the
                        // longest feed prefix present in the restored
                        // store (exact unless a compaction has dropped
                        // retracted texts — the sidecar covers that).
                        cursor = std::fs::read_to_string(path.with_extension("cursor"))
                            .ok()
                            .and_then(|s| s.trim().parse::<usize>().ok())
                            .unwrap_or_else(|| {
                                let seen: std::collections::HashSet<&Triple> =
                                    session.session().okb().triples().map(|(_, t)| t).collect();
                                pool.iter().take_while(|t| seen.contains(t)).count()
                            })
                            .min(pool.len());
                        println!(
                            "  restored warm from {} ({} triples, {} live, feed cursor -> {}, \
                             {:.1} ms)",
                            path.display(),
                            session.session().len(),
                            session.session().num_live(),
                            cursor,
                            t0.elapsed().as_secs_f64() * 1e3
                        );
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            "compact" => {
                let out = session.compact();
                stats_line(&out, t0.elapsed().as_secs_f64() * 1e3);
            }
            "quit" | "exit" => break,
            _ => println!("error: unknown command {cmd:?}"),
        }
    }
    println!(
        "SERVE ok: {} ops, {} compactions, {} live / {} triples, {} total msg updates",
        session.ops_applied,
        session.compactions,
        session.session().num_live(),
        session.session().len(),
        session.session().total_message_updates,
    );
}
