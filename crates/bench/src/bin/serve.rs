//! **serve** — the serving plane over a generated OKB: the
//! `jocl_serve` engine driven from stdin, or — with `JOCL_LISTEN` —
//! behind the TCP / unix-socket line-protocol front-end, with
//! `--replica` warm-restoring a read replica that follows the writer's
//! replication log.
//!
//! ```text
//! # interactive (PR-5 behavior)
//! JOCL_SCALE=0.002 JOCL_SNAPSHOT_DIR=/tmp/jocl \
//!     cargo run --release -p jocl_bench --bin serve
//!
//! # networked writer
//! JOCL_LISTEN=unix:/tmp/jocl/serve.sock JOCL_SNAPSHOT_DIR=/tmp/jocl \
//!     cargo run --release -p jocl_bench --bin serve
//!
//! # read replica (same snapshot dir; follows /tmp/jocl/feed.log)
//! JOCL_LISTEN=tcp:127.0.0.1:7071 JOCL_SNAPSHOT_DIR=/tmp/jocl \
//!     cargo run --release -p jocl_bench --bin serve -- --replica
//! ```
//!
//! Commands (one per line; blank lines and `#` comments are ignored;
//! over a socket, responses are framed `OK <n>` / `ERR <code> <msg>`):
//!
//! ```text
//! ingest N                     feed the next N generated triples as adds
//! add S | P | O                add one triple
//! retract S | P | O            retract by content (also: retract #ID)
//! revise S | P | O => S | P | O   correct a triple (also: revise #ID => …)
//! query PHRASE                 cluster + link of live mentions with PHRASE
//! link TARGET [limit=N] [threshold=X]
//!                              resolve a phrase or jocl://|ckb:// URI to ranked
//!                              link candidates (link.v1 frame; side-information
//!                              dictionary candidates included when imported)
//! stats                        session summary (stats.v1 line)
//! metrics                      metrics.v1 exposition of the whole registry
//! snapshot [PATH]              persist the warm session (default: JOCL_SNAPSHOT_DIR)
//! restore [PATH]               restart from a snapshot
//! compact                      rebuild cold from the survivors
//! quit                         close this connection (stdin: exit)
//! shutdown                     stop the whole server
//! ```
//!
//! Knobs: `JOCL_SCALE`, `JOCL_SEED`, `JOCL_SCHEDULE`,
//! `JOCL_COMPACT_THRESHOLD` (auto-compaction density, `off` disables),
//! `JOCL_SNAPSHOT_DIR` (snapshot + replication-log directory),
//! `JOCL_LISTEN` (`tcp:HOST:PORT` / `unix:PATH`, `off` keeps stdin),
//! `JOCL_MSG_STORE` (`exact` / `quantized` committed-message arena),
//! `JOCL_LINK_THRESHOLD` (min `link` candidate confidence, `off`
//! reports all), `JOCL_METRICS` (`off` disables metric recording),
//! `JOCL_TRACE` (`on` records spans, dumped as TSV to stderr on exit),
//! `JOCL_SIDE_INFO` (side-information TSV to import —
//! threaded into inference as S1/S2 potentials *and* into `link`
//! dictionary candidates; the snapshot fingerprint pins it). The
//! inference pool is the session config's `lbp.threads` (the
//! `jocl_exec` pool), as in every other bin.

use jocl_bench::{
    env_compact_threshold, env_link_threshold, env_listen, env_message_store, env_metrics,
    env_scale, env_schedule_mode, env_seed, env_side_info, env_snapshot_dir, env_trace,
};
use jocl_core::signals::build_signals;
use jocl_core::JoclConfig;
use jocl_datagen::reverb45k_like;
use jocl_embed::SgnsOptions;
use jocl_kb::Triple;
use jocl_serve::{
    parse_command, Command, Engine, EngineOptions, FeedRole, ListenAddr, Response, ServeConfig,
};
use std::io::BufRead;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;

fn snapshot_dir() -> PathBuf {
    env_snapshot_dir()
        .unwrap_or_else(|| std::env::temp_dir().join(format!("jocl-serve-{}", std::process::id())))
}

fn epilogue(engine: &Engine<'_>) {
    println!(
        "SERVE ok: {} ops, {} compactions, {} live / {} triples, {} total msg updates, {} heap KiB",
        engine.session().ops_applied,
        engine.session().compactions,
        engine.session().session().num_live(),
        engine.session().session().len(),
        engine.session().session().total_message_updates,
        engine.session().session().heap_bytes() / 1024,
    );
    dump_trace();
}

/// The PR-5 interactive loop, now a thin shell around the same engine
/// the socket front-end drives: parse, execute, print the response
/// payload (errors as their `ERR <code> <msg>` line).
fn stdin_loop(mut engine: Engine<'_>) {
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("stdin error: {e}");
                break;
            }
        };
        let cmd = match parse_command(&line) {
            Ok(None) => continue,
            Ok(Some(Command::Quit | Command::Shutdown)) => break,
            Ok(Some(cmd)) => cmd,
            Err(e) => {
                println!("{e}");
                continue;
            }
        };
        match engine.execute_caught(&cmd) {
            Response::Ok(lines) => {
                for l in lines {
                    println!("{l}");
                }
            }
            Response::Err(e) => println!("{e}"),
        }
    }
    epilogue(&engine);
}

/// The socket front-end: serve until a client sends `shutdown`.
fn listen_loop(engine: Engine<'_>, addr: &ListenAddr) {
    let stop = AtomicBool::new(false);
    let result = jocl_serve::net::serve(engine, addr, &stop, &mut |resolved| {
        println!("listening on {resolved}");
    });
    match result {
        Ok((engine, stats)) => {
            println!(
                "NET ok: {} connections, {} requests, {} errors",
                stats.connections, stats.requests, stats.errors
            );
            epilogue(&engine);
        }
        Err(e) => {
            eprintln!("listener failed on {addr}: {e}");
            std::process::exit(2);
        }
    }
}

/// Dump the span-trace ring as TSV to stderr (stdout carries the
/// protocol / epilogue lines the smoke tests parse).
fn dump_trace() {
    if jocl_obs::trace_enabled() {
        eprint!("{}", jocl_obs::take_trace_tsv());
    }
}

fn main() {
    let replica = std::env::args().skip(1).any(|a| a == "--replica");
    jocl_obs::set_metrics_enabled(env_metrics());
    jocl_obs::set_trace_enabled(env_trace());
    let scale = env_scale();
    let seed = env_seed();
    let mode = env_schedule_mode();
    let threshold = env_compact_threshold();
    let listen = env_listen();

    let dataset = reverb45k_like(seed, scale);
    let pool: Vec<Triple> = dataset.okb.triples().map(|(_, t)| t.clone()).collect();
    let signals = build_signals(
        &dataset.okb,
        &dataset.ckb,
        &dataset.ppdb,
        &dataset.corpus,
        &SgnsOptions { dim: 24, epochs: 2, seed, ..Default::default() },
    );
    let mut config = JoclConfig { train_epochs: 0, ..Default::default() };
    config.lbp.mode = mode;
    config.message_store = env_message_store();
    if let Some(path) = env_side_info() {
        match jocl_kb::tsv::read_side_kb(&path) {
            Ok(side) => {
                println!(
                    "side info: {} entity + {} relation rows from {} (fingerprint {:#018x})",
                    side.num_entity_links(),
                    side.num_relation_links(),
                    path.display(),
                    side.fingerprint(),
                );
                config.side_info = Some(std::sync::Arc::new(side));
            }
            Err(e) => {
                eprintln!("cannot import side info from {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    let serve_config = ServeConfig::builder()
        .compact_threshold(threshold)
        .link_threshold(env_link_threshold())
        .build();

    let dir = snapshot_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create snapshot dir {}: {e}", dir.display());
        std::process::exit(2);
    }
    let snapshot_path = dir.join("session.snap");
    let feed_path = dir.join("feed.log");

    println!(
        "Serving session over a {}-triple feed (scale {scale}, seed {seed}, {mode:?}, \
         compact threshold {threshold}, {}); commands: ingest/add/retract/revise/query/link/\
         stats/snapshot/restore/compact/quit/shutdown",
        pool.len(),
        if replica { "replica" } else { "writer" },
    );

    if replica {
        let opts = EngineOptions { snapshot_path, feed: FeedRole::Follower(feed_path) };
        let engine =
            match Engine::open_replica(config, serve_config, &dataset.ckb, &signals, pool, opts) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("replica warm-boot failed: {e}");
                    std::process::exit(2);
                }
            };
        println!(
            "replica warm-boot: {} triples ({} live), feed offset {}",
            engine.session().session().len(),
            engine.session().session().num_live(),
            engine.feed_offset(),
        );
        let Some(addr) = listen else {
            eprintln!("--replica serves over the wire; set JOCL_LISTEN=tcp:HOST:PORT or unix:PATH");
            std::process::exit(2);
        };
        listen_loop(engine, &addr);
    } else {
        let opts = EngineOptions { snapshot_path, feed: FeedRole::Writer(feed_path) };
        let engine = Engine::open(config, serve_config, &dataset.ckb, &signals, pool, opts);
        match listen {
            Some(addr) => listen_loop(engine, &addr),
            None => stdin_loop(engine),
        }
    }
}
