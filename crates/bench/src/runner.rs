//! Shared experiment plumbing: dataset setup, label construction,
//! method execution, scoring.

use jocl_cluster::Clustering;
use jocl_core::pipeline::ValidationLabels;
use jocl_core::signals::{build_signals, Signals};
use jocl_core::{FeatureSet, Jocl, JoclConfig, JoclInput, Variant};
use jocl_datagen::Dataset;
use jocl_embed::SgnsOptions;
use jocl_eval::clustering::{evaluate_clustering_on, ClusteringScores};
use jocl_eval::linking_accuracy;
use jocl_kb::{EntityId, NpMention, NpSlot, RelationId, RpMention, TripleId};

// The `JOCL_*` env knobs historically lived here; they are consolidated
// in [`crate::env`] (PR-6 satellite) and re-exported so every
// `jocl_bench::runner::env_*` import keeps working.
pub use crate::env::{
    env_compact_threshold, env_listen, env_message_store, env_scale, env_schedule_mode, env_seed,
    env_snapshot_dir, env_stream_batches,
};

/// One method's clustering scores plus a label.
pub struct MethodScores {
    /// Display name (matches the paper's row labels).
    pub name: &'static str,
    /// Macro/micro/pairwise scores.
    pub scores: ClusteringScores,
}

/// A prepared dataset with shared signals and the paper's validation /
/// test split (§4.1).
pub struct ExperimentContext {
    /// The dataset.
    pub dataset: Dataset,
    /// Shared signal resources (SGNS trained once per dataset).
    pub signals: Signals,
    /// Validation triples (20% of entities).
    pub validation: Vec<TripleId>,
    /// Test triples.
    pub test: Vec<TripleId>,
    /// Sparse labels for weight learning.
    pub labels: ValidationLabels,
}

impl ExperimentContext {
    /// Prepare a context from a generated dataset.
    pub fn prepare(dataset: Dataset, seed: u64) -> Self {
        let sgns = SgnsOptions { dim: 48, epochs: 4, seed, ..Default::default() };
        let signals =
            build_signals(&dataset.okb, &dataset.ckb, &dataset.ppdb, &dataset.corpus, &sgns);
        let (validation, test) = dataset.entity_split(0.2, seed);
        let labels = validation_labels(&dataset, &validation);
        Self { dataset, signals, validation, test, labels }
    }

    /// Borrowed JOCL input view.
    pub fn input(&self) -> JoclInput<'_> {
        JoclInput {
            okb: &self.dataset.okb,
            ckb: &self.dataset.ckb,
            ppdb: &self.dataset.ppdb,
            corpus: &self.dataset.corpus,
        }
    }

    /// Default JOCL configuration for experiments at the current scale.
    pub fn jocl_config(&self) -> JoclConfig {
        let train_epochs = crate::env::env_train_epochs();
        let mut config = JoclConfig {
            sgns: SgnsOptions { dim: 48, epochs: 4, ..Default::default() },
            train_epochs,
            ..Default::default()
        };
        config.lbp.mode = env_schedule_mode();
        config
    }

    /// Run JOCL with a variant/feature-set override, reusing the shared
    /// signals.
    pub fn run_jocl(&self, variant: Variant, features: FeatureSet) -> jocl_core::JoclOutput {
        let config = JoclConfig { variant, features, ..self.jocl_config() };
        Jocl::new(config).run_with_signals(self.input(), &self.signals, Some(&self.labels))
    }

    /// Dense NP mention indexes of the test triples (evaluation universe).
    pub fn test_np_mentions(&self) -> Vec<usize> {
        self.test
            .iter()
            .flat_map(|&t| {
                [
                    NpMention { triple: t, slot: NpSlot::Subject }.dense(),
                    NpMention { triple: t, slot: NpSlot::Object }.dense(),
                ]
            })
            .collect()
    }

    /// Dense RP mention indexes of the test triples.
    pub fn test_rp_mentions(&self) -> Vec<usize> {
        self.test.iter().map(|&t| RpMention(t).dense()).collect()
    }

    /// Score an NP clustering on the test mentions.
    pub fn score_np(&self, predicted: &Clustering) -> ClusteringScores {
        evaluate_clustering_on(
            predicted,
            &self.dataset.gold.np_clustering(),
            &self.test_np_mentions(),
        )
    }

    /// Score an RP clustering on the test mentions.
    pub fn score_rp(&self, predicted: &Clustering) -> ClusteringScores {
        evaluate_clustering_on(
            predicted,
            &self.dataset.gold.rp_clustering(),
            &self.test_rp_mentions(),
        )
    }

    /// Entity linking accuracy on test mentions with gold links.
    pub fn score_entity_linking(&self, predicted: &[Option<EntityId>]) -> f64 {
        let idx = self.test_np_mentions();
        let p: Vec<Option<EntityId>> = idx.iter().map(|&i| predicted[i]).collect();
        let g: Vec<Option<EntityId>> =
            idx.iter().map(|&i| self.dataset.gold.np_entity[i]).collect();
        linking_accuracy(&p, &g).accuracy()
    }

    /// Relation linking accuracy on test mentions.
    pub fn score_relation_linking(&self, predicted: &[Option<RelationId>]) -> f64 {
        let idx = self.test_rp_mentions();
        let p: Vec<Option<RelationId>> = idx.iter().map(|&i| predicted[i]).collect();
        let g: Vec<Option<RelationId>> =
            idx.iter().map(|&i| self.dataset.gold.rp_relation[i]).collect();
        linking_accuracy(&p, &g).accuracy()
    }
}

/// Restrict the dataset's gold labels to the validation triples (paper
/// §4.1: the validation set trains the framework's parameters).
pub fn validation_labels(dataset: &Dataset, validation: &[TripleId]) -> ValidationLabels {
    let mut labels = ValidationLabels::empty(&dataset.okb);
    for &t in validation {
        for slot in [NpSlot::Subject, NpSlot::Object] {
            let d = NpMention { triple: t, slot }.dense();
            labels.np_entity[d] = dataset.gold.np_entity[d];
            labels.np_cluster[d] = Some(dataset.gold.np_cluster_labels[d]);
        }
        let d = RpMention(t).dense();
        labels.rp_relation[d] = dataset.gold.rp_relation[d];
        labels.rp_cluster[d] = Some(dataset.gold.rp_cluster_labels[d]);
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use jocl_datagen::reverb45k_like;

    #[test]
    fn context_prepares_consistent_split() {
        let ctx = ExperimentContext::prepare(reverb45k_like(3, 0.004), 3);
        assert_eq!(ctx.validation.len() + ctx.test.len(), ctx.dataset.okb.len());
        assert!(ctx.labels.num_labeled() > 0);
        // Labels only on validation triples.
        for &t in &ctx.test {
            let d = NpMention { triple: t, slot: NpSlot::Subject }.dense();
            assert!(ctx.labels.np_cluster[d].is_none());
        }
    }

    #[test]
    fn scoring_pipeline_runs() {
        let ctx = ExperimentContext::prepare(reverb45k_like(3, 0.004), 3);
        let c = jocl_baselines::morph_norm(&ctx.dataset.okb);
        let s = ctx.score_np(&c);
        assert!(s.average_f1() > 0.0 && s.average_f1() <= 1.0);
    }
}
