//! Shared experiment plumbing: dataset setup, label construction,
//! method execution, scoring.

use jocl_cluster::Clustering;
use jocl_core::pipeline::ValidationLabels;
use jocl_core::signals::{build_signals, Signals};
use jocl_core::{FeatureSet, Jocl, JoclConfig, JoclInput, ScheduleMode, Variant};
use jocl_datagen::Dataset;
use jocl_embed::SgnsOptions;
use jocl_eval::clustering::{evaluate_clustering_on, ClusteringScores};
use jocl_eval::linking_accuracy;
use jocl_kb::{EntityId, NpMention, NpSlot, RelationId, RpMention, TripleId};

/// `JOCL_SCALE` env var (default 0.02).
pub fn env_scale() -> f64 {
    std::env::var("JOCL_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.02)
}

/// `JOCL_SEED` env var (default 42).
pub fn env_seed() -> u64 {
    std::env::var("JOCL_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// `JOCL_SCHEDULE` env var: `residual` selects residual-scheduled message
/// passing, `synchronous`/`sync` (or unset) the full sweeps. Parsed
/// case-insensitively with surrounding whitespace trimmed (so
/// `JOCL_SCHEDULE=Residual` and `JOCL_SCHEDULE=" residual "` both work);
/// anything else aborts loudly listing the valid values — a typo must
/// not silently time the wrong engine.
pub fn env_schedule_mode() -> ScheduleMode {
    match std::env::var("JOCL_SCHEDULE") {
        Err(_) => ScheduleMode::Synchronous,
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "" | "sync" | "synchronous" => ScheduleMode::Synchronous,
            "residual" => ScheduleMode::Residual,
            _ => panic!("JOCL_SCHEDULE must be 'synchronous' or 'residual', got {v:?}"),
        },
    }
}

/// `JOCL_STREAM_BATCH` env var: how many arrival batches the streaming
/// replay (`stream` bin, `stream_scale` gate) splits the dataset into.
/// Default 4; whitespace-tolerant; anything but a positive integer
/// aborts loudly listing the valid form.
pub fn env_stream_batches() -> usize {
    match std::env::var("JOCL_STREAM_BATCH") {
        Err(_) => 4,
        Ok(v) => {
            let trimmed = v.trim();
            if trimmed.is_empty() {
                return 4;
            }
            match trimmed.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => panic!(
                    "JOCL_STREAM_BATCH must be a positive integer (number of arrival \
                     batches), got {v:?}"
                ),
            }
        }
    }
}

/// `JOCL_SNAPSHOT_DIR` env var: where the `serve` bin writes/reads warm
/// session snapshots. Whitespace-trimmed; unset or empty means "use a
/// process-scoped temp directory". The serve bin creates the directory
/// on first snapshot; an uncreatable path fails there with the
/// offending path in the error, never a silent fallback elsewhere.
pub fn env_snapshot_dir() -> Option<std::path::PathBuf> {
    match std::env::var("JOCL_SNAPSHOT_DIR") {
        Err(_) => None,
        Ok(v) => {
            let trimmed = v.trim();
            if trimmed.is_empty() {
                None
            } else {
                Some(std::path::PathBuf::from(trimmed))
            }
        }
    }
}

/// `JOCL_COMPACT_THRESHOLD` env var: the tombstone (dead-factor) density
/// above which the serving session compacts (cold rebuild from the
/// survivors). Default 0.5; whitespace-tolerant; `off` (case-folded)
/// disables automatic compaction. Anything else must parse as a finite
/// number in `[0, 1]` or the process aborts loudly listing the valid
/// forms — a typo must not silently pick a different compaction policy.
pub fn env_compact_threshold() -> f64 {
    match std::env::var("JOCL_COMPACT_THRESHOLD") {
        Err(_) => 0.5,
        Ok(v) => {
            let trimmed = v.trim();
            if trimmed.is_empty() {
                return 0.5;
            }
            if trimmed.eq_ignore_ascii_case("off") {
                return f64::INFINITY;
            }
            match trimmed.parse::<f64>() {
                Ok(t) if t.is_finite() && (0.0..=1.0).contains(&t) => t,
                _ => {
                    panic!("JOCL_COMPACT_THRESHOLD must be a density in [0, 1] or 'off', got {v:?}")
                }
            }
        }
    }
}

/// One method's clustering scores plus a label.
pub struct MethodScores {
    /// Display name (matches the paper's row labels).
    pub name: &'static str,
    /// Macro/micro/pairwise scores.
    pub scores: ClusteringScores,
}

/// A prepared dataset with shared signals and the paper's validation /
/// test split (§4.1).
pub struct ExperimentContext {
    /// The dataset.
    pub dataset: Dataset,
    /// Shared signal resources (SGNS trained once per dataset).
    pub signals: Signals,
    /// Validation triples (20% of entities).
    pub validation: Vec<TripleId>,
    /// Test triples.
    pub test: Vec<TripleId>,
    /// Sparse labels for weight learning.
    pub labels: ValidationLabels,
}

impl ExperimentContext {
    /// Prepare a context from a generated dataset.
    pub fn prepare(dataset: Dataset, seed: u64) -> Self {
        let sgns = SgnsOptions { dim: 48, epochs: 4, seed, ..Default::default() };
        let signals =
            build_signals(&dataset.okb, &dataset.ckb, &dataset.ppdb, &dataset.corpus, &sgns);
        let (validation, test) = dataset.entity_split(0.2, seed);
        let labels = validation_labels(&dataset, &validation);
        Self { dataset, signals, validation, test, labels }
    }

    /// Borrowed JOCL input view.
    pub fn input(&self) -> JoclInput<'_> {
        JoclInput {
            okb: &self.dataset.okb,
            ckb: &self.dataset.ckb,
            ppdb: &self.dataset.ppdb,
            corpus: &self.dataset.corpus,
        }
    }

    /// Default JOCL configuration for experiments at the current scale.
    pub fn jocl_config(&self) -> JoclConfig {
        let train_epochs =
            std::env::var("JOCL_TRAIN_EPOCHS").ok().and_then(|v| v.parse().ok()).unwrap_or(4);
        let mut config = JoclConfig {
            sgns: SgnsOptions { dim: 48, epochs: 4, ..Default::default() },
            train_epochs,
            ..Default::default()
        };
        config.lbp.mode = env_schedule_mode();
        config
    }

    /// Run JOCL with a variant/feature-set override, reusing the shared
    /// signals.
    pub fn run_jocl(&self, variant: Variant, features: FeatureSet) -> jocl_core::JoclOutput {
        let config = JoclConfig { variant, features, ..self.jocl_config() };
        Jocl::new(config).run_with_signals(self.input(), &self.signals, Some(&self.labels))
    }

    /// Dense NP mention indexes of the test triples (evaluation universe).
    pub fn test_np_mentions(&self) -> Vec<usize> {
        self.test
            .iter()
            .flat_map(|&t| {
                [
                    NpMention { triple: t, slot: NpSlot::Subject }.dense(),
                    NpMention { triple: t, slot: NpSlot::Object }.dense(),
                ]
            })
            .collect()
    }

    /// Dense RP mention indexes of the test triples.
    pub fn test_rp_mentions(&self) -> Vec<usize> {
        self.test.iter().map(|&t| RpMention(t).dense()).collect()
    }

    /// Score an NP clustering on the test mentions.
    pub fn score_np(&self, predicted: &Clustering) -> ClusteringScores {
        evaluate_clustering_on(
            predicted,
            &self.dataset.gold.np_clustering(),
            &self.test_np_mentions(),
        )
    }

    /// Score an RP clustering on the test mentions.
    pub fn score_rp(&self, predicted: &Clustering) -> ClusteringScores {
        evaluate_clustering_on(
            predicted,
            &self.dataset.gold.rp_clustering(),
            &self.test_rp_mentions(),
        )
    }

    /// Entity linking accuracy on test mentions with gold links.
    pub fn score_entity_linking(&self, predicted: &[Option<EntityId>]) -> f64 {
        let idx = self.test_np_mentions();
        let p: Vec<Option<EntityId>> = idx.iter().map(|&i| predicted[i]).collect();
        let g: Vec<Option<EntityId>> =
            idx.iter().map(|&i| self.dataset.gold.np_entity[i]).collect();
        linking_accuracy(&p, &g).accuracy()
    }

    /// Relation linking accuracy on test mentions.
    pub fn score_relation_linking(&self, predicted: &[Option<RelationId>]) -> f64 {
        let idx = self.test_rp_mentions();
        let p: Vec<Option<RelationId>> = idx.iter().map(|&i| predicted[i]).collect();
        let g: Vec<Option<RelationId>> =
            idx.iter().map(|&i| self.dataset.gold.rp_relation[i]).collect();
        linking_accuracy(&p, &g).accuracy()
    }
}

/// Restrict the dataset's gold labels to the validation triples (paper
/// §4.1: the validation set trains the framework's parameters).
pub fn validation_labels(dataset: &Dataset, validation: &[TripleId]) -> ValidationLabels {
    let mut labels = ValidationLabels::empty(&dataset.okb);
    for &t in validation {
        for slot in [NpSlot::Subject, NpSlot::Object] {
            let d = NpMention { triple: t, slot }.dense();
            labels.np_entity[d] = dataset.gold.np_entity[d];
            labels.np_cluster[d] = Some(dataset.gold.np_cluster_labels[d]);
        }
        let d = RpMention(t).dense();
        labels.rp_relation[d] = dataset.gold.rp_relation[d];
        labels.rp_cluster[d] = Some(dataset.gold.rp_cluster_labels[d]);
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use jocl_datagen::reverb45k_like;

    #[test]
    fn context_prepares_consistent_split() {
        let ctx = ExperimentContext::prepare(reverb45k_like(3, 0.004), 3);
        assert_eq!(ctx.validation.len() + ctx.test.len(), ctx.dataset.okb.len());
        assert!(ctx.labels.num_labeled() > 0);
        // Labels only on validation triples.
        for &t in &ctx.test {
            let d = NpMention { triple: t, slot: NpSlot::Subject }.dense();
            assert!(ctx.labels.np_cluster[d].is_none());
        }
    }

    /// Satellite regression: the env knobs must accept mixed case and
    /// stray whitespace (`JOCL_SCHEDULE=Residual` used to panic), and
    /// still reject garbage with the typed message listing valid values.
    /// One sequential test so the process-global env is never torn.
    #[test]
    fn env_knobs_trim_and_ignore_case() {
        let check_schedule = |value: &str, expect: ScheduleMode| {
            std::env::set_var("JOCL_SCHEDULE", value);
            assert_eq!(env_schedule_mode(), expect, "JOCL_SCHEDULE={value:?}");
        };
        check_schedule("Residual", ScheduleMode::Residual);
        check_schedule(" residual\t", ScheduleMode::Residual);
        check_schedule("SYNCHRONOUS", ScheduleMode::Synchronous);
        check_schedule("  Sync ", ScheduleMode::Synchronous);
        check_schedule("", ScheduleMode::Synchronous);
        std::env::set_var("JOCL_SCHEDULE", "residul");
        let err = std::panic::catch_unwind(env_schedule_mode).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("'synchronous' or 'residual'"), "panic lists valid values: {msg}");
        std::env::remove_var("JOCL_SCHEDULE");
        assert_eq!(env_schedule_mode(), ScheduleMode::Synchronous);

        let check_batches = |value: &str, expect: usize| {
            std::env::set_var("JOCL_STREAM_BATCH", value);
            assert_eq!(env_stream_batches(), expect, "JOCL_STREAM_BATCH={value:?}");
        };
        check_batches("8", 8);
        check_batches("  16\t", 16);
        check_batches("", 4);
        std::env::set_var("JOCL_STREAM_BATCH", "zero");
        let err = std::panic::catch_unwind(env_stream_batches).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("positive integer"), "panic lists the valid form: {msg}");
        std::env::set_var("JOCL_STREAM_BATCH", "0");
        assert!(std::panic::catch_unwind(env_stream_batches).is_err(), "zero batches rejected");
        std::env::remove_var("JOCL_STREAM_BATCH");
        assert_eq!(env_stream_batches(), 4);

        // Serving knobs (PR-5 satellites): same trim/case-fold + typed
        // panic discipline.
        let check_threshold = |value: &str, expect: f64| {
            std::env::set_var("JOCL_COMPACT_THRESHOLD", value);
            assert_eq!(env_compact_threshold(), expect, "JOCL_COMPACT_THRESHOLD={value:?}");
        };
        check_threshold("0.25", 0.25);
        check_threshold(" 0.75\t", 0.75);
        check_threshold("0", 0.0);
        check_threshold("1", 1.0);
        check_threshold("", 0.5);
        check_threshold("OFF", f64::INFINITY);
        check_threshold(" off ", f64::INFINITY);
        for bad in ["1.5", "-0.1", "NaN", "inf", "half"] {
            std::env::set_var("JOCL_COMPACT_THRESHOLD", bad);
            let err = std::panic::catch_unwind(env_compact_threshold).unwrap_err();
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("[0, 1]"), "{bad:?} must list the valid form: {msg}");
        }
        std::env::remove_var("JOCL_COMPACT_THRESHOLD");
        assert_eq!(env_compact_threshold(), 0.5);

        std::env::set_var("JOCL_SNAPSHOT_DIR", "  /tmp/jocl snapshots ");
        assert_eq!(
            env_snapshot_dir(),
            Some(std::path::PathBuf::from("/tmp/jocl snapshots")),
            "inner whitespace survives, outer is trimmed"
        );
        std::env::set_var("JOCL_SNAPSHOT_DIR", "   ");
        assert_eq!(env_snapshot_dir(), None, "blank means unset");
        std::env::remove_var("JOCL_SNAPSHOT_DIR");
        assert_eq!(env_snapshot_dir(), None);
    }

    #[test]
    fn scoring_pipeline_runs() {
        let ctx = ExperimentContext::prepare(reverb45k_like(3, 0.004), 3);
        let c = jocl_baselines::morph_norm(&ctx.dataset.okb);
        let s = ctx.score_np(&c);
        assert!(s.average_f1() > 0.0 && s.average_f1() <= 1.0);
    }
}
