//! The `JOCL_*` environment knobs, consolidated.
//!
//! Every bin, gate and bench reads its configuration through these
//! helpers — one place owns the parsing discipline instead of each
//! call site growing its own:
//!
//! * surrounding whitespace is trimmed and keywords are ASCII
//!   case-folded (`JOCL_SCHEDULE=Residual`, `" off "` both work);
//! * empty / blank values mean "unset" (the default applies);
//! * `off` disables where a knob is disableable;
//! * anything else invalid **panics loudly listing the valid forms** —
//!   a typo must never silently select a different configuration.
//!
//! | Knob | Meaning | Default |
//! |---|---|---|
//! | `JOCL_SCALE` | dataset scale | `0.02` |
//! | `JOCL_SEED` | generator seed | `42` |
//! | `JOCL_SCHEDULE` | LBP schedule (`synchronous`/`residual`) | synchronous |
//! | `JOCL_STREAM_BATCH` | streaming arrival batches | `4` |
//! | `JOCL_SNAPSHOT_DIR` | warm-snapshot directory | process temp dir |
//! | `JOCL_COMPACT_THRESHOLD` | auto-compaction density, `off` disables | `0.5` |
//! | `JOCL_LISTEN` | serve socket (`tcp:HOST:PORT`/`unix:PATH`), `off` disables | stdin loop |
//! | `JOCL_MSG_STORE` | committed-message arena (`exact`/`quantized`) | exact |
//! | `JOCL_LINK_THRESHOLD` | min `link` candidate confidence, `off` reports all | `0.0` |
//! | `JOCL_SIDE_INFO` | side-information TSV to import, `off` disables | none |
//! | `JOCL_TRAIN_EPOCHS` | joint train/inference epochs, `0` skips refinement | `4` |
//! | `JOCL_CESI_T` | CESI baseline clustering threshold | `0.84` |
//! | `JOCL_SIST_T` | SIST baseline clustering threshold | `0.45` |
//! | `JOCL_BENCH_BASELINE` | bench-regression baseline JSON path | `BENCH_BASELINE.json` |
//! | `JOCL_BENCH_TOLERANCE` | bench-regression relative tolerance | `0.30` |
//! | `JOCL_MEM_CEILING_MB` | memory-gate ceiling in MiB | per-gate preset |
//! | `JOCL_METRICS` | metrics recording (`on`/`off`) | on |
//! | `JOCL_TRACE` | span tracing + TSV dump on exit (`on`/`off`) | off |
//!
//! The `jocl-lint` R1 rule (env-confinement) machine-enforces this
//! consolidation: `JOCL_*` reads anywhere else fail CI.

use jocl_core::ScheduleMode;
use jocl_fg::MessageStore;
use jocl_serve::ListenAddr;

/// `JOCL_SCALE` env var (default 0.02).
pub fn env_scale() -> f64 {
    std::env::var("JOCL_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.02)
}

/// `JOCL_SEED` env var (default 42).
pub fn env_seed() -> u64 {
    std::env::var("JOCL_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// `JOCL_SCHEDULE` env var: `residual` selects residual-scheduled message
/// passing, `synchronous`/`sync` (or unset) the full sweeps. Parsed
/// case-insensitively with surrounding whitespace trimmed (so
/// `JOCL_SCHEDULE=Residual` and `JOCL_SCHEDULE=" residual "` both work);
/// anything else aborts loudly listing the valid values — a typo must
/// not silently time the wrong engine.
pub fn env_schedule_mode() -> ScheduleMode {
    match std::env::var("JOCL_SCHEDULE") {
        Err(_) => ScheduleMode::Synchronous,
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "" | "sync" | "synchronous" => ScheduleMode::Synchronous,
            "residual" => ScheduleMode::Residual,
            _ => panic!("JOCL_SCHEDULE must be 'synchronous' or 'residual', got {v:?}"),
        },
    }
}

/// `JOCL_STREAM_BATCH` env var: how many arrival batches the streaming
/// replay (`stream` bin, `stream_scale` gate) splits the dataset into.
/// Default 4; whitespace-tolerant; anything but a positive integer
/// aborts loudly listing the valid form.
pub fn env_stream_batches() -> usize {
    match std::env::var("JOCL_STREAM_BATCH") {
        Err(_) => 4,
        Ok(v) => {
            let trimmed = v.trim();
            if trimmed.is_empty() {
                return 4;
            }
            match trimmed.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => panic!(
                    "JOCL_STREAM_BATCH must be a positive integer (number of arrival \
                     batches), got {v:?}"
                ),
            }
        }
    }
}

/// `JOCL_SNAPSHOT_DIR` env var: where the `serve` bin writes/reads warm
/// session snapshots (and, in listen mode, the replication feed log).
/// Whitespace-trimmed; unset or empty means "use a process-scoped temp
/// directory". The serve bin creates the directory on first snapshot;
/// an uncreatable path fails there with the offending path in the
/// error, never a silent fallback elsewhere.
pub fn env_snapshot_dir() -> Option<std::path::PathBuf> {
    match std::env::var("JOCL_SNAPSHOT_DIR") {
        Err(_) => None,
        Ok(v) => {
            let trimmed = v.trim();
            if trimmed.is_empty() {
                None
            } else {
                Some(std::path::PathBuf::from(trimmed))
            }
        }
    }
}

/// `JOCL_COMPACT_THRESHOLD` env var: the tombstone (dead-factor) density
/// above which the serving session compacts (cold rebuild from the
/// survivors). Default 0.5; whitespace-tolerant; `off` (case-folded)
/// disables automatic compaction. Anything else must parse as a finite
/// number in `[0, 1]` or the process aborts loudly listing the valid
/// forms — a typo must not silently pick a different compaction policy.
pub fn env_compact_threshold() -> f64 {
    match std::env::var("JOCL_COMPACT_THRESHOLD") {
        Err(_) => 0.5,
        Ok(v) => {
            let trimmed = v.trim();
            if trimmed.is_empty() {
                return 0.5;
            }
            if trimmed.eq_ignore_ascii_case("off") {
                return f64::INFINITY;
            }
            match trimmed.parse::<f64>() {
                Ok(t) if t.is_finite() && (0.0..=1.0).contains(&t) => t,
                _ => {
                    panic!("JOCL_COMPACT_THRESHOLD must be a density in [0, 1] or 'off', got {v:?}")
                }
            }
        }
    }
}

/// `JOCL_LISTEN` env var: where the `serve` bin listens for the line
/// protocol. Unset, blank or `off` (case-folded) means the PR-5
/// interactive stdin loop; otherwise `tcp:HOST:PORT` or `unix:PATH`
/// (port 0 picks a free port, reported on startup). A malformed spec
/// aborts loudly listing the valid forms — a typo must not silently
/// serve on stdin with no listener.
pub fn env_listen() -> Option<ListenAddr> {
    match std::env::var("JOCL_LISTEN") {
        Err(_) => None,
        Ok(v) => {
            let trimmed = v.trim();
            if trimmed.is_empty() || trimmed.eq_ignore_ascii_case("off") {
                return None;
            }
            match ListenAddr::parse(trimmed) {
                Ok(addr) => Some(addr),
                Err(e) => {
                    panic!("JOCL_LISTEN must be 'tcp:HOST:PORT', 'unix:PATH' or 'off': {e}")
                }
            }
        }
    }
}

/// `JOCL_MSG_STORE` env var: which committed-message representation a
/// long-lived session keeps between deltas. `exact` (or unset) commits
/// the engine's f64 arenas bit-for-bit; `quantized` halves their
/// resident bytes (per-block f64 anchors + f32 residuals). Trimmed and
/// case-folded; anything else aborts loudly listing the valid values —
/// a typo must not silently benchmark the wrong arena.
pub fn env_message_store() -> MessageStore {
    match std::env::var("JOCL_MSG_STORE") {
        Err(_) => MessageStore::Exact,
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "" | "exact" => MessageStore::Exact,
            "quantized" | "quant" => MessageStore::Quantized,
            _ => panic!("JOCL_MSG_STORE must be 'exact' or 'quantized', got {v:?}"),
        },
    }
}

/// `JOCL_LINK_THRESHOLD` env var: the default minimum calibrated
/// confidence a `link` candidate must reach to be reported
/// (`ServeConfig::link_threshold`). Default 0.0 (report everything);
/// whitespace-tolerant; `off` (case-folded) also reports everything.
/// Anything else must parse as a finite confidence in `[0, 1]` or the
/// process aborts loudly listing the valid forms.
pub fn env_link_threshold() -> f64 {
    match std::env::var("JOCL_LINK_THRESHOLD") {
        Err(_) => 0.0,
        Ok(v) => {
            let trimmed = v.trim();
            if trimmed.is_empty() || trimmed.eq_ignore_ascii_case("off") {
                return 0.0;
            }
            match trimmed.parse::<f64>() {
                Ok(t) if t.is_finite() && (0.0..=1.0).contains(&t) => t,
                _ => {
                    panic!("JOCL_LINK_THRESHOLD must be a confidence in [0, 1] or 'off', got {v:?}")
                }
            }
        }
    }
}

/// `JOCL_SIDE_INFO` env var: path of a side-information TSV
/// (`jocl_kb::tsv::read_side_kb` format — alias tables / external-KB
/// link imports) the `serve` bin threads into inference and the `link`
/// command. Whitespace-trimmed; unset, blank or `off` (case-folded)
/// means no side information. The path is read at startup; a missing or
/// malformed file fails there with the offending path and line in the
/// error, never a silent fallback to side-info-free serving.
pub fn env_side_info() -> Option<std::path::PathBuf> {
    match std::env::var("JOCL_SIDE_INFO") {
        Err(_) => None,
        Ok(v) => {
            let trimmed = v.trim();
            if trimmed.is_empty() || trimmed.eq_ignore_ascii_case("off") {
                None
            } else {
                Some(std::path::PathBuf::from(trimmed))
            }
        }
    }
}

/// `JOCL_TRAIN_EPOCHS` env var: how many joint train/inference epochs
/// the pipeline runs (0 skips iterative refinement entirely, useful for
/// ablations). Default 4; whitespace-tolerant; anything but a
/// non-negative integer aborts loudly listing the valid form.
pub fn env_train_epochs() -> usize {
    match std::env::var("JOCL_TRAIN_EPOCHS") {
        Err(_) => 4,
        Ok(v) => {
            let trimmed = v.trim();
            if trimmed.is_empty() {
                return 4;
            }
            match trimmed.parse::<usize>() {
                Ok(n) => n,
                _ => panic!(
                    "JOCL_TRAIN_EPOCHS must be a non-negative integer (0 skips \
                     refinement), got {v:?}"
                ),
            }
        }
    }
}

/// Shared parser for the unit-interval baseline thresholds
/// (`JOCL_CESI_T`, `JOCL_SIST_T`): trimmed, default on unset/blank,
/// typed panic outside `[0, 1]`.
fn env_unit_threshold(name: &str, default: f64) -> f64 {
    match std::env::var(name) {
        Err(_) => default,
        Ok(v) => {
            let trimmed = v.trim();
            if trimmed.is_empty() {
                return default;
            }
            match trimmed.parse::<f64>() {
                Ok(t) if t.is_finite() && (0.0..=1.0).contains(&t) => t,
                _ => panic!("{name} must be a threshold in [0, 1], got {v:?}"),
            }
        }
    }
}

/// `JOCL_CESI_T` env var: the CESI-baseline hierarchical-clustering
/// cut threshold used by the `table1` bin (default 0.84, the paper's
/// reported operating point).
pub fn env_cesi_threshold() -> f64 {
    env_unit_threshold("JOCL_CESI_T", 0.84)
}

/// `JOCL_SIST_T` env var: the SIST-baseline clustering threshold used
/// by the `table1` bin (default 0.45).
pub fn env_sist_threshold() -> f64 {
    env_unit_threshold("JOCL_SIST_T", 0.45)
}

/// `JOCL_BENCH_BASELINE` env var: where the bench-regression gate reads
/// (and `--update` writes) its baseline JSON. Whitespace-trimmed; unset
/// or blank means the checked-in `BENCH_BASELINE.json` at the repo root.
pub fn env_bench_baseline() -> Option<std::path::PathBuf> {
    match std::env::var("JOCL_BENCH_BASELINE") {
        Err(_) => None,
        Ok(v) => {
            let trimmed = v.trim();
            if trimmed.is_empty() {
                None
            } else {
                Some(std::path::PathBuf::from(trimmed))
            }
        }
    }
}

/// `JOCL_BENCH_TOLERANCE` env var: the relative slack the
/// bench-regression gate allows around each calibrated baseline metric.
/// Default 0.30 (±30%); whitespace-tolerant; anything but a finite
/// non-negative number aborts loudly listing the valid form.
pub fn env_bench_tolerance() -> f64 {
    match std::env::var("JOCL_BENCH_TOLERANCE") {
        Err(_) => 0.30,
        Ok(v) => {
            let trimmed = v.trim();
            if trimmed.is_empty() {
                return 0.30;
            }
            match trimmed.parse::<f64>() {
                Ok(t) if t.is_finite() && t >= 0.0 => t,
                _ => panic!(
                    "JOCL_BENCH_TOLERANCE must be a non-negative relative slack \
                     (e.g. 0.30 for ±30%), got {v:?}"
                ),
            }
        }
    }
}

/// `JOCL_MEM_CEILING_MB` env var: the resident-memory ceiling (MiB) a
/// memory gate asserts against. Each gate passes its own `default`
/// preset (the paper-scale gates budget differently from the stress
/// preset). Whitespace-tolerant; anything but a positive integer aborts
/// loudly listing the valid form.
pub fn env_mem_ceiling_mb(default: u64) -> u64 {
    match std::env::var("JOCL_MEM_CEILING_MB") {
        Err(_) => default,
        Ok(v) => {
            let trimmed = v.trim();
            if trimmed.is_empty() {
                return default;
            }
            match trimmed.parse::<u64>() {
                Ok(n) if n >= 1 => n,
                _ => panic!(
                    "JOCL_MEM_CEILING_MB must be a positive integer (ceiling in MiB), got {v:?}"
                ),
            }
        }
    }
}

/// Shared parser for the observability switches (`JOCL_METRICS`,
/// `JOCL_TRACE`): trimmed, case-folded, `on`/`1`/`true` and
/// `off`/`0`/`false` accepted, default on unset/blank, typed panic on
/// anything else.
fn env_switch(name: &str, default: bool) -> bool {
    match std::env::var(name) {
        Err(_) => default,
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "" => default,
            "on" | "1" | "true" => true,
            "off" | "0" | "false" => false,
            _ => panic!("{name} must be 'on' or 'off', got {v:?}"),
        },
    }
}

/// `JOCL_METRICS` env var: whether the `jocl_obs` metric registry
/// records events (counters / histograms on the hot paths). Default on;
/// `off` makes every recording site a branch-and-return, for overhead
/// A/B runs — the `obs_scale` gate certifies inference is bitwise
/// identical either way.
pub fn env_metrics() -> bool {
    env_switch("JOCL_METRICS", true)
}

/// `JOCL_TRACE` env var: whether `jocl_obs` span tracing records into
/// its bounded ring (and the bins dump the span TSV to stderr on exit).
/// Default off.
pub fn env_trace() -> bool {
    env_switch("JOCL_TRACE", false)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite regression: the env knobs must accept mixed case and
    /// stray whitespace (`JOCL_SCHEDULE=Residual` used to panic), and
    /// still reject garbage with the typed message listing valid values.
    /// One sequential test so the process-global env is never torn.
    #[test]
    fn env_knobs_trim_and_ignore_case() {
        let check_schedule = |value: &str, expect: ScheduleMode| {
            std::env::set_var("JOCL_SCHEDULE", value);
            assert_eq!(env_schedule_mode(), expect, "JOCL_SCHEDULE={value:?}");
        };
        check_schedule("Residual", ScheduleMode::Residual);
        check_schedule(" residual\t", ScheduleMode::Residual);
        check_schedule("SYNCHRONOUS", ScheduleMode::Synchronous);
        check_schedule("  Sync ", ScheduleMode::Synchronous);
        check_schedule("", ScheduleMode::Synchronous);
        std::env::set_var("JOCL_SCHEDULE", "residul");
        let err = std::panic::catch_unwind(env_schedule_mode).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("'synchronous' or 'residual'"), "panic lists valid values: {msg}");
        std::env::remove_var("JOCL_SCHEDULE");
        assert_eq!(env_schedule_mode(), ScheduleMode::Synchronous);

        let check_batches = |value: &str, expect: usize| {
            std::env::set_var("JOCL_STREAM_BATCH", value);
            assert_eq!(env_stream_batches(), expect, "JOCL_STREAM_BATCH={value:?}");
        };
        check_batches("8", 8);
        check_batches("  16\t", 16);
        check_batches("", 4);
        std::env::set_var("JOCL_STREAM_BATCH", "zero");
        let err = std::panic::catch_unwind(env_stream_batches).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("positive integer"), "panic lists the valid form: {msg}");
        std::env::set_var("JOCL_STREAM_BATCH", "0");
        assert!(std::panic::catch_unwind(env_stream_batches).is_err(), "zero batches rejected");
        std::env::remove_var("JOCL_STREAM_BATCH");
        assert_eq!(env_stream_batches(), 4);

        // Serving knobs (PR-5 satellites): same trim/case-fold + typed
        // panic discipline.
        let check_threshold = |value: &str, expect: f64| {
            std::env::set_var("JOCL_COMPACT_THRESHOLD", value);
            assert_eq!(env_compact_threshold(), expect, "JOCL_COMPACT_THRESHOLD={value:?}");
        };
        check_threshold("0.25", 0.25);
        check_threshold(" 0.75\t", 0.75);
        check_threshold("0", 0.0);
        check_threshold("1", 1.0);
        check_threshold("", 0.5);
        check_threshold("OFF", f64::INFINITY);
        check_threshold(" off ", f64::INFINITY);
        for bad in ["1.5", "-0.1", "NaN", "inf", "half"] {
            std::env::set_var("JOCL_COMPACT_THRESHOLD", bad);
            let err = std::panic::catch_unwind(env_compact_threshold).unwrap_err();
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("[0, 1]"), "{bad:?} must list the valid form: {msg}");
        }
        std::env::remove_var("JOCL_COMPACT_THRESHOLD");
        assert_eq!(env_compact_threshold(), 0.5);

        std::env::set_var("JOCL_SNAPSHOT_DIR", "  /tmp/jocl snapshots ");
        assert_eq!(
            env_snapshot_dir(),
            Some(std::path::PathBuf::from("/tmp/jocl snapshots")),
            "inner whitespace survives, outer is trimmed"
        );
        std::env::set_var("JOCL_SNAPSHOT_DIR", "   ");
        assert_eq!(env_snapshot_dir(), None, "blank means unset");
        std::env::remove_var("JOCL_SNAPSHOT_DIR");
        assert_eq!(env_snapshot_dir(), None);

        // The networked-serving knob (PR-6): same discipline, `off`
        // keeps the stdin loop.
        let check_listen = |value: &str, expect: Option<ListenAddr>| {
            std::env::set_var("JOCL_LISTEN", value);
            assert_eq!(env_listen(), expect, "JOCL_LISTEN={value:?}");
        };
        check_listen("tcp:127.0.0.1:0", Some(ListenAddr::Tcp("127.0.0.1:0".into())));
        check_listen(" tcp:0.0.0.0:7070\t", Some(ListenAddr::Tcp("0.0.0.0:7070".into())));
        check_listen("unix:/tmp/jocl.sock", Some(ListenAddr::Unix("/tmp/jocl.sock".into())));
        check_listen("", None);
        check_listen("  OFF ", None);
        for bad in ["7070", "tcp:", "udp:1:2", "unix:"] {
            std::env::set_var("JOCL_LISTEN", bad);
            let err = std::panic::catch_unwind(env_listen).unwrap_err();
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("tcp:HOST:PORT"), "{bad:?} must list the valid forms: {msg}");
        }
        std::env::remove_var("JOCL_LISTEN");
        assert_eq!(env_listen(), None);

        // The message-arena knob (PR-7): same discipline.
        let check_store = |value: &str, expect: MessageStore| {
            std::env::set_var("JOCL_MSG_STORE", value);
            assert_eq!(env_message_store(), expect, "JOCL_MSG_STORE={value:?}");
        };
        check_store("exact", MessageStore::Exact);
        check_store(" Quantized\t", MessageStore::Quantized);
        check_store("QUANT", MessageStore::Quantized);
        check_store("", MessageStore::Exact);
        std::env::set_var("JOCL_MSG_STORE", "f32");
        let err = std::panic::catch_unwind(env_message_store).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("'exact' or 'quantized'"), "panic lists valid values: {msg}");
        std::env::remove_var("JOCL_MSG_STORE");
        assert_eq!(env_message_store(), MessageStore::Exact);

        // The entity-linking knobs (PR-8): same discipline.
        let check_link = |value: &str, expect: f64| {
            std::env::set_var("JOCL_LINK_THRESHOLD", value);
            assert_eq!(env_link_threshold(), expect, "JOCL_LINK_THRESHOLD={value:?}");
        };
        check_link("0.25", 0.25);
        check_link(" 0.9\t", 0.9);
        check_link("0", 0.0);
        check_link("1", 1.0);
        check_link("", 0.0);
        check_link("OFF", 0.0);
        check_link(" off ", 0.0);
        for bad in ["1.5", "-0.1", "NaN", "inf", "maybe"] {
            std::env::set_var("JOCL_LINK_THRESHOLD", bad);
            let err = std::panic::catch_unwind(env_link_threshold).unwrap_err();
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("[0, 1]"), "{bad:?} must list the valid form: {msg}");
        }
        std::env::remove_var("JOCL_LINK_THRESHOLD");
        assert_eq!(env_link_threshold(), 0.0);

        std::env::set_var("JOCL_SIDE_INFO", "  /tmp/side info.tsv ");
        assert_eq!(
            env_side_info(),
            Some(std::path::PathBuf::from("/tmp/side info.tsv")),
            "inner whitespace survives, outer is trimmed"
        );
        std::env::set_var("JOCL_SIDE_INFO", "   ");
        assert_eq!(env_side_info(), None, "blank means unset");
        std::env::set_var("JOCL_SIDE_INFO", " Off ");
        assert_eq!(env_side_info(), None, "'off' disables side information");
        std::env::remove_var("JOCL_SIDE_INFO");
        assert_eq!(env_side_info(), None);

        // The consolidated stragglers (PR-9, flushed out by jocl-lint R1):
        // same discipline as every knob above.
        std::env::set_var("JOCL_TRAIN_EPOCHS", " 2\t");
        assert_eq!(env_train_epochs(), 2);
        std::env::set_var("JOCL_TRAIN_EPOCHS", "0");
        assert_eq!(env_train_epochs(), 0, "zero epochs skips refinement");
        std::env::set_var("JOCL_TRAIN_EPOCHS", "four");
        let err = std::panic::catch_unwind(env_train_epochs).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("non-negative integer"), "panic lists the valid form: {msg}");
        std::env::remove_var("JOCL_TRAIN_EPOCHS");
        assert_eq!(env_train_epochs(), 4);

        std::env::set_var("JOCL_CESI_T", " 0.5 ");
        assert_eq!(env_cesi_threshold(), 0.5);
        std::env::set_var("JOCL_CESI_T", "1.5");
        let err = std::panic::catch_unwind(env_cesi_threshold).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("[0, 1]"), "panic lists the valid form: {msg}");
        std::env::remove_var("JOCL_CESI_T");
        assert_eq!(env_cesi_threshold(), 0.84);
        std::env::set_var("JOCL_SIST_T", "0.6");
        assert_eq!(env_sist_threshold(), 0.6);
        std::env::remove_var("JOCL_SIST_T");
        assert_eq!(env_sist_threshold(), 0.45);

        std::env::set_var("JOCL_BENCH_BASELINE", "  /tmp/base line.json ");
        assert_eq!(
            env_bench_baseline(),
            Some(std::path::PathBuf::from("/tmp/base line.json")),
            "inner whitespace survives, outer is trimmed"
        );
        std::env::set_var("JOCL_BENCH_BASELINE", "   ");
        assert_eq!(env_bench_baseline(), None, "blank means unset");
        std::env::remove_var("JOCL_BENCH_BASELINE");
        assert_eq!(env_bench_baseline(), None);

        std::env::set_var("JOCL_BENCH_TOLERANCE", " 0.5\t");
        assert_eq!(env_bench_tolerance(), 0.5);
        std::env::set_var("JOCL_BENCH_TOLERANCE", "-0.1");
        let err = std::panic::catch_unwind(env_bench_tolerance).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("non-negative"), "panic lists the valid form: {msg}");
        std::env::remove_var("JOCL_BENCH_TOLERANCE");
        assert_eq!(env_bench_tolerance(), 0.30);

        // The observability switches (PR-10): same discipline.
        let check_metrics = |value: &str, expect: bool| {
            std::env::set_var("JOCL_METRICS", value);
            assert_eq!(env_metrics(), expect, "JOCL_METRICS={value:?}");
        };
        check_metrics("on", true);
        check_metrics(" OFF\t", false);
        check_metrics("1", true);
        check_metrics("0", false);
        check_metrics("True", true);
        check_metrics("false", false);
        check_metrics("", true);
        std::env::set_var("JOCL_METRICS", "maybe");
        let err = std::panic::catch_unwind(env_metrics).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("'on' or 'off'"), "panic lists valid values: {msg}");
        std::env::remove_var("JOCL_METRICS");
        assert!(env_metrics(), "metrics default on");

        std::env::set_var("JOCL_TRACE", " On ");
        assert!(env_trace());
        std::env::set_var("JOCL_TRACE", "off");
        assert!(!env_trace());
        std::env::set_var("JOCL_TRACE", "yes");
        assert!(std::panic::catch_unwind(env_trace).is_err(), "'yes' is not a valid switch");
        std::env::remove_var("JOCL_TRACE");
        assert!(!env_trace(), "tracing default off");

        std::env::set_var("JOCL_MEM_CEILING_MB", " 1024 ");
        assert_eq!(env_mem_ceiling_mb(8192), 1024);
        std::env::set_var("JOCL_MEM_CEILING_MB", "0");
        let err = std::panic::catch_unwind(|| env_mem_ceiling_mb(8192)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("positive integer"), "panic lists the valid form: {msg}");
        std::env::remove_var("JOCL_MEM_CEILING_MB");
        assert_eq!(env_mem_ceiling_mb(8192), 8192, "per-gate preset is the default");
        assert_eq!(env_mem_ceiling_mb(32_768), 32_768);
    }
}
