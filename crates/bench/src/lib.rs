#![forbid(unsafe_code)]
//! # jocl-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§4). One binary per artifact:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — NP canonicalization (8 methods × 2 datasets) |
//! | `table2` | Table 2 — RP canonicalization |
//! | `table3` | Table 3 — OKB entity linking accuracy |
//! | `fig3`   | Figure 3 — OKB relation linking accuracy |
//! | `table4` | Table 4 — JOCLcano / JOCLlink ablation |
//! | `table5_fig4` | Table 5 + Figure 4 — feature-combination variants |
//! | `fig2_convergence` | LBP convergence (§3.4's "within twenty iterations") |
//!
//! Scale control: `JOCL_SCALE` (default 0.02 ≈ 900 triples for ReVerb-like;
//! `1.0` = paper scale), `JOCL_SEED` (default 42). Runs print ASCII tables
//! that are archived in `EXPERIMENTS.md`.

pub mod env;
pub mod runner;

pub use env::{
    env_bench_baseline, env_bench_tolerance, env_cesi_threshold, env_compact_threshold,
    env_link_threshold, env_listen, env_mem_ceiling_mb, env_message_store, env_metrics, env_scale,
    env_schedule_mode, env_seed, env_side_info, env_sist_threshold, env_snapshot_dir,
    env_stream_batches, env_trace, env_train_epochs,
};
pub use runner::{ExperimentContext, MethodScores};
