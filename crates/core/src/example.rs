//! The paper's running example (Figure 1a), as a self-contained fixture.
//!
//! Three OIE triples:
//!
//! ```text
//! <s1: University of Maryland, p1: locate in,              o1: Maryland>
//! <s2: UMD,                    p2: be a member of,         o2: Universitas 21>
//! <s3: University of Virginia, p3: be an early member of,  o3: U21>
//! ```
//!
//! and a CKB with entities e1 "maryland", e2 "universitas 21",
//! e3 "university of virginia", e4 "university of maryland" and relations
//! r1 "location.containedby", r2 "organizations_founded".
//!
//! The expected joint result (Figure 1a, blue):
//! * NP groups {s1, s2}, {s3}, {o1}, {o2, o3};
//! * links s1,s2 → e4; s3 → e3; o1 → e1; o2,o3 → e2;
//! * RP groups {p1}, {p2, p3}; links p1 → r1; p2,p3 → r2.
//!
//! Used by the quickstart example, the integration tests and the docs.

use crate::config::JoclConfig;
use crate::pipeline::JoclInput;
use jocl_embed::SgnsOptions;
use jocl_kb::{Ckb, CkbRelation, Entity, EntityId, Okb, RelationId, Triple};
use jocl_rules::ParaphraseStore;

/// The assembled fixture.
pub struct Figure1 {
    /// The three OIE triples.
    pub okb: Okb,
    /// The CKB of Figure 1(a).
    pub ckb: Ckb,
    /// A small PPDB covering the aliases.
    pub ppdb: ParaphraseStore,
    /// A small corpus for embedding training.
    pub corpus: Vec<Vec<String>>,
    /// e1 "maryland".
    pub e_maryland: EntityId,
    /// e2 "universitas 21".
    pub e_u21: EntityId,
    /// e3 "university of virginia".
    pub e_uva: EntityId,
    /// e4 "university of maryland".
    pub e_umd: EntityId,
    /// r1 "location.containedby".
    pub r_location: RelationId,
    /// r2 "organizations_founded".
    pub r_member: RelationId,
}

impl Figure1 {
    /// Borrowed input view for [`crate::Jocl::run`].
    pub fn input(&self) -> JoclInput<'_> {
        JoclInput { okb: &self.okb, ckb: &self.ckb, ppdb: &self.ppdb, corpus: &self.corpus }
    }

    /// A configuration suited to this tiny instance (no training data, a
    /// small embedding model, exact-ish LBP).
    pub fn config(&self) -> JoclConfig {
        JoclConfig {
            train_epochs: 0,
            sgns: SgnsOptions { dim: 16, epochs: 10, ..Default::default() },
            lbp: jocl_fg::LbpOptions {
                max_iters: 30,
                tol: 1e-6,
                damping: 0.1,
                threads: 1,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// Build the Figure 1(a) fixture.
pub fn figure1() -> Figure1 {
    let mut ckb = Ckb::new();
    let e_maryland = ckb.add_entity(Entity {
        name: "maryland".into(),
        aliases: vec!["Maryland".into()],
        types: vec!["place".into()],
    });
    let e_u21 = ckb.add_entity(Entity {
        name: "universitas 21".into(),
        aliases: vec!["Universitas 21".into(), "U21".into()],
        types: vec!["organization".into()],
    });
    let e_uva = ckb.add_entity(Entity {
        name: "university of virginia".into(),
        aliases: vec!["University of Virginia".into(), "UVA".into()],
        types: vec!["organization".into(), "university".into()],
    });
    let e_umd = ckb.add_entity(Entity {
        name: "university of maryland".into(),
        aliases: vec!["University of Maryland".into(), "UMD".into()],
        types: vec!["organization".into(), "university".into()],
    });
    let r_location = ckb.add_relation(CkbRelation {
        name: "location.containedby".into(),
        surface_forms: vec!["locate in".into(), "be located in".into()],
        category: "location".into(),
    });
    let r_member = ckb.add_relation(CkbRelation {
        name: "organizations_founded".into(),
        surface_forms: vec!["be a member of".into(), "belong to".into()],
        category: "membership".into(),
    });
    // Facts of Figure 1(a): arrows in the CKB panel.
    ckb.add_fact(e_umd, r_location, e_maryland);
    ckb.add_fact(e_umd, r_member, e_u21);
    ckb.add_fact(e_uva, r_member, e_u21);
    // Wikipedia-style anchor statistics. "Maryland" is ambiguous between
    // the state (dominant) and the university.
    ckb.add_anchor("Maryland", e_maryland, 90);
    ckb.add_anchor("Maryland", e_umd, 10);
    ckb.add_anchor("University of Maryland", e_umd, 80);
    ckb.add_anchor("UMD", e_umd, 40);
    ckb.add_anchor("University of Virginia", e_uva, 70);
    ckb.add_anchor("UVA", e_uva, 30);
    ckb.add_anchor("Universitas 21", e_u21, 50);
    ckb.add_anchor("U21", e_u21, 25);

    let mut okb = Okb::new();
    okb.add_triple(Triple::new("University of Maryland", "locate in", "Maryland"));
    okb.add_triple(Triple::new("UMD", "be a member of", "Universitas 21"));
    okb.add_triple(Triple::new("University of Virginia", "be an early member of", "U21"));

    let ppdb = ParaphraseStore::from_groups([
        vec!["University of Maryland", "UMD"],
        vec!["Universitas 21", "U21"],
        vec!["be a member of", "be an early member of", "belong to"],
    ]);

    // A corpus in which aliases share contexts, as the real Common Crawl
    // would provide.
    let raw: &[&str] = &[
        "university of maryland locate in maryland",
        "umd locate in maryland",
        "umd be a member of universitas 21",
        "university of maryland be a member of u21",
        "university of virginia be a member of universitas 21",
        "university of virginia be an early member of u21",
        "universitas 21 include umd",
        "u21 include university of virginia",
    ];
    let corpus: Vec<Vec<String>> = raw.iter().map(|s| jocl_text::tokenize(s)).collect();

    Figure1 { okb, ckb, ppdb, corpus, e_maryland, e_u21, e_uva, e_umd, r_location, r_member }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_matches_figure_1a() {
        let ex = figure1();
        assert_eq!(ex.okb.len(), 3);
        assert_eq!(ex.ckb.num_entities(), 4);
        assert_eq!(ex.ckb.num_relations(), 2);
        assert_eq!(ex.ckb.num_facts(), 3);
        assert!(ex.ckb.has_fact(ex.e_umd, ex.r_member, ex.e_u21));
    }

    #[test]
    fn candidate_generation_finds_gold_entities() {
        let ex = figure1();
        let gen = jocl_kb::CandidateGen::new(&ex.ckb, Default::default());
        for (surface, gold) in [
            ("University of Maryland", ex.e_umd),
            ("UMD", ex.e_umd),
            ("Maryland", ex.e_maryland),
            ("U21", ex.e_u21),
            ("University of Virginia", ex.e_uva),
        ] {
            let cands = gen.entity_candidates(surface);
            assert!(
                cands.iter().any(|c| c.id == gold),
                "{surface} should have its gold entity among candidates"
            );
        }
    }
}
