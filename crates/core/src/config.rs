//! JOCL configuration: variants, feature sets, and all hyperparameters.

use jocl_embed::SgnsOptions;
use jocl_fg::LbpOptions;
use jocl_kb::candidates::CandidateOptions;

/// Which parts of the model are active — reproduces the paper's Table 4
/// ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The full joint model (F1–F6, U1–U7).
    Full,
    /// `JOCLcano`: canonicalization factors only (F1–F3, U1–U3).
    CanoOnly,
    /// `JOCLlink`: linking factors only (F4–F6, U4).
    LinkOnly,
    /// Full structure minus the consistency factors U5–U7 — the two tasks
    /// share one graph but cannot interact (used to isolate the
    /// interaction effect).
    NoConsistency,
}

/// Which feature functions each F factor uses — reproduces the paper's
/// Table 5 variants (JOCL-single / JOCL-double / JOCL-all).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureSet {
    /// F1/F3: f_idf; F2: f_idf; F4/F6: f_pop; F5: f_ngram.
    Single,
    /// F1/F3: f_idf, f_emb; F2: f_idf, f_emb; F4/F6: f_pop, f'_emb;
    /// F5: f_ngram, f'_emb.
    Double,
    /// The full vectors of §3.1.3/§3.1.4/§3.2.3/§3.2.4.
    All,
}

impl FeatureSet {
    /// Number of features for the NP canonicalization factors F1/F3.
    pub fn np_canon_len(self) -> usize {
        match self {
            FeatureSet::Single => 1,
            FeatureSet::Double => 2,
            FeatureSet::All => 3,
        }
    }

    /// Number of features for the RP canonicalization factor F2.
    pub fn rp_canon_len(self) -> usize {
        match self {
            FeatureSet::Single => 1,
            FeatureSet::Double => 2,
            FeatureSet::All => 5,
        }
    }

    /// Number of features for the entity linking factors F4/F6.
    pub fn entity_link_len(self) -> usize {
        match self {
            FeatureSet::Single => 1,
            FeatureSet::Double => 2,
            FeatureSet::All => 3,
        }
    }

    /// Number of features for the relation linking factor F5.
    pub fn relation_link_len(self) -> usize {
        match self {
            FeatureSet::Single => 1,
            FeatureSet::Double => 2,
            FeatureSet::All => 4,
        }
    }
}

/// Full configuration of a JOCL run.
#[derive(Debug, Clone)]
pub struct JoclConfig {
    /// Model variant (ablations).
    pub variant: Variant,
    /// Feature combination (Table 5).
    pub features: FeatureSet,
    /// IDF-token-overlap blocking threshold for canonicalization pair
    /// generation (paper §4.1: 0.5).
    pub blocking_threshold: f64,
    /// Candidate generation options (top-K etc.).
    pub candidates: CandidateOptions,
    /// LBP options; the phased schedule of §3.4 is installed by the
    /// pipeline regardless of `schedule` here. The update-selection
    /// `mode` **is** honored: set it to [`jocl_fg::ScheduleMode::Residual`]
    /// to run priority-scheduled message passing (same fixed point within
    /// `tol`, far fewer message updates at scale — see
    /// `Diagnostics::lbp.message_updates`).
    pub lbp: LbpOptions,
    /// Learning rate for weight training (paper §4.1: 0.05).
    pub learning_rate: f64,
    /// Training epochs (clamped+free LBP per epoch); 0 disables learning.
    pub train_epochs: usize,
    /// Cap on transitivity triangles (U1–U3) per variable type.
    pub max_triangles: usize,
    /// Identical-phrase mention groups up to this size become cliques;
    /// larger groups are chained (keeps blocking near-linear).
    pub max_group_clique: usize,
    /// Cross-phrase pair cap: at most this many mentions per side.
    pub cross_cap: usize,
    /// Merge final clusters through shared link targets (Assumption 1
    /// applied at decode time).
    pub merge_by_link: bool,
    /// Worker threads for the sharded graph build (`0` = all hardware
    /// threads). The built graph is identical for any value; this also
    /// determines the shard count of the per-blocking-key feature
    /// computation.
    pub build_threads: usize,
    /// SGNS options for the embedding signal.
    pub sgns: SgnsOptions,
    /// Seed for any stochastic tie-breaking.
    pub seed: u64,
    /// Committed-message representation a long-lived session keeps
    /// between deltas ([`jocl_fg::MessageStore`]). `Exact` (the default)
    /// commits the engine's f64 arenas bit-for-bit; `Quantized` halves
    /// their resident bytes (per-block f64 anchors + f32 residuals) at
    /// the cost of a bounded quantization error on resume. Restart and
    /// replica parity hold under either value, but a snapshot taken
    /// under one store cannot restore into a session configured with
    /// the other (the serve envelope fingerprints this field).
    pub message_store: jocl_fg::MessageStore,
    /// Previously learned weights (see `crate::persist`). When set,
    /// training is skipped and these weights drive inference directly —
    /// the serving-mode path. The pipeline **panics** if their shape does
    /// not match the built graph's parameter groups (e.g. a weight file
    /// persisted under a different `FeatureSet`): stale weights should
    /// fail fast, not silently retrain or mis-infer.
    pub pretrained_params: Option<jocl_fg::Params>,
    /// Imported external-KB side information (alias tables, link
    /// dictionaries — [`jocl_kb::SideKb`]). When set, every surface form
    /// with an imported link gains an extra unary potential on its
    /// linking variable (classes [`classes::S1`]/[`classes::S2`],
    /// parameter group γ), and imported targets missing from the
    /// retrieved candidate list are appended to it. `None` — or an
    /// **empty** table — leaves inference bitwise-identical to the
    /// side-info-free pipeline. Shared by `Arc` so batch, incremental
    /// and serving planes pin the same table; the serve snapshot
    /// fingerprint records its [`jocl_kb::SideKb::fingerprint`].
    pub side_info: Option<std::sync::Arc<jocl_kb::SideKb>>,
}

impl Default for JoclConfig {
    fn default() -> Self {
        Self {
            variant: Variant::Full,
            features: FeatureSet::All,
            blocking_threshold: 0.5,
            candidates: CandidateOptions::default(),
            lbp: LbpOptions {
                max_iters: 20,
                tol: 1e-3,
                damping: 0.1,
                threads: 4,
                ..Default::default()
            },
            learning_rate: 0.05,
            train_epochs: 6,
            max_triangles: 50_000,
            max_group_clique: 5,
            cross_cap: 3,
            merge_by_link: true,
            build_threads: 0,
            sgns: SgnsOptions::default(),
            seed: 7,
            message_store: jocl_fg::MessageStore::Exact,
            pretrained_params: None,
            side_info: None,
        }
    }
}

/// Factor scheduling classes, mirroring the paper's message-passing order
/// (§3.4).
pub mod classes {
    /// F1: subject canonicalization.
    pub const F1: u8 = 1;
    /// F2: predicate canonicalization.
    pub const F2: u8 = 2;
    /// F3: object canonicalization.
    pub const F3: u8 = 3;
    /// U1: subject transitivity.
    pub const U1: u8 = 4;
    /// U2: predicate transitivity.
    pub const U2: u8 = 5;
    /// U3: object transitivity.
    pub const U3: u8 = 6;
    /// F4: subject linking.
    pub const F4: u8 = 7;
    /// F5: predicate linking.
    pub const F5: u8 = 8;
    /// F6: object linking.
    pub const F6: u8 = 9;
    /// U4: fact inclusion.
    pub const U4: u8 = 10;
    /// U5: subject consistency.
    pub const U5: u8 = 11;
    /// U6: predicate consistency.
    pub const U6: u8 = 12;
    /// U7: object consistency.
    pub const U7: u8 = 13;
    /// S1: NP side-information potentials (imported alias/link tables on
    /// entity-linking variables).
    pub const S1: u8 = 14;
    /// S2: RP side-information potentials.
    pub const S2: u8 = 15;

    /// Variable class of canonicalization variables.
    pub const VAR_CANON: u8 = 0;
    /// Variable class of linking variables.
    pub const VAR_LINK: u8 = 1;
}

/// The paper's phased LBP schedule (§3.4): canonicalization factors →
/// transitivity → linking factors (side-information potentials ride in
/// the same phase — they are extra unary evidence on the same linking
/// variables) → fact inclusion → consistency; then canonicalization
/// variables → linking variables. A class with no factors is a no-op, so
/// runs without side information are untouched by S1/S2.
pub fn paper_schedule() -> jocl_fg::Schedule {
    use classes::*;
    jocl_fg::Schedule::Phased {
        factor_phases: vec![
            vec![F1, F2, F3],
            vec![U1, U2, U3],
            vec![F4, F5, F6, S1, S2],
            vec![U4],
            vec![U5, U6, U7],
        ],
        var_phases: vec![vec![VAR_CANON], vec![VAR_LINK]],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_lengths_match_paper_vectors() {
        assert_eq!(FeatureSet::All.np_canon_len(), 3); // idf, emb, ppdb
        assert_eq!(FeatureSet::All.rp_canon_len(), 5); // + amie, kbp
        assert_eq!(FeatureSet::All.entity_link_len(), 3); // pop, emb, ppdb
        assert_eq!(FeatureSet::All.relation_link_len(), 4); // ngram, ld, emb, ppdb
        assert_eq!(FeatureSet::Single.rp_canon_len(), 1);
        assert_eq!(FeatureSet::Double.relation_link_len(), 2);
    }

    #[test]
    fn default_config_matches_paper_constants() {
        let c = JoclConfig::default();
        assert_eq!(c.blocking_threshold, 0.5); // §4.1
        assert_eq!(c.learning_rate, 0.05); // §4.1
        assert_eq!(c.lbp.max_iters, 20); // §3.4 "within twenty iterations"
        assert_eq!(c.variant, Variant::Full);
    }

    #[test]
    fn schedule_contains_all_classes_in_order() {
        use classes::*;
        let jocl_fg::Schedule::Phased { factor_phases, var_phases } = paper_schedule() else {
            panic!("paper schedule must be phased")
        };
        assert_eq!(factor_phases.len(), 5);
        assert_eq!(factor_phases[0], vec![F1, F2, F3]);
        assert_eq!(
            factor_phases[2],
            vec![F4, F5, F6, S1, S2],
            "side-information potentials ride the linking phase"
        );
        assert_eq!(factor_phases[4], vec![U5, U6, U7]);
        assert_eq!(var_phases, vec![vec![VAR_CANON], vec![VAR_LINK]]);
    }
}
