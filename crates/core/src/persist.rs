//! Learned-weight persistence (ROADMAP "learned-weight persistence").
//!
//! Weight learning is the slowest optional stage of a JOCL run (each
//! epoch is a clamped + a free LBP pass). Serving deployments run the
//! same OKB/CKB configuration repeatedly, so the learned [`Params`] can
//! be written once with [`save_params`] and injected into later runs via
//! [`crate::JoclConfig::pretrained_params`], skipping training entirely.
//!
//! Storage uses the `jocl_kb::tsv` weight codec: one line per parameter
//! group, `f64`s in shortest-roundtrip decimal, so a save/load cycle is
//! bit-exact.

use jocl_fg::Params;
use jocl_kb::tsv::{read_weight_groups, write_weight_groups};
use jocl_kb::KbError;
use std::path::Path;

/// Save learned parameters as TSV (one group per line). Failures are
/// wrapped with the target path ([`KbError::WithPath`]).
pub fn save_params(params: &Params, path: &Path) -> Result<(), KbError> {
    write_weight_groups(params.groups(), path).map_err(|e| e.with_path(path))
}

/// Load parameters written by [`save_params`]; bit-exact roundtrip.
///
/// I/O and parse failures are wrapped with the file path
/// ([`KbError::WithPath`]): a serving deployment pointing
/// `JoclConfig::pretrained_params` at a stale or truncated weight file
/// gets an error naming the file, not a bare line number.
pub fn load_params(path: &Path) -> Result<Params, KbError> {
    Ok(Params::from_groups(read_weight_groups(path).map_err(|e| e.with_path(path))?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_roundtrip_bit_exact() {
        let dir = std::env::temp_dir().join(format!("jocl-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("params.tsv");
        let mut params = Params::new();
        params.add_group_with(vec![2.0, 0.1 + 0.2, -1.75e-19]);
        params.add_group(1, 0.05);
        save_params(&params, &path).unwrap();
        let loaded = load_params(&path).unwrap();
        assert_eq!(loaded.num_groups(), params.num_groups());
        for g in 0..params.num_groups() {
            let (a, b) = (params.group(g), loaded.group(g));
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression (satellite of the residual-scheduling PR): a truncated
    /// or non-numeric weight file must surface as a typed [`KbError`] from
    /// [`load_params`], never a panic or silently-garbage [`Params`].
    #[test]
    fn load_params_rejects_truncated_and_non_numeric_files() {
        use jocl_kb::KbError;

        let dir = std::env::temp_dir().join(format!("jocl-persist-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("params.tsv");
        let cases: &[(&str, &str)] = &[
            // Truncated mid-line: the count column promises more weights
            // than the line holds (e.g. a partial write / partial copy).
            ("3\t0.5\t0.25\n", "truncated line"),
            // Truncated mid-number leaving a bare count.
            ("2\t0.5\t\n", "empty weight field"),
            // Non-numeric garbage where a weight should be.
            ("1\tpotato\n", "non-numeric weight"),
            // Parseable but non-finite: f64::parse accepts these.
            ("1\tinf\n", "infinite weight"),
            ("1\tNaN\n", "NaN weight"),
            // Garbage count column (e.g. the file is not a weight file).
            ("weights\t1.0\n", "non-numeric count"),
        ];
        for (contents, what) in cases {
            std::fs::write(&path, contents).unwrap();
            match load_params(&path) {
                Err(KbError::WithPath { path: p, source })
                    if matches!(*source, KbError::Parse { line: 1, .. }) =>
                {
                    assert_eq!(p, path.display().to_string(), "{what}");
                }
                other => {
                    panic!("{what}: expected path-wrapped Parse error at line 1, got {other:?}")
                }
            }
        }
        // Missing file stays a typed I/O error, wrapped with the path.
        let missing = dir.join("nonexistent.tsv");
        assert!(matches!(
            load_params(&missing),
            Err(KbError::WithPath { ref source, .. }) if matches!(**source, KbError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Satellite regression: the error *message* of a failed load names
    /// the offending file — the thing an operator greps for.
    #[test]
    fn load_params_errors_name_the_file() {
        let dir = std::env::temp_dir().join(format!("jocl-persist-path-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serving-weights.tsv");
        std::fs::write(&path, "1\tpotato\n").unwrap();
        let msg = load_params(&path).unwrap_err().to_string();
        assert!(msg.contains("serving-weights.tsv"), "parse error must name the file: {msg}");
        assert!(msg.contains("line 1"), "inner parse context must survive: {msg}");
        let missing = dir.join("missing.tsv");
        let msg = load_params(&missing).unwrap_err().to_string();
        assert!(msg.contains("missing.tsv"), "i/o error must name the file: {msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// End-to-end: train on the figure-1 example, persist, rerun with the
    /// loaded weights — training is skipped and the output is identical.
    #[test]
    fn pretrained_params_skip_training() {
        use crate::example::figure1;
        use crate::pipeline::{Jocl, ValidationLabels};
        use jocl_kb::{NpMention, NpSlot, RpMention, TripleId};

        let dir = std::env::temp_dir().join(format!("jocl-pretrain-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("learned.tsv");

        let ex = figure1();
        // Gold links of Figure 1(a) as sparse validation labels.
        let mut labels = ValidationLabels::empty(&ex.okb);
        let golds = [
            (0u32, NpSlot::Subject, ex.e_umd),
            (1, NpSlot::Subject, ex.e_umd),
            (2, NpSlot::Subject, ex.e_uva),
            (0, NpSlot::Object, ex.e_maryland),
            (1, NpSlot::Object, ex.e_u21),
            (2, NpSlot::Object, ex.e_u21),
        ];
        for (t, slot, e) in golds {
            labels.np_entity[NpMention { triple: TripleId(t), slot }.dense()] = Some(e);
        }
        labels.rp_relation[RpMention(TripleId(0)).dense()] = Some(ex.r_location);
        labels.rp_relation[RpMention(TripleId(1)).dense()] = Some(ex.r_member);
        labels.rp_relation[RpMention(TripleId(2)).dense()] = Some(ex.r_member);

        let mut train_config = ex.config();
        train_config.train_epochs = 3;
        let trained = Jocl::new(train_config).run(ex.input(), Some(&labels));
        assert!(trained.diagnostics.train_epochs > 0, "fixture must actually train");
        let learned = trained.learned_params.as_ref().expect("pipeline attaches params");
        save_params(learned, &path).unwrap();

        let mut serve_config = ex.config();
        serve_config.train_epochs = 3; // would train, but pretrained wins
        serve_config.pretrained_params = Some(load_params(&path).unwrap());
        let served = Jocl::new(serve_config).run(ex.input(), Some(&labels));
        assert_eq!(served.diagnostics.train_epochs, 0, "pretrained run must skip training");
        assert_eq!(served.np_links, trained.np_links);
        assert_eq!(served.rp_links, trained.rp_links);
        std::fs::remove_dir_all(&dir).ok();
    }
}
