//! The delta-feed log: an append-only file of serving deltas that read
//! replicas follow.
//!
//! The networked serving plane has exactly one writer. Every delta it
//! commits — one [`DeltaOp`] batch per [`IncrementalJocl::apply_ops`]
//! call, or a manual compaction — is appended here as a framed record,
//! and a replica that warm-restored the writer's snapshot replays the
//! records *after* the snapshot's feed offset to catch up. Because the
//! warm-start work of a delta depends on its batch boundaries, records
//! preserve them: a replica that applies the same batches from the same
//! restored state converges to **bitwise-identical** session state (the
//! PR-5 `snapshot → restore → delta` contract, applied per record).
//!
//! Record framing (all little-endian, via [`jocl_kb::snap`]):
//!
//! ```text
//! ┌────────────────────────────┐
//! │ magic "FDR2"               │  4 bytes
//! │ payload length   (u64)     │
//! │ FNV-1a of payload (u64)    │
//! │ payload                    │  SnapWriter-encoded FeedEntry
//! └────────────────────────────┘
//! ```
//!
//! Version 2 delta-encodes the payload: entry/op kind markers, op
//! counts and string lengths are LEB128 varints instead of fixed
//! 8-byte words, so a typical single-triple record shrinks from ~90
//! to ~40 bytes — replica catch-up traffic is dominated by phrase
//! text, not framing. The header keeps fixed-width length/checksum
//! words: the torn-tail scan must read them before trusting anything.
//!
//! The reader distinguishes a **torn tail** (the writer died or is
//! still mid-append: fewer bytes than the header + payload promise)
//! from **corruption** (a complete record whose checksum or framing is
//! wrong). A torn tail is an operational non-event — the replica simply
//! stops before it and retries on the next poll — while corruption is a
//! typed [`KbError`] naming the byte offset, because replaying a
//! half-trusted log would silently fork the replica.
//!
//! [`IncrementalJocl`]: crate::IncrementalJocl

use crate::incremental::DeltaOp;
use jocl_kb::snap::{fnv1a, SnapReader, SnapWriter};
use jocl_kb::{KbError, Triple};
use std::io::Write;
use std::path::Path;

/// Record magic; the trailing digit is the format version.
const MAGIC: &[u8; 4] = b"FDR2";
/// Bytes before the payload: magic + length + checksum.
const HEADER: usize = 4 + 8 + 8;

/// One replicated event: a delta batch as the writer applied it, or a
/// manual compaction. (Threshold-triggered auto-compaction is *not* an
/// event — it is a deterministic function of the config both sides
/// share, so replicas re-derive it.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeedEntry {
    /// One `apply_ops` batch, in application order.
    Ops(Vec<DeltaOp>),
    /// A manual cold rebuild from the survivors.
    Compact,
}

fn write_triple(w: &mut SnapWriter, t: &Triple) {
    w.vstr(&t.subject);
    w.vstr(&t.predicate);
    w.vstr(&t.object);
}

fn read_triple(r: &mut SnapReader<'_>) -> Result<Triple, KbError> {
    let subject = r.vstr()?;
    let predicate = r.vstr()?;
    let object = r.vstr()?;
    Ok(Triple { subject, predicate, object })
}

/// Serialize one entry into a framed record.
pub fn encode_entry(entry: &FeedEntry) -> Vec<u8> {
    let mut w = SnapWriter::new();
    match entry {
        FeedEntry::Compact => w.vu64(1),
        FeedEntry::Ops(ops) => {
            w.vu64(0);
            w.vu64(ops.len() as u64);
            for op in ops {
                match op {
                    DeltaOp::Add(t) => {
                        w.vu64(0);
                        write_triple(&mut w, t);
                    }
                    DeltaOp::Retract(t) => {
                        w.vu64(1);
                        write_triple(&mut w, t);
                    }
                    DeltaOp::Revise { old, new } => {
                        w.vu64(2);
                        write_triple(&mut w, old);
                        write_triple(&mut w, new);
                    }
                }
            }
        }
    }
    let payload = w.into_bytes();
    let mut bytes = Vec::with_capacity(HEADER + payload.len());
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    bytes
}

fn decode_payload(payload: &[u8], at: usize) -> Result<FeedEntry, KbError> {
    // Report offsets file-absolute: `at` is where the payload starts.
    let shift = |e: KbError| match e {
        KbError::Snapshot { offset, msg } => KbError::Snapshot { offset: offset + at, msg },
        e => e,
    };
    let mut r = SnapReader::new(payload);
    let entry = (|r: &mut SnapReader<'_>| -> Result<FeedEntry, KbError> {
        match r.vu64()? {
            1 => Ok(FeedEntry::Compact),
            0 => {
                // Min bytes per op: 1 kind byte + one varint-prefixed
                // (possibly empty) string per triple slot.
                let n = r.vseq_len(4)?;
                let mut ops = Vec::with_capacity(n);
                for _ in 0..n {
                    let op = match r.vu64()? {
                        0 => DeltaOp::Add(read_triple(r)?),
                        1 => DeltaOp::Retract(read_triple(r)?),
                        2 => {
                            let old = read_triple(r)?;
                            let new = read_triple(r)?;
                            DeltaOp::Revise { old, new }
                        }
                        k => return Err(r.corrupt(format!("unknown op kind {k}"))),
                    };
                    ops.push(op);
                }
                Ok(FeedEntry::Ops(ops))
            }
            k => Err(r.corrupt(format!("unknown feed-entry kind {k}"))),
        }
    })(&mut r)
    .map_err(shift)?;
    r.expect_end().map_err(shift)?;
    Ok(entry)
}

/// Append one entry to the log at `path` (creating it if absent) and
/// return the byte offset of the log end after the append — the cursor
/// a fully-caught-up replica would hold. The record bytes are written
/// in one `write_all` on an `O_APPEND` handle; a reader polling
/// concurrently sees either the whole record or a torn tail it skips.
pub fn append_entry(path: &Path, entry: &FeedEntry) -> Result<u64, KbError> {
    let with_path = |e: std::io::Error| KbError::from(e).with_path(path);
    let mut file =
        std::fs::OpenOptions::new().create(true).append(true).open(path).map_err(with_path)?;
    file.write_all(&encode_entry(entry)).map_err(with_path)?;
    file.flush().map_err(with_path)?;
    Ok(file.metadata().map_err(with_path)?.len())
}

/// Read every *complete* entry starting at byte `offset`, returning the
/// entries and the offset just past the last complete record (the next
/// poll's starting point). A missing file reads as an empty feed at
/// offset `offset` — the writer simply has not committed anything yet.
/// A torn tail stops the scan; corruption (bad magic, bad checksum on a
/// complete record, offsets past the end of the file) is a typed error
/// naming the log file.
pub fn read_entries(path: &Path, offset: u64) -> Result<(Vec<FeedEntry>, u64), KbError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            if offset == 0 {
                return Ok((Vec::new(), 0));
            }
            return Err(KbError::from(e).with_path(path));
        }
        Err(e) => return Err(KbError::from(e).with_path(path)),
    };
    let corrupt = |offset: usize, msg: String| KbError::Snapshot { offset, msg }.with_path(path);
    let mut pos = usize::try_from(offset)
        .map_err(|_| corrupt(0, format!("cursor offset {offset} overflows usize")))?;
    if pos > bytes.len() {
        return Err(corrupt(
            pos,
            format!("cursor offset {pos} is past the end of the {}-byte log", bytes.len()),
        ));
    }
    let mut entries = Vec::new();
    loop {
        let rest = &bytes[pos..];
        if rest.len() < HEADER {
            break; // torn (or exactly-consumed) tail
        }
        if &rest[..4] != MAGIC {
            return Err(corrupt(
                pos,
                format!(
                    "bad record magic {:?} (expected {:?}) — cursor desynchronized or log \
                     corrupted",
                    String::from_utf8_lossy(&rest[..4]),
                    String::from_utf8_lossy(MAGIC)
                ),
            ));
        }
        let len = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes")) as usize;
        let stored = u64::from_le_bytes(rest[12..20].try_into().expect("8 bytes"));
        if rest.len() - HEADER < len {
            break; // torn tail: the writer is mid-append
        }
        let payload = &rest[HEADER..HEADER + len];
        let actual = fnv1a(payload);
        if stored != actual {
            return Err(corrupt(
                pos + HEADER,
                format!(
                    "record checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
                ),
            ));
        }
        entries.push(decode_payload(payload, pos + HEADER).map_err(|e| e.with_path(path))?);
        pos += HEADER + len;
    }
    Ok((entries, pos as u64))
}

/// Truncate the log to `offset` bytes — the writer calls this when a
/// `restore` rewinds the session to a snapshot: operations past the
/// snapshot's feed offset are being discarded, so replicas must never
/// see them either.
pub fn truncate_to(path: &Path, offset: u64) -> Result<(), KbError> {
    let with_path = |e: std::io::Error| KbError::from(e).with_path(path);
    match std::fs::OpenOptions::new().write(true).open(path) {
        Ok(file) => file.set_len(offset).map_err(with_path),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound && offset == 0 => Ok(()),
        Err(e) => Err(with_path(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(s, p, o)
    }

    fn sample_entries() -> Vec<FeedEntry> {
        vec![
            FeedEntry::Ops(vec![
                DeltaOp::Add(t("albert einstein", "be bear in", "ulm")),
                DeltaOp::Retract(t("einstein", "live in", "bern")),
            ]),
            FeedEntry::Compact,
            FeedEntry::Ops(vec![DeltaOp::Revise { old: t("a", "b", "c"), new: t("a", "b", "d") }]),
            FeedEntry::Ops(Vec::new()),
        ]
    }

    #[test]
    fn log_roundtrips_with_incremental_cursors() {
        let dir = std::env::temp_dir().join(format!("jocl-feed-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("feed.log");
        std::fs::remove_file(&path).ok();

        // Missing log reads as empty at offset 0.
        assert_eq!(read_entries(&path, 0).unwrap(), (Vec::new(), 0));

        let entries = sample_entries();
        let mut offsets = vec![0u64];
        for e in &entries {
            offsets.push(append_entry(&path, e).unwrap());
        }
        // Full replay.
        let (all, end) = read_entries(&path, 0).unwrap();
        assert_eq!(all, entries);
        assert_eq!(end, *offsets.last().unwrap());
        // Tail replay from every committed cursor.
        for (i, &off) in offsets.iter().enumerate() {
            let (tail, end_i) = read_entries(&path, off).unwrap();
            assert_eq!(tail, entries[i..]);
            assert_eq!(end_i, end);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_stops_cleanly_and_corruption_fails_loudly() {
        let dir = std::env::temp_dir().join(format!("jocl-feed-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("feed.log");
        std::fs::remove_file(&path).ok();
        let first = FeedEntry::Ops(vec![DeltaOp::Add(t("x", "y", "z"))]);
        let mid = append_entry(&path, &first).unwrap();
        append_entry(&path, &FeedEntry::Compact).unwrap();

        // Tear the second record (simulate a writer killed mid-append):
        // the reader returns the first and parks the cursor before the
        // tear, and once the writer finishes the record a re-poll
        // resumes exactly there.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..mid as usize + HEADER - 3]).unwrap();
        let (entries, next) = read_entries(&path, 0).unwrap();
        assert_eq!(entries, vec![first.clone()]);
        assert_eq!(next, mid);
        std::fs::write(&path, &full).unwrap();
        let (entries, next) = read_entries(&path, next).unwrap();
        assert_eq!(entries, vec![FeedEntry::Compact]);
        assert_eq!(next, full.len() as u64);

        // A flipped payload bit in a *complete* record is corruption.
        let mut bad = full.clone();
        let flip = HEADER + 4; // inside the first record's payload
        bad[flip] ^= 1;
        std::fs::write(&path, &bad).unwrap();
        let msg = read_entries(&path, 0).unwrap_err().to_string();
        assert!(msg.contains("checksum") && msg.contains("feed.log"), "{msg}");

        // A desynchronized cursor hits non-magic bytes.
        std::fs::write(&path, &full).unwrap();
        let msg = read_entries(&path, 2).unwrap_err().to_string();
        assert!(msg.contains("magic"), "{msg}");

        // A cursor past the end of the log is corruption, not a tail.
        let msg = read_entries(&path, full.len() as u64 + 40).unwrap_err().to_string();
        assert!(msg.contains("past the end"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The v2 payload is varint-framed: kind markers, op counts and
    /// string lengths each cost one byte at these sizes, so the payload
    /// is phrase text plus one byte per field — not 8.
    #[test]
    fn v2_records_are_compact() {
        assert_eq!(encode_entry(&FeedEntry::Compact).len(), HEADER + 1);
        let one = FeedEntry::Ops(vec![DeltaOp::Add(t("x", "y", "z"))]);
        // kind + count + op kind + 3 × (len byte + 1 text byte).
        assert_eq!(encode_entry(&one).len(), HEADER + 9);
    }

    #[test]
    fn truncate_discards_the_tail() {
        let dir = std::env::temp_dir().join(format!("jocl-feed-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("feed.log");
        std::fs::remove_file(&path).ok();
        let first = FeedEntry::Ops(vec![DeltaOp::Add(t("s", "p", "o"))]);
        let keep = append_entry(&path, &first).unwrap();
        append_entry(&path, &FeedEntry::Compact).unwrap();
        truncate_to(&path, keep).unwrap();
        assert_eq!(read_entries(&path, 0).unwrap(), (vec![first], keep));
        // Truncating a missing log to 0 is a no-op, to any other offset
        // an error.
        std::fs::remove_file(&path).ok();
        truncate_to(&path, 0).unwrap();
        assert!(truncate_to(&path, 5).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
