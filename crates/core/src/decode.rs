//! Inference decoding and conflict resolution (paper §3.5).
//!
//! After LBP converges, each variable's best label is its marginal MAP
//! state: linking variables yield entity/relation assignments,
//! canonicalization variables yield pairwise merge decisions. The
//! remaining cano-vs-link conflicts are resolved with the paper's rule:
//!
//! > "If a pair of NPs are located in two different groups according to
//! > the linking result and the corresponding canonicalization variable
//! > of this pair has a value of 1, we select the label of the larger
//! > group as the final label for both NPs."
//!
//! Final canonicalization groups are the union-find closure of the
//! positive pairs plus (optionally) same-link edges.

use crate::builder::GraphPlan;
use crate::config::JoclConfig;
use jocl_cluster::{Clustering, UnionFind};
use jocl_fg::{LbpResult, Marginals, VarId};
use jocl_kb::{EntityId, NpMention, NpSlot, Okb, RelationId, RpMention, TripleId};
use jocl_text::fx::FxHashMap;

/// Final output of a JOCL run.
#[derive(Debug, Clone)]
pub struct JoclOutput {
    /// Clustering over all NP mentions (dense indexing).
    pub np_clustering: Clustering,
    /// Clustering over all RP mentions.
    pub rp_clustering: Clustering,
    /// Final entity link per NP mention.
    pub np_links: Vec<Option<EntityId>>,
    /// Final relation link per RP mention.
    pub rp_links: Vec<Option<RelationId>>,
    /// The weights inference actually used (learned, pretrained, or
    /// initial), attached by the pipeline for persistence via
    /// `crate::persist::save_params`.
    pub learned_params: Option<jocl_fg::Params>,
    /// Run diagnostics.
    pub diagnostics: Diagnostics,
}

/// Diagnostics of one run.
#[derive(Debug, Clone)]
pub struct Diagnostics {
    /// LBP convergence summary.
    pub lbp: LbpResult,
    /// Factor graph size.
    pub num_vars: usize,
    /// Factor count.
    pub num_factors: usize,
    /// Blocked pair counts (subject, predicate, object).
    pub pair_counts: (usize, usize, usize),
    /// Transitivity triangle count.
    pub triangles: usize,
    /// Training epochs actually run (0 = untrained).
    pub train_epochs: usize,
    /// Final training gradient norm (NaN when untrained).
    pub train_grad_norm: f64,
}

/// Decode marginals into the final output.
pub fn decode(
    okb: &Okb,
    plan: &GraphPlan,
    marginals: &Marginals,
    config: &JoclConfig,
    diagnostics: Diagnostics,
) -> JoclOutput {
    decode_live(okb, plan, marginals, config, diagnostics, None)
}

/// [`decode`] over a session with **retractions**: `live` (indexed by
/// triple id) masks out tombstoned triples. Dead mentions decode to no
/// link and singleton clusters, dead pair variables can neither merge
/// clusters nor overrule links, and the conflict-resolution group sizes
/// count live mentions only — so the live slice of the output is exactly
/// what [`decode`] would produce on a graph that never contained the
/// retracted triples. `None` (or an all-true mask) is plain [`decode`].
pub fn decode_live(
    okb: &Okb,
    plan: &GraphPlan,
    marginals: &Marginals,
    config: &JoclConfig,
    diagnostics: Diagnostics,
    live: Option<&[bool]>,
) -> JoclOutput {
    let triple_live = |t: TripleId| live.is_none_or(|l| l[t.idx()]);
    // 1. MAP links (dead mentions stay unlinked).
    let mut np_links: Vec<Option<EntityId>> = plan
        .np_link_vars
        .iter()
        .enumerate()
        .map(|(m, v)| {
            if !triple_live(NpMention::from_dense(m).triple) {
                return None;
            }
            v.map(|var| plan.np_candidates[m][marginals.map_state(var) as usize])
        })
        .collect();
    let mut rp_links: Vec<Option<RelationId>> = plan
        .rp_link_vars
        .iter()
        .enumerate()
        .map(|(m, v)| {
            if !triple_live(TripleId(m as u32)) {
                return None;
            }
            v.map(|var| plan.rp_candidates[m][marginals.map_state(var) as usize])
        })
        .collect();

    // 2. Positive canonicalization pairs per family, as dense mention
    //    index pairs. Pairs with a tombstoned endpoint are skipped — a
    //    neutralized pair variable's marginal is (numerically) uniform,
    //    and uniform must not count as a merge.
    let positive = |pairs: &[(TripleId, TripleId, VarId)],
                    to_dense: &dyn Fn(TripleId) -> usize,
                    threshold: f64|
     -> Vec<(usize, usize)> {
        pairs
            .iter()
            .filter(|&&(a, b, v)| {
                triple_live(a) && triple_live(b) && marginals.prob(v, 1) > threshold
            })
            .map(|&(a, b, _)| (to_dense(a), to_dense(b)))
            .collect()
    };
    let subj_dense = |t: TripleId| NpMention { triple: t, slot: NpSlot::Subject }.dense();
    let obj_dense = |t: TripleId| NpMention { triple: t, slot: NpSlot::Object }.dense();
    let rp_dense = |t: TripleId| RpMention(t).dense();
    let mut np_positive = positive(&plan.subj_pair_vars, &subj_dense, 0.5);
    np_positive.extend(positive(&plan.obj_pair_vars, &obj_dense, 0.5));
    let rp_positive = positive(&plan.pred_pair_vars, &rp_dense, 0.5);

    // 3. Conflict resolution (§3.5) on both mention families. A pair must
    // be decisively positive ("has a value of 1") before it is allowed to
    // overwrite a linking decision.
    let mut np_confident = positive(&plan.subj_pair_vars, &subj_dense, 0.9);
    np_confident.extend(positive(&plan.obj_pair_vars, &obj_dense, 0.9));
    let rp_confident = positive(&plan.pred_pair_vars, &rp_dense, 0.9);
    resolve_conflicts(&np_confident, &mut np_links);
    resolve_conflicts(&rp_confident, &mut rp_links);

    // 4. Final clusterings: union positive pairs (+ same-link edges).
    let np_clustering =
        final_clustering(okb.num_np_mentions(), &np_positive, &np_links, config.merge_by_link);
    let rp_clustering =
        final_clustering(okb.num_rp_mentions(), &rp_positive, &rp_links, config.merge_by_link);

    JoclOutput {
        np_clustering,
        rp_clustering,
        np_links,
        rp_links,
        learned_params: None,
        diagnostics,
    }
}

/// Apply the paper's §3.5 rule: for every positive pair whose two
/// mentions link to different targets, relabel the mention(s) of the
/// smaller link-group with the larger group's target.
fn resolve_conflicts<T: Copy + Eq + std::hash::Hash>(
    positive_pairs: &[(usize, usize)],
    links: &mut [Option<T>],
) {
    // Link-group sizes.
    let mut group_size: FxHashMap<T, usize> = FxHashMap::default();
    for l in links.iter().flatten() {
        *group_size.entry(*l).or_insert(0) += 1;
    }
    for &(a, b) in positive_pairs {
        let (Some(la), Some(lb)) = (links[a], links[b]) else { continue };
        if la == lb {
            continue;
        }
        let (sa, sb) = (group_size[&la], group_size[&lb]);
        // Larger group wins; ties keep the first mention's label.
        let (winner, loser_mention, loser_label) = if sa >= sb { (la, b, lb) } else { (lb, a, la) };
        links[loser_mention] = Some(winner);
        *group_size.entry(winner).or_insert(0) += 1;
        if let Some(s) = group_size.get_mut(&loser_label) {
            *s = s.saturating_sub(1);
        }
    }
}

/// Union-find closure over positive pairs and (optionally) same-link
/// edges.
fn final_clustering<T: Copy + Eq + std::hash::Hash>(
    n: usize,
    positive_pairs: &[(usize, usize)],
    links: &[Option<T>],
    merge_by_link: bool,
) -> Clustering {
    let mut uf = UnionFind::new(n);
    for &(a, b) in positive_pairs {
        uf.union(a, b);
    }
    if merge_by_link {
        let mut first_with: FxHashMap<T, usize> = FxHashMap::default();
        for (m, l) in links.iter().enumerate() {
            if let Some(l) = l {
                match first_with.entry(*l) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        uf.union(*e.get(), m);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(m);
                    }
                }
            }
        }
    }
    uf.into_clustering()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_resolution_larger_group_wins() {
        // Mentions 0,1,2 link to A; mention 3 links to B; positive pair
        // (2, 3) forces B's mention into A.
        let mut links = vec![Some('A'), Some('A'), Some('A'), Some('B')];
        resolve_conflicts(&[(2, 3)], &mut links);
        assert_eq!(links[3], Some('A'));
        assert_eq!(links[2], Some('A'));
    }

    #[test]
    fn conflict_resolution_skips_unlinked() {
        let mut links: Vec<Option<char>> = vec![Some('A'), None];
        resolve_conflicts(&[(0, 1)], &mut links);
        assert_eq!(links[1], None, "unlinked mentions keep their state");
    }

    #[test]
    fn conflict_resolution_agreeing_pairs_untouched() {
        let mut links = vec![Some('A'), Some('A')];
        resolve_conflicts(&[(0, 1)], &mut links);
        assert_eq!(links, vec![Some('A'), Some('A')]);
    }

    #[test]
    fn final_clustering_unions_pairs_and_links() {
        // 5 mentions: pair (0,1); links: 2 and 3 both to X.
        let links = vec![None, None, Some('X'), Some('X'), None];
        let c = final_clustering(5, &[(0, 1)], &links, true);
        assert!(c.same(0, 1));
        assert!(c.same(2, 3));
        assert!(!c.same(0, 2));
        assert!(!c.same(0, 4));
        // Without merge_by_link, 2 and 3 stay separate.
        let c2 = final_clustering(5, &[(0, 1)], &links, false);
        assert!(!c2.same(2, 3));
    }

    #[test]
    fn chained_conflicts_converge_to_biggest_group() {
        // Groups: {0,1,2}→A, {3,4}→B, {5}→C; positive pairs 2-3 and 4-5.
        let mut links = vec![Some('A'), Some('A'), Some('A'), Some('B'), Some('B'), Some('C')];
        resolve_conflicts(&[(2, 3), (4, 5)], &mut links);
        assert_eq!(links[3], Some('A'));
        // After the first merge A has 4 members; mention 4 still links B;
        // pair (4,5): B group size 1 vs C size 1 → first mention wins.
        assert_eq!(links[5], Some('B'));
    }
}
