#![forbid(unsafe_code)]
//! # jocl-core
//!
//! The paper's primary contribution: **JOCL**, joint Open Knowledge Base
//! canonicalization and linking on a factor graph (Liu et al., SIGMOD
//! 2021).
//!
//! Given an OKB (OIE triples) and a CKB, JOCL builds one factor graph
//! containing
//!
//! * binary **canonicalization variables** `x_ij / y_ij / z_ij` for
//!   blocked subject / predicate / object mention pairs (§3.1.1),
//! * multinomial **linking variables** `e_si / r_pi / e_oi` over candidate
//!   entities/relations (§3.2.1),
//! * signal factors **F1–F6** (IDF token overlap, embeddings, PPDB, AMIE,
//!   KBP, popularity, n-gram, Levenshtein — §3.1.3, §3.1.4, §3.2.3,
//!   §3.2.4),
//! * structural factors **U1–U4** (transitivity §3.1.5, fact inclusion
//!   §3.2.5),
//! * and the **consistency factors U5–U7** that couple the two tasks
//!   (§3.3),
//!
//! then learns factor weights by gradient ascent on the labeled
//! validation configuration (§3.4) and infers marginals with the phased
//! loopy-belief-propagation schedule before decoding clusters + links with
//! the conflict-resolution rule of §3.5.
//!
//! Entry point: [`Jocl::run`] with a [`JoclConfig`]; the config's
//! [`Variant`] and [`FeatureSet`] reproduce the paper's ablations
//! (JOCLcano / JOCLlink, Table 4; JOCL-single / -double / -all, Table 5).

pub mod blocking;
pub mod builder;
pub mod config;
pub mod decode;
pub mod example;
pub mod feed;
pub mod incremental;
pub mod persist;
pub mod pipeline;
pub mod signals;

pub use blocking::{block_pairs, Blocking, BlockingDelta, BlockingIndex};
pub use builder::{build_graph, GraphPlan};
pub use config::{FeatureSet, JoclConfig, Variant};
pub use decode::JoclOutput;
pub use feed::FeedEntry;
pub use incremental::{DeltaOp, DeltaOutput, DeltaStats, IncrementalJocl};
pub use jocl_fg::ScheduleMode;
pub use persist::{load_params, save_params};
pub use pipeline::{Jocl, JoclInput};
pub use signals::{build_signals, Signals};
