//! The end-to-end JOCL pipeline.
//!
//! ```text
//! OKB + CKB + resources
//!   → build signals (IDF, SGNS embeddings, PPDB, AMIE, KBP)     §3.1/§3.2
//!   → block canonicalization pairs (Sim_idf ≥ 0.5)              §4.1
//!   → build the factor graph (F1–F6, U1–U7)                     §3.1–§3.3
//!   → learn weights on the validation labels (clamped vs free)  §3.4
//!   → phased LBP                                                §3.4
//!   → decode + conflict resolution                              §3.5
//! ```

use crate::blocking::block_pairs;
use crate::builder::build_graph;
use crate::config::{paper_schedule, JoclConfig};
use crate::decode::{decode, Diagnostics, JoclOutput};
use crate::signals::{build_signals, Signals};
use jocl_fg::lbp::LbpEngine;
use jocl_fg::{train, TrainOptions, VarId};
use jocl_kb::{Ckb, EntityId, NpMention, NpSlot, Okb, RelationId, RpMention};
use jocl_rules::ParaphraseStore;

/// Borrowed view of everything a JOCL run consumes.
#[derive(Clone, Copy)]
pub struct JoclInput<'a> {
    /// The OIE triples.
    pub okb: &'a Okb,
    /// The curated KB.
    pub ckb: &'a Ckb,
    /// Paraphrase database resource.
    pub ppdb: &'a ParaphraseStore,
    /// Tokenized corpus for embedding training.
    pub corpus: &'a [Vec<String>],
}

/// Sparse gold labels used for weight learning (paper §4.1: the triples
/// of 20% of entities act as the validation set). `None` = unlabeled.
#[derive(Debug, Clone, Default)]
pub struct ValidationLabels {
    /// Gold entity per dense NP mention.
    pub np_entity: Vec<Option<EntityId>>,
    /// Gold relation per dense RP mention.
    pub rp_relation: Vec<Option<RelationId>>,
    /// Gold cluster label per dense NP mention (for pair variables).
    pub np_cluster: Vec<Option<u32>>,
    /// Gold cluster label per dense RP mention.
    pub rp_cluster: Vec<Option<u32>>,
}

impl ValidationLabels {
    /// An all-unlabeled instance shaped for `okb`.
    pub fn empty(okb: &Okb) -> Self {
        Self {
            np_entity: vec![None; okb.num_np_mentions()],
            rp_relation: vec![None; okb.num_rp_mentions()],
            np_cluster: vec![None; okb.num_np_mentions()],
            rp_cluster: vec![None; okb.num_rp_mentions()],
        }
    }

    /// Number of labeled items across all four views.
    pub fn num_labeled(&self) -> usize {
        self.np_entity.iter().flatten().count()
            + self.rp_relation.iter().flatten().count()
            + self.np_cluster.iter().flatten().count()
            + self.rp_cluster.iter().flatten().count()
    }
}

/// The JOCL system.
pub struct Jocl {
    config: JoclConfig,
}

impl Jocl {
    /// Create with a configuration.
    pub fn new(config: JoclConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &JoclConfig {
        &self.config
    }

    /// Full run: build signals, then [`Jocl::run_with_signals`].
    pub fn run(&self, input: JoclInput<'_>, labels: Option<&ValidationLabels>) -> JoclOutput {
        let signals =
            build_signals(input.okb, input.ckb, input.ppdb, input.corpus, &self.config.sgns);
        self.run_with_signals(input, &signals, labels)
    }

    /// Run with prebuilt signals (lets benchmarks share one SGNS model
    /// across variants).
    pub fn run_with_signals(
        &self,
        input: JoclInput<'_>,
        signals: &Signals,
        labels: Option<&ValidationLabels>,
    ) -> JoclOutput {
        let config = &self.config;
        let blocking = block_pairs(input.okb, signals, config);
        let pair_counts =
            (blocking.subj_pairs.len(), blocking.pred_pairs.len(), blocking.obj_pairs.len());
        let mut plan = build_graph(input.okb, input.ckb, signals, &blocking, config);

        // --- learning (§3.4) -------------------------------------------------
        let mut train_epochs = 0;
        let mut train_grad_norm = f64::NAN;
        if let Some(pre) = &config.pretrained_params {
            // Serving mode: inject persisted weights (see `crate::persist`)
            // and skip training entirely.
            assert_eq!(
                pre.num_groups(),
                plan.params.num_groups(),
                "pretrained params have a different group count than the built graph"
            );
            for g in 0..pre.num_groups() {
                assert_eq!(
                    pre.group(g).len(),
                    plan.params.group(g).len(),
                    "pretrained group {g} has a different shape than the built graph"
                );
            }
            plan.params = pre.clone();
        } else if config.train_epochs > 0 {
            if let Some(labels) = labels {
                let clamp_list = collect_clamps(input.okb, &plan, labels);
                if !clamp_list.is_empty() {
                    let opts = TrainOptions {
                        learning_rate: config.learning_rate,
                        max_epochs: config.train_epochs,
                        grad_tol: 1e-2,
                        l2: 1e-3,
                        lbp: lbp_options(config),
                    };
                    let report = train(&plan.graph, &mut plan.params, &clamp_list, &opts);
                    train_epochs = report.epochs;
                    train_grad_norm = report.final_grad_norm;
                }
            }
        }

        // --- inference (§3.4) -----------------------------------------------
        let mut engine = LbpEngine::new(&plan.graph);
        let lbp_result = engine.run(&plan.params, &lbp_options(config));
        let marginals = engine.marginals();

        let diagnostics = Diagnostics {
            lbp: lbp_result,
            num_vars: plan.graph.num_vars(),
            num_factors: plan.graph.num_factors(),
            pair_counts,
            triangles: plan.stats.triangles,
            train_epochs,
            train_grad_norm,
        };
        let mut out = decode(input.okb, &plan, &marginals, config, diagnostics);
        out.learned_params = Some(plan.params);
        out
    }
}

/// The inference options every decode-producing run uses: the config's
/// LBP settings under the paper's phased schedule. Shared with the
/// incremental session so warm runs converge the identical system.
pub(crate) fn lbp_options(config: &JoclConfig) -> jocl_fg::LbpOptions {
    jocl_fg::LbpOptions { schedule: paper_schedule(), ..config.lbp.clone() }
}

/// Convert sparse gold labels into variable clamps.
fn collect_clamps(
    okb: &Okb,
    plan: &crate::builder::GraphPlan,
    labels: &ValidationLabels,
) -> Vec<(VarId, u32)> {
    let mut clamps = Vec::new();
    // Linking variables: clamp to the gold candidate index when present.
    for m in okb.np_mentions() {
        let d = m.dense();
        let (Some(var), Some(gold)) =
            (plan.np_link_vars[d], labels.np_entity.get(d).copied().flatten())
        else {
            continue;
        };
        if let Some(idx) = plan.np_candidates[d].iter().position(|&e| e == gold) {
            clamps.push((var, idx as u32));
        }
    }
    for m in okb.rp_mentions() {
        let d = m.dense();
        let (Some(var), Some(gold)) =
            (plan.rp_link_vars[d], labels.rp_relation.get(d).copied().flatten())
        else {
            continue;
        };
        if let Some(idx) = plan.rp_candidates[d].iter().position(|&r| r == gold) {
            clamps.push((var, idx as u32));
        }
    }
    // Pair variables: clamp to gold same/different where both mentions are
    // labeled.
    let np_label = |m: NpMention| labels.np_cluster.get(m.dense()).copied().flatten();
    for &(ti, tj, var) in &plan.subj_pair_vars {
        let a = np_label(NpMention { triple: ti, slot: NpSlot::Subject });
        let b = np_label(NpMention { triple: tj, slot: NpSlot::Subject });
        if let (Some(a), Some(b)) = (a, b) {
            clamps.push((var, u32::from(a == b)));
        }
    }
    for &(ti, tj, var) in &plan.obj_pair_vars {
        let a = np_label(NpMention { triple: ti, slot: NpSlot::Object });
        let b = np_label(NpMention { triple: tj, slot: NpSlot::Object });
        if let (Some(a), Some(b)) = (a, b) {
            clamps.push((var, u32::from(a == b)));
        }
    }
    for &(ti, tj, var) in &plan.pred_pair_vars {
        let a = labels.rp_cluster.get(RpMention(ti).dense()).copied().flatten();
        let b = labels.rp_cluster.get(RpMention(tj).dense()).copied().flatten();
        if let (Some(a), Some(b)) = (a, b) {
            clamps.push((var, u32::from(a == b)));
        }
    }
    clamps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::figure1;

    #[test]
    fn empty_labels_shape() {
        let ex = figure1();
        let l = ValidationLabels::empty(&ex.okb);
        assert_eq!(l.np_entity.len(), 6);
        assert_eq!(l.rp_relation.len(), 3);
        assert_eq!(l.num_labeled(), 0);
    }

    #[test]
    fn pipeline_runs_on_figure1() {
        let ex = figure1();
        let jocl = Jocl::new(ex.config());
        let out = jocl.run(ex.input(), None);
        assert_eq!(out.np_links.len(), 6);
        assert_eq!(out.rp_links.len(), 3);
        assert!(out.diagnostics.num_vars > 0);
        assert!(out.diagnostics.lbp.iterations > 0);
    }
}
