//! Factor-graph construction (paper §3.1–§3.3).
//!
//! Translates an OKB + CKB + blocked pairs into a `jocl-fg` graph:
//!
//! * one **linking variable** per mention with a non-empty candidate set,
//!   carrying its F4/F5/F6 feature factor;
//! * one **canonicalization variable** per blocked pair, carrying its
//!   F1/F2/F3 feature factor (state 1 features are the similarities,
//!   state 0 features their complements, exactly the paper's `f(·, x)`
//!   definition);
//! * **U1–U3** transitivity factors on triangles of pair variables;
//! * **U4** fact-inclusion factors per triple with all three linking
//!   variables (sparse two-level tables: 0.9 on CKB facts, 0.1 elsewhere);
//! * **U5–U7** consistency factors per pair variable whose mentions both
//!   have linking variables (0.7 when link-equality agrees with the pair
//!   state, 0.3 otherwise).
//!
//! Candidate sets and feature vectors are cached per distinct phrase, so
//! the cost scales with distinct surface forms rather than mentions.
//!
//! Construction is **sharded**: the expensive per-distinct-key work
//! (candidate retrieval, similarity features, two-level tables) is split
//! into deterministic chunks and computed on a [`jocl_exec`] worker pool,
//! then the graph is assembled serially from the precomputed caches with
//! [`FactorGraph::reserve`] + batched factor insertion. Shard boundaries
//! never influence values, and the assembly order matches the historical
//! serial insert loop exactly, so the built graph is identical for any
//! `JoclConfig::build_threads`.

use crate::blocking::Blocking;
use crate::config::{classes, FeatureSet, JoclConfig, Variant};
use crate::signals::{PhraseCtx, Signals};
use jocl_exec::Pool;
use jocl_fg::graph::FactorSpec;
use jocl_fg::{FactorGraph, Params, Potential, VarId};
use jocl_kb::{
    CandidateGen, Ckb, EntityId, NpMention, NpSlot, Okb, RelationId, RpMention, TripleId,
};
use jocl_text::fx::FxHashMap;

/// Parameter-group ids for every factor family.
#[derive(Debug, Clone, Copy)]
pub struct ParamGroups {
    /// α1 — F1 (subject canonicalization).
    pub alpha1: usize,
    /// α2 — F2 (predicate canonicalization).
    pub alpha2: usize,
    /// α3 — F3 (object canonicalization).
    pub alpha3: usize,
    /// α4 — F4 (subject linking).
    pub alpha4: usize,
    /// α5 — F5 (predicate linking).
    pub alpha5: usize,
    /// α6 — F6 (object linking).
    pub alpha6: usize,
    /// β1–β7 — U1–U7 scalar weights (index 0 = β1).
    pub beta: [usize; 7],
    /// γ — scalar weight of the S1/S2 side-information potentials
    /// (imported alias/link tables). Allocated unconditionally so the
    /// parameter layout never depends on whether side info is present;
    /// without S1/S2 factors the group receives zero gradient and stays
    /// at its initial value.
    pub gamma: usize,
}

/// Build statistics (reported in diagnostics).
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildStats {
    /// Number of transitivity triangles added (U1+U2+U3).
    pub triangles: usize,
    /// Number of fact-inclusion factors (U4).
    pub fact_factors: usize,
    /// Number of consistency factors (U5+U6+U7).
    pub consistency_factors: usize,
}

/// The constructed graph plus all index maps needed for training and
/// decoding. `Clone` so a long-lived incremental session can be forked
/// (e.g. by benchmarks replaying the same delta against one warm state).
#[derive(Clone)]
pub struct GraphPlan {
    /// The factor graph.
    pub graph: FactorGraph,
    /// Initial parameters (α = 2, β = 2; learning refines them).
    pub params: Params,
    /// Parameter-group handles.
    pub groups: ParamGroups,
    /// Per dense NP mention: its linking variable (if any candidates).
    pub np_link_vars: Vec<Option<VarId>>,
    /// Per dense NP mention: the candidate entities (variable states).
    pub np_candidates: Vec<Vec<EntityId>>,
    /// Per dense RP mention: its linking variable.
    pub rp_link_vars: Vec<Option<VarId>>,
    /// Per dense RP mention: candidate relations.
    pub rp_candidates: Vec<Vec<RelationId>>,
    /// Subject pair variables `x_ij`.
    pub subj_pair_vars: Vec<(TripleId, TripleId, VarId)>,
    /// Predicate pair variables `y_ij`.
    pub pred_pair_vars: Vec<(TripleId, TripleId, VarId)>,
    /// Object pair variables `z_ij`.
    pub obj_pair_vars: Vec<(TripleId, TripleId, VarId)>,
    /// Construction statistics.
    pub stats: BuildStats,
}

impl GraphPlan {
    /// Resident heap bytes of the plan: the factor graph (structure +
    /// potential tables) plus the link/candidate maps and pair
    /// registries. Capacity-based.
    pub fn heap_bytes(&self) -> usize {
        fn rows<T>(v: &[Vec<T>]) -> usize {
            std::mem::size_of_val(v)
                + v.iter().map(|c| c.capacity() * std::mem::size_of::<T>()).sum::<usize>()
        }
        self.graph.heap_bytes()
            + self.np_link_vars.capacity() * std::mem::size_of::<Option<VarId>>()
            + self.rp_link_vars.capacity() * std::mem::size_of::<Option<VarId>>()
            + rows(&self.np_candidates)
            + rows(&self.rp_candidates)
            + (self.subj_pair_vars.capacity()
                + self.pred_pair_vars.capacity()
                + self.obj_pair_vars.capacity())
                * std::mem::size_of::<(TripleId, TripleId, VarId)>()
    }

    /// Serialize the whole plan — graph structure with potentials,
    /// parameters, link/candidate maps, pair-variable registries and
    /// build stats — into a snapshot section. Floats are written as raw
    /// bits: a restored plan must drive inference to *bitwise* the same
    /// messages.
    pub fn export_state(&self, w: &mut jocl_kb::snap::SnapWriter) {
        w.tag("PLAN");
        let g = &self.graph;
        w.usize(g.num_vars());
        for v in 0..g.num_vars() {
            let v = VarId(v as u32);
            w.u32(g.cardinality(v));
            w.u64(g.var_class(v) as u64);
        }
        w.usize(g.num_factors());
        for f in 0..g.num_factors() {
            let f = jocl_fg::FactorId(f as u32);
            w.u64(g.factor_class(f) as u64);
            let vars: Vec<u32> = g.factor_vars(f).iter().map(|v| v.0).collect();
            w.u32_slice_packed(&vars);
            match g.factor_potential(f) {
                Potential::Features { group, feats } => {
                    w.u64(0);
                    w.usize(*group);
                    w.usize(feats.len());
                    for row in feats {
                        w.f64_slice_packed(row);
                    }
                }
                Potential::Scores { group, scores } => {
                    w.u64(1);
                    w.usize(*group);
                    w.f64_slice_packed(scores);
                }
                Potential::TwoLevelScores { group, size, high_configs, high, low } => {
                    w.u64(2);
                    w.usize(*group);
                    w.usize(*size);
                    // Strictly sorted by construction (validated on
                    // import), so delta varints apply.
                    w.u32_slice_delta(high_configs);
                    w.f64(*high);
                    w.f64(*low);
                }
            }
        }
        w.usize(self.params.num_groups());
        for gi in 0..self.params.num_groups() {
            w.f64_slice(self.params.group(gi));
        }
        // Link maps: a presence bitset plus the present variable ids —
        // 1 bit + ~2 varint bytes per mention instead of 16 bytes.
        let link_vars = |w: &mut jocl_kb::snap::SnapWriter, vars: &[Option<VarId>]| {
            let present: Vec<bool> = vars.iter().map(Option::is_some).collect();
            let ids: Vec<u32> = vars.iter().flatten().map(|v| v.0).collect();
            w.bool_slice_packed(&present);
            w.u32_slice_packed(&ids);
        };
        link_vars(w, &self.np_link_vars);
        w.usize(self.np_candidates.len());
        for c in &self.np_candidates {
            let ids: Vec<u32> = c.iter().map(|e| e.0).collect();
            w.u32_slice_packed(&ids);
        }
        link_vars(w, &self.rp_link_vars);
        w.usize(self.rp_candidates.len());
        for c in &self.rp_candidates {
            let ids: Vec<u32> = c.iter().map(|r| r.0).collect();
            w.u32_slice_packed(&ids);
        }
        // Pair registries columnar: the first column is sorted (the
        // lists are kept in batch order), so it delta-packs to ~1 byte
        // per pair.
        for pairs in [&self.subj_pair_vars, &self.pred_pair_vars, &self.obj_pair_vars] {
            let a: Vec<u32> = pairs.iter().map(|p| p.0 .0).collect();
            let b: Vec<u32> = pairs.iter().map(|p| p.1 .0).collect();
            let v: Vec<u32> = pairs.iter().map(|p| p.2 .0).collect();
            w.u32_slice_delta(&a);
            w.u32_slice_packed(&b);
            w.u32_slice_packed(&v);
        }
        w.usize(self.stats.triangles);
        w.usize(self.stats.fact_factors);
        w.usize(self.stats.consistency_factors);
    }

    /// Rebuild a plan from [`GraphPlan::export_state`] bytes. The graph
    /// is replayed through `add_var_with_class`/`add_factor` (so
    /// adjacency and edge enumeration are reconstructed exactly), with
    /// all structural invariants re-validated as typed errors; parameter
    /// shapes are checked against the layout `config.features` implies.
    pub fn import_state(
        r: &mut jocl_kb::snap::SnapReader<'_>,
        config: &JoclConfig,
    ) -> Result<GraphPlan, jocl_kb::KbError> {
        r.expect_tag("PLAN")?;
        let mut graph = FactorGraph::new();
        let num_vars = r.seq_len(16)?;
        for _ in 0..num_vars {
            let card = r.u32()?;
            let class = r.u64()?;
            if card == 0 {
                return Err(r.corrupt("variable with zero cardinality"));
            }
            let class = u8::try_from(class)
                .map_err(|_| r.corrupt(format!("variable class {class} overflows u8")))?;
            graph.add_var_with_class(card, class);
        }
        let num_factors = r.seq_len(24)?;
        for _ in 0..num_factors {
            let class = r.u64()?;
            let class = u8::try_from(class)
                .map_err(|_| r.corrupt(format!("factor class {class} overflows u8")))?;
            let raw_vars = r.u32_vec_packed()?;
            let mut vars = Vec::with_capacity(raw_vars.len());
            let mut table = 1usize;
            for v in raw_vars {
                if v as usize >= num_vars {
                    return Err(r.corrupt(format!("factor variable {v} out of range")));
                }
                let vid = VarId(v);
                if vars.contains(&vid) {
                    return Err(r.corrupt(format!("factor repeats variable {v}")));
                }
                table = table.saturating_mul(graph.cardinality(vid) as usize);
                vars.push(vid);
            }
            let potential = match r.u64()? {
                0 => {
                    let group = r.usize()?;
                    let rows = r.seq_len(2)?;
                    let feats: Vec<Vec<f64>> =
                        (0..rows).map(|_| r.f64_vec_packed()).collect::<Result<_, _>>()?;
                    Potential::Features { group, feats }
                }
                1 => Potential::Scores { group: r.usize()?, scores: r.f64_vec_packed()? },
                2 => {
                    let group = r.usize()?;
                    let size = r.usize()?;
                    let high_configs = r.u32_vec_delta()?;
                    let (high, low) = (r.f64()?, r.f64()?);
                    if high_configs.iter().any(|&c| c as usize >= size) {
                        return Err(r.corrupt("two-level high config out of range"));
                    }
                    if high_configs.windows(2).any(|w| w[0] >= w[1]) {
                        return Err(r.corrupt("two-level high configs not strictly sorted"));
                    }
                    Potential::TwoLevelScores { group, size, high_configs, high, low }
                }
                k => return Err(r.corrupt(format!("unknown potential kind {k}"))),
            };
            if potential.table_len() != table {
                return Err(r.corrupt(format!(
                    "potential table {} disagrees with joint configuration count {table}",
                    potential.table_len()
                )));
            }
            graph.add_factor(&vars, potential, class);
        }
        let (init, groups) = init_params(config.features);
        let num_groups = r.seq_len(8)?;
        if num_groups != init.num_groups() {
            return Err(r.corrupt(format!(
                "snapshot has {num_groups} parameter groups, config layout has {}",
                init.num_groups()
            )));
        }
        let mut group_vecs = Vec::with_capacity(num_groups);
        for gi in 0..num_groups {
            let vec = r.f64_vec()?;
            if vec.len() != init.group(gi).len() {
                return Err(r.corrupt(format!(
                    "parameter group {gi} has {} weights, config layout expects {}",
                    vec.len(),
                    init.group(gi).len()
                )));
            }
            group_vecs.push(vec);
        }
        let params = Params::from_groups(group_vecs);
        // Potentials must reference existing parameter groups, and every
        // Features row must match its group's width — `log_phi` would
        // otherwise index out of bounds (panic) or, in release builds,
        // silently truncate the dot product.
        for f in 0..num_factors {
            let fid = jocl_fg::FactorId(f as u32);
            let pot = graph.factor_potential(fid);
            let group = pot.group();
            if group >= params.num_groups() {
                return Err(r.corrupt(format!(
                    "factor {f} references parameter group {group}, have {}",
                    params.num_groups()
                )));
            }
            if let Potential::Features { feats, .. } = pot {
                let width = params.group(group).len();
                if let Some(row) = feats.iter().find(|row| row.len() != width) {
                    return Err(r.corrupt(format!(
                        "factor {f} has a {}-feature row against group {group}'s width {width}",
                        row.len()
                    )));
                }
            }
        }
        let var_in_range = |r: &jocl_kb::snap::SnapReader<'_>, v: u32| {
            if (v as usize) < num_vars {
                Ok(VarId(v))
            } else {
                Err(r.corrupt(format!("plan variable {v} out of range")))
            }
        };
        let link_vars = |r: &mut jocl_kb::snap::SnapReader<'_>| {
            let present = r.bool_vec_packed()?;
            let ids = r.u32_vec_packed()?;
            if ids.len() != present.iter().filter(|&&p| p).count() {
                return Err(r.corrupt(format!(
                    "link map has {} ids for {} present mentions",
                    ids.len(),
                    present.iter().filter(|&&p| p).count()
                )));
            }
            let mut ids = ids.into_iter();
            let mut out = Vec::with_capacity(present.len());
            for p in present {
                out.push(if p {
                    let v = ids.next().expect("counted above");
                    Some(var_in_range(r, v)?)
                } else {
                    None
                });
            }
            Ok::<_, jocl_kb::KbError>(out)
        };
        let np_link_vars = link_vars(r)?;
        let np_candidates: Vec<Vec<EntityId>> = (0..r.seq_len(1)?)
            .map(|_| Ok(r.u32_vec_packed()?.into_iter().map(EntityId).collect()))
            .collect::<Result<_, jocl_kb::KbError>>()?;
        let rp_link_vars = link_vars(r)?;
        let rp_candidates: Vec<Vec<RelationId>> = (0..r.seq_len(1)?)
            .map(|_| Ok(r.u32_vec_packed()?.into_iter().map(RelationId).collect()))
            .collect::<Result<_, jocl_kb::KbError>>()?;
        let mut pair_lists: Vec<Vec<(TripleId, TripleId, VarId)>> = Vec::with_capacity(3);
        for _ in 0..3 {
            let a = r.u32_vec_delta()?;
            let b = r.u32_vec_packed()?;
            let v = r.u32_vec_packed()?;
            if a.len() != b.len() || a.len() != v.len() {
                return Err(r.corrupt(format!(
                    "pair registry columns disagree: {} / {} / {}",
                    a.len(),
                    b.len(),
                    v.len()
                )));
            }
            let mut list = Vec::with_capacity(a.len());
            for ((a, b), v) in a.into_iter().zip(b).zip(v) {
                list.push((TripleId(a), TripleId(b), var_in_range(r, v)?));
            }
            pair_lists.push(list);
        }
        let obj_pair_vars = pair_lists.pop().expect("three lists");
        let pred_pair_vars = pair_lists.pop().expect("three lists");
        let subj_pair_vars = pair_lists.pop().expect("three lists");
        // Candidate lists are the state spaces of their link variables:
        // a mention with a variable must carry exactly
        // `cardinality`-many candidates (decode indexes them by MAP
        // state), one without must carry none.
        if np_link_vars.len() != np_candidates.len() || rp_link_vars.len() != rp_candidates.len() {
            return Err(r.corrupt(format!(
                "link-variable maps ({} np / {} rp) disagree with candidate maps ({} / {})",
                np_link_vars.len(),
                rp_link_vars.len(),
                np_candidates.len(),
                rp_candidates.len()
            )));
        }
        let check_candidates = |what: &str, vars: &[Option<VarId>], lens: &[usize]| {
            for (m, v) in vars.iter().enumerate() {
                let have = lens[m];
                let want = v.map(|v| graph.cardinality(v) as usize).unwrap_or(0);
                if have != want {
                    return Err(r.corrupt(format!(
                        "{what} mention {m} has {have} candidates for a variable with {want} \
                         states"
                    )));
                }
            }
            Ok(())
        };
        check_candidates(
            "np",
            &np_link_vars,
            &np_candidates.iter().map(Vec::len).collect::<Vec<_>>(),
        )?;
        check_candidates(
            "rp",
            &rp_link_vars,
            &rp_candidates.iter().map(Vec::len).collect::<Vec<_>>(),
        )?;
        let stats = BuildStats {
            triangles: r.usize()?,
            fact_factors: r.usize()?,
            consistency_factors: r.usize()?,
        };
        Ok(GraphPlan {
            graph,
            params,
            groups,
            np_link_vars,
            np_candidates,
            rp_link_vars,
            rp_candidates,
            subj_pair_vars,
            pred_pair_vars,
            obj_pair_vars,
            stats,
        })
    }
}

/// The transitive-relation score table of §3.1.5: high 0.9 when all three
/// pair variables are 1, low 0.1 when exactly one is 0, middle 0.5
/// otherwise.
pub fn transitivity_scores() -> Vec<f64> {
    (0..8u32)
        .map(|flat| match flat.count_ones() {
            3 => 0.9,
            2 => 0.1,
            _ => 0.5,
        })
        .collect()
}

/// Build the factor graph for `config.variant`.
///
/// Spawns the build pool (`config.build_threads`, `0` = all hardware
/// threads) and delegates to the sharded construction; the result is
/// identical for any thread count.
pub fn build_graph(
    okb: &Okb,
    ckb: &Ckb,
    signals: &Signals,
    blocking: &Blocking,
    config: &JoclConfig,
) -> GraphPlan {
    let sw = jocl_obs::Stopwatch::start();
    let _span = jocl_obs::span!("graph_build");
    let threads = jocl_exec::effective_threads(config.build_threads);
    let plan = jocl_exec::with_pool(threads, |pool| {
        build_graph_sharded(okb, ckb, signals, blocking, config, pool)
    });
    graph_build_ns().record(sw.ns());
    plan
}

/// Cached handle for the graph-build latency histogram (registered
/// once; never locks inside the build pool).
fn graph_build_ns() -> &'static std::sync::Arc<jocl_obs::Histogram> {
    static H: std::sync::OnceLock<std::sync::Arc<jocl_obs::Histogram>> = std::sync::OnceLock::new();
    H.get_or_init(|| jocl_obs::registry().histogram("jocl_graph_build_ns", &[]))
}

/// Shard size for pooled per-key computation: ~4 shards per worker.
fn shard_size(n: usize, pool: &Pool<'_>) -> usize {
    n.div_ceil(pool.threads() * 4).max(8)
}

/// Compute `work` over every element of `items` on the pool, preserving
/// item order in the output (shards are folded in chunk order).
fn sharded_map<T: Sync, R: Send>(
    pool: &Pool<'_>,
    items: &[T],
    work: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    pool.map_reduce(
        items.len(),
        shard_size(items.len(), pool),
        |_, range| items[range].iter().map(&work).collect::<Vec<R>>(),
        Vec::with_capacity(items.len()),
        |mut acc: Vec<R>, mut chunk| {
            acc.append(&mut chunk);
            acc
        },
    )
}

/// Distinct-key collector preserving first-seen order: returns the list
/// of `(key, payload-of-first-occurrence)` and a key → index map.
fn distinct_keys<K, P>(items: impl Iterator<Item = (K, P)>) -> (Vec<(K, P)>, FxHashMap<K, usize>)
where
    K: std::hash::Hash + Eq + Clone,
{
    let mut order: Vec<(K, P)> = Vec::new();
    let mut index: FxHashMap<K, usize> = FxHashMap::default();
    for (key, payload) in items {
        if !index.contains_key(&key) {
            index.insert(key.clone(), order.len());
            order.push((key, payload));
        }
    }
    (order, index)
}

/// Initial parameters (α = β = 2.0) and group handles for a feature set.
/// Shared by the batch builder and the incremental session so both
/// address the identical group layout.
pub(crate) fn init_params(fs: FeatureSet) -> (Params, ParamGroups) {
    let mut params = Params::new();
    let groups = ParamGroups {
        alpha1: params.add_group(fs.np_canon_len(), 2.0),
        alpha2: params.add_group(fs.rp_canon_len(), 2.0),
        alpha3: params.add_group(fs.np_canon_len(), 2.0),
        alpha4: params.add_group(fs.entity_link_len(), 2.0),
        alpha5: params.add_group(fs.relation_link_len(), 2.0),
        alpha6: params.add_group(fs.entity_link_len(), 2.0),
        beta: [
            params.add_group(1, 2.0),
            params.add_group(1, 2.0),
            params.add_group(1, 2.0),
            params.add_group(1, 2.0),
            params.add_group(1, 2.0),
            params.add_group(1, 2.0),
            params.add_group(1, 2.0),
        ],
        gamma: params.add_group(1, 2.0),
    };
    (params, groups)
}

/// Imported links matching `key`, with a determiner-stripped fallback
/// for NP surfaces ("the acme corp" hits an imported "acme corp" row).
fn side_lookup<'a>(side: &'a jocl_kb::SideKb, key: &str, entity: bool) -> &'a [jocl_kb::SideLink] {
    let links = if entity { side.entity_links(key) } else { side.relation_links(key) };
    if links.is_empty() && entity {
        if let Some(stripped) = key.strip_prefix("the ") {
            return side.entity_links(stripped);
        }
    }
    links
}

/// Resolve imported side links into candidate-space probabilities:
/// append resolved targets missing from `cands` (imported evidence may
/// introduce candidates retrieval missed), then score every candidate —
/// imported targets at `0.5 + w/2`, the rest at `0.5 - wmax/2`. `None`
/// (no table, no row for this surface, or nothing resolvable against
/// the CKB) means **no factor**, leaving the graph untouched.
fn side_probs<T: Copy + PartialEq>(
    links: &[jocl_kb::SideLink],
    side: &jocl_kb::SideKb,
    resolve: impl Fn(&str) -> Option<T>,
    cands: &mut Vec<T>,
) -> Option<Vec<f64>> {
    let mut matched: Vec<(T, f64)> = Vec::new();
    for l in links {
        if let Some(id) = resolve(side.resolve(l.target)) {
            if !matched.iter().any(|&(e, _)| e == id) {
                matched.push((id, l.weight));
            }
        }
    }
    if matched.is_empty() {
        return None;
    }
    for &(id, _) in &matched {
        if !cands.contains(&id) {
            cands.push(id);
        }
    }
    let wmax = matched.iter().map(|&(_, w)| w).fold(0.0, f64::max);
    Some(
        cands
            .iter()
            .map(|c| match matched.iter().find(|&&(e, _)| e == *c) {
                Some(&(_, w)) => 0.5 + w / 2.0,
                None => 0.5 - wmax / 2.0,
            })
            .collect(),
    )
}

/// NP-side injection: see [`side_probs`]. Shared verbatim by the batch
/// builder and the incremental session so their per-key caches stay
/// bit-identical.
pub(crate) fn entity_side_probs(
    side: Option<&jocl_kb::SideKb>,
    ckb: &Ckb,
    key: &str,
    cands: &mut Vec<EntityId>,
) -> Option<Vec<f64>> {
    let side = side?;
    let links = side_lookup(side, key, true);
    if links.is_empty() {
        return None;
    }
    side_probs(links, side, |name| ckb.entity_by_name(name), cands)
}

/// RP-side injection: see [`side_probs`].
pub(crate) fn relation_side_probs(
    side: Option<&jocl_kb::SideKb>,
    ckb: &Ckb,
    key: &str,
    cands: &mut Vec<RelationId>,
) -> Option<Vec<f64>> {
    let side = side?;
    let links = side_lookup(side, key, false);
    if links.is_empty() {
        return None;
    }
    side_probs(links, side, |name| ckb.relation_by_name(name), cands)
}

/// The active side-information table of a config: `None` when unset
/// **or empty** — an empty table must leave inference bitwise-identical
/// to the side-info-free pipeline.
pub(crate) fn active_side_info(config: &JoclConfig) -> Option<&jocl_kb::SideKb> {
    config.side_info.as_deref().filter(|s| !s.is_empty())
}

fn build_graph_sharded(
    okb: &Okb,
    ckb: &Ckb,
    signals: &Signals,
    blocking: &Blocking,
    config: &JoclConfig,
    pool: &Pool<'_>,
) -> GraphPlan {
    let mut graph = FactorGraph::new();
    let fs = config.features;
    let (params, groups) = init_params(fs);
    let mut stats = BuildStats::default();

    let with_linking =
        matches!(config.variant, Variant::Full | Variant::LinkOnly | Variant::NoConsistency);
    let with_canon =
        matches!(config.variant, Variant::Full | Variant::CanoOnly | Variant::NoConsistency);
    let with_consistency = matches!(config.variant, Variant::Full);

    // ---------------- linking variables + F4/F5/F6 -----------------------
    let mut np_link_vars: Vec<Option<VarId>> = vec![None; okb.num_np_mentions()];
    let mut np_candidates: Vec<Vec<EntityId>> = vec![Vec::new(); okb.num_np_mentions()];
    let mut rp_link_vars: Vec<Option<VarId>> = vec![None; okb.num_rp_mentions()];
    let mut rp_candidates: Vec<Vec<RelationId>> = vec![Vec::new(); okb.num_rp_mentions()];
    if with_linking {
        let gen = CandidateGen::new(ckb, config.candidates.clone());
        let side = active_side_info(config);
        // Candidates + features per distinct phrase, computed **from the
        // lowercase key itself**: every signal is case-insensitive (the
        // cache conflates case variants by construction), and deriving
        // the value from the canonical key — never from whichever
        // occurrence happened to fill the cache first — is what makes
        // feature vectors an intrinsic property of the phrase. The
        // incremental session and a restored snapshot recompute cache
        // entries at different times; only a canonical input keeps them
        // bit-for-bit reproducible.
        let (np_keys, np_index) = distinct_keys(okb.np_mentions().map(|m| {
            let phrase = okb.np_phrase(m);
            (phrase.to_lowercase(), ())
        }));
        let np_values: Vec<LinkValues<EntityId>> = sharded_map(pool, &np_keys, |(key, ())| {
            let scored = gen.entity_candidates(key);
            let mut cands: Vec<EntityId> = scored.iter().map(|s| s.id).collect();
            let side_probs = entity_side_probs(side, ckb, key, &mut cands);
            let feats: Vec<Vec<f64>> =
                cands.iter().map(|&e| entity_link_features(signals, ckb, key, e, fs)).collect();
            (cands, feats, side_probs)
        });
        graph.reserve(okb.num_np_mentions(), okb.num_np_mentions());
        for m in okb.np_mentions() {
            let key = okb.np_phrase(m).to_lowercase();
            let (cands, feats, side_probs) = &np_values[np_index[&key]];
            if cands.is_empty() {
                continue;
            }
            let var = graph.add_var_with_class(cands.len() as u32, classes::VAR_LINK);
            let (group, class) = match m.slot {
                NpSlot::Subject => (groups.alpha4, classes::F4),
                NpSlot::Object => (groups.alpha6, classes::F6),
            };
            graph.add_factor(&[var], Potential::Features { group, feats: feats.clone() }, class);
            if let Some(probs) = side_probs {
                graph.add_factor(
                    &[var],
                    Potential::from_probs(groups.gamma, probs.clone()),
                    classes::S1,
                );
            }
            np_link_vars[m.dense()] = Some(var);
            np_candidates[m.dense()] = cands.clone();
        }
        // RP linking runs in three pooled passes: (1) candidate retrieval
        // per distinct phrase; (2) per-surface-form contexts (raw +
        // morphologically normalized) for exactly the relations some
        // phrase shortlisted — not the whole CKB inventory, which a
        // serving-style run against a large CKB would otherwise pay for
        // on every build; (3) feature vectors from the cached contexts.
        let (rp_keys, rp_index) = distinct_keys(okb.rp_mentions().map(|m| {
            let phrase = okb.rp_phrase(m);
            (phrase.to_lowercase(), ())
        }));
        let rp_cands: Vec<(Vec<RelationId>, Option<Vec<f64>>)> =
            sharded_map(pool, &rp_keys, |(key, ())| {
                let mut cands: Vec<RelationId> =
                    gen.relation_candidates(key).iter().map(|s| s.id).collect();
                let side_probs = relation_side_probs(side, ckb, key, &mut cands);
                (cands, side_probs)
            });
        let mut used_rels: Vec<u32> = rp_cands.iter().flat_map(|(c, _)| c).map(|r| r.0).collect();
        used_rels.sort_unstable();
        used_rels.dedup();
        let used_ctx: Vec<Vec<(PhraseCtx, PhraseCtx)>> = sharded_map(pool, &used_rels, |&rid| {
            ckb.relation(RelationId(rid))
                .surface_forms
                .iter()
                .map(|sf| {
                    let normed = jocl_text::normalize::morph_normalize_rp(sf);
                    (signals.phrase_ctx(sf), signals.phrase_ctx(&normed))
                })
                .collect()
        });
        let ctx_of = |r: RelationId| -> &Vec<(PhraseCtx, PhraseCtx)> {
            &used_ctx[used_rels.binary_search(&r.0).expect("candidate relation has a context")]
        };
        let rp_values: Vec<LinkValues<RelationId>> = sharded_map(
            pool,
            &rp_cands.iter().zip(&rp_keys).collect::<Vec<_>>(),
            |((cands, side_probs), (key, ()))| {
                let pctx = signals.phrase_ctx(key);
                let nctx = signals.phrase_ctx(&jocl_text::normalize::morph_normalize_rp(key));
                let feats: Vec<Vec<f64>> = cands
                    .iter()
                    .map(|&r| relation_link_features_ctx(signals, &pctx, &nctx, ctx_of(r), fs))
                    .collect();
                ((*cands).clone(), feats, (*side_probs).clone())
            },
        );
        graph.reserve(okb.num_rp_mentions(), okb.num_rp_mentions());
        for m in okb.rp_mentions() {
            let key = okb.rp_phrase(m).to_lowercase();
            let (cands, feats, side_probs) = &rp_values[rp_index[&key]];
            if cands.is_empty() {
                continue;
            }
            let var = graph.add_var_with_class(cands.len() as u32, classes::VAR_LINK);
            graph.add_factor(
                &[var],
                Potential::Features { group: groups.alpha5, feats: feats.clone() },
                classes::F5,
            );
            if let Some(probs) = side_probs {
                graph.add_factor(
                    &[var],
                    Potential::from_probs(groups.gamma, probs.clone()),
                    classes::S2,
                );
            }
            rp_link_vars[m.dense()] = Some(var);
            rp_candidates[m.dense()] = cands.clone();
        }
    }

    // ---------------- canonicalization variables + F1/F2/F3 --------------
    let mut subj_pair_vars = Vec::new();
    let mut pred_pair_vars = Vec::new();
    let mut obj_pair_vars = Vec::new();
    if with_canon {
        // Distinct phrase pairs, similarities computed from the
        // canonical key (lexicographically ordered lowercase forms):
        // similarity functions are symmetric semantically but not to the
        // last ulp (summation order), so only a canonical argument order
        // keeps a cache refill — batch, incremental, or restored from a
        // snapshot — bit-for-bit identical.
        let np_pair_items =
            blocking
                .subj_pairs
                .iter()
                .map(|&(ti, tj)| (okb.triple(ti).subject.as_str(), okb.triple(tj).subject.as_str()))
                .chain(blocking.obj_pairs.iter().map(|&(ti, tj)| {
                    (okb.triple(ti).object.as_str(), okb.triple(tj).object.as_str())
                }));
        let (np_pair_keys, np_pair_index) =
            distinct_keys(np_pair_items.map(|(a, b)| (ordered_key(a, b), ())));
        let np_pair_sims: Vec<Vec<f64>> = sharded_map(pool, &np_pair_keys, |(key, ())| {
            np_canon_features(signals, &key.0, &key.1, fs)
        });
        let (rp_pair_keys, rp_pair_index) =
            distinct_keys(blocking.pred_pairs.iter().map(|&(ti, tj)| {
                (ordered_key(&okb.triple(ti).predicate, &okb.triple(tj).predicate), ())
            }));
        let rp_pair_sims: Vec<Vec<f64>> = sharded_map(pool, &rp_pair_keys, |(key, ())| {
            rp_canon_features(signals, &key.0, &key.1, fs)
        });

        // Per family: pre-allocate the pair variables, build the factor
        // batch in shards, merge in order.
        for (pairs, group, class, out, sims, index, phrase_of) in [
            (
                &blocking.subj_pairs,
                groups.alpha1,
                classes::F1,
                &mut subj_pair_vars,
                &np_pair_sims,
                &np_pair_index,
                (|t: &jocl_kb::Triple| t.subject.as_str()) as fn(&jocl_kb::Triple) -> &str,
            ),
            (
                &blocking.pred_pairs,
                groups.alpha2,
                classes::F2,
                &mut pred_pair_vars,
                &rp_pair_sims,
                &rp_pair_index,
                |t: &jocl_kb::Triple| t.predicate.as_str(),
            ),
            (
                &blocking.obj_pairs,
                groups.alpha3,
                classes::F3,
                &mut obj_pair_vars,
                &np_pair_sims,
                &np_pair_index,
                |t: &jocl_kb::Triple| t.object.as_str(),
            ),
        ] {
            let vars = graph.add_vars(pairs.len(), 2, classes::VAR_CANON);
            let potentials: Vec<Potential> = sharded_map(pool, pairs, |&(ti, tj)| {
                let key = ordered_key(phrase_of(okb.triple(ti)), phrase_of(okb.triple(tj)));
                pair_potential(group, &sims[index[&key]])
            });
            graph.add_factor_batch(
                vars.iter().zip(potentials).map(|(&v, p)| FactorSpec::new(vec![v], p, class)),
            );
            *out = pairs.iter().zip(vars).map(|(&(ti, tj), v)| (ti, tj, v)).collect();
        }

        // U1–U3 transitivity triangles.
        let tables = transitivity_scores();
        let mut budget = config.max_triangles;
        for (pairs, class, beta_idx) in [
            (&subj_pair_vars, classes::U1, 0usize),
            (&pred_pair_vars, classes::U2, 1),
            (&obj_pair_vars, classes::U3, 2),
        ] {
            let added = add_triangles(
                &mut graph,
                pairs,
                groups.beta[beta_idx],
                &tables,
                class,
                &mut budget,
            );
            stats.triangles += added;
        }
    }

    // ---------------- U4 fact inclusion ----------------------------------
    if with_linking {
        // Triples whose three linking variables all exist, in triple
        // order; the candidate-product fact probes run sharded.
        let u4_items: Vec<(VarId, VarId, VarId, usize, usize, usize)> = okb
            .triples()
            .filter_map(|(t, _)| {
                let sm = NpMention { triple: t, slot: NpSlot::Subject }.dense();
                let om = NpMention { triple: t, slot: NpSlot::Object }.dense();
                let rm = RpMention(t).dense();
                match (np_link_vars[sm], rp_link_vars[rm], np_link_vars[om]) {
                    (Some(sv), Some(rv), Some(ov)) => Some((sv, rv, ov, sm, rm, om)),
                    _ => None,
                }
            })
            .collect();
        let specs: Vec<FactorSpec> = sharded_map(pool, &u4_items, |&(sv, rv, ov, sm, rm, om)| {
            let cs = &np_candidates[sm];
            let cr = &rp_candidates[rm];
            let co = &np_candidates[om];
            let (ks, kr, ko) = (cs.len(), cr.len(), co.len());
            let mut high = Vec::new();
            for (oi, &o) in co.iter().enumerate() {
                for (ri, &r) in cr.iter().enumerate() {
                    for (si, &s) in cs.iter().enumerate() {
                        if ckb.has_fact(s, r, o) {
                            high.push((si + ks * ri + ks * kr * oi) as u32);
                        }
                    }
                }
            }
            FactorSpec::new(
                vec![sv, rv, ov],
                Potential::two_level(groups.beta[3], ks * kr * ko, high, 0.9, 0.1),
                classes::U4,
            )
        });
        stats.fact_factors = specs.len();
        graph.add_factor_batch(specs);
    }

    // ---------------- U5–U7 consistency ----------------------------------
    if with_consistency {
        for (pairs, class, beta_idx, slot) in [
            (&subj_pair_vars, classes::U5, 4usize, Some(NpSlot::Subject)),
            (&pred_pair_vars, classes::U6, 5, None),
            (&obj_pair_vars, classes::U7, 6, Some(NpSlot::Object)),
        ] {
            // Applicable pairs (both mentions have linking variables), in
            // pair order; equality tables are built in shards.
            let items: Vec<(VarId, VarId, VarId, usize, usize)> = pairs
                .iter()
                .filter_map(|&(ti, tj, pair_var)| {
                    let (ma, mb) = match slot {
                        Some(s) => (
                            NpMention { triple: ti, slot: s }.dense(),
                            NpMention { triple: tj, slot: s }.dense(),
                        ),
                        None => (RpMention(ti).dense(), RpMention(tj).dense()),
                    };
                    let (va, vb) = match slot {
                        Some(_) => (np_link_vars[ma], np_link_vars[mb]),
                        None => (rp_link_vars[ma], rp_link_vars[mb]),
                    };
                    match (va, vb) {
                        (Some(va), Some(vb)) => Some((va, vb, pair_var, ma, mb)),
                        _ => None,
                    }
                })
                .collect();
            let specs: Vec<FactorSpec> =
                sharded_map(pool, &items, |&(va, vb, pair_var, ma, mb)| {
                    let same_fn: EqualityTable = match slot {
                        Some(_) => equality_table(&np_candidates[ma], &np_candidates[mb]),
                        None => equality_table(&rp_candidates[ma], &rp_candidates[mb]),
                    };
                    let ka = graph.cardinality(va) as usize;
                    let kb = graph.cardinality(vb) as usize;
                    // Config (a, b, x): high when (cand_a == cand_b) ⟺ (x == 1).
                    let mut high = Vec::with_capacity(ka * kb);
                    for &(a, b, same) in &same_fn {
                        let x = usize::from(same); // the agreeing state
                        high.push((a + ka * b + ka * kb * x) as u32);
                    }
                    FactorSpec::new(
                        vec![va, vb, pair_var],
                        Potential::two_level(groups.beta[beta_idx], ka * kb * 2, high, 0.7, 0.3),
                        class,
                    )
                });
            stats.consistency_factors += specs.len();
            graph.add_factor_batch(specs);
        }
    }

    GraphPlan {
        graph,
        params,
        groups,
        np_link_vars,
        np_candidates,
        rp_link_vars,
        rp_candidates,
        subj_pair_vars,
        pred_pair_vars,
        obj_pair_vars,
        stats,
    }
}

/// Per-phrase linking cache entry: candidate ids, per-candidate feature
/// vectors, and the optional side-information probability row.
pub(crate) type LinkValues<Id> = (Vec<Id>, Vec<Vec<f64>>, Option<Vec<f64>>);

/// `(a_state, b_state, equal?)` for all candidate combinations.
pub(crate) type EqualityTable = Vec<(usize, usize, bool)>;

pub(crate) fn equality_table<T: PartialEq>(a: &[T], b: &[T]) -> EqualityTable {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for (ai, av) in a.iter().enumerate() {
        for (bi, bv) in b.iter().enumerate() {
            out.push((ai, bi, av == bv));
        }
    }
    out
}

/// F1/F2/F3 potential: state 0 features are `1 − s`, state 1 features `s`.
pub(crate) fn pair_potential(group: usize, sims: &[f64]) -> Potential {
    let state0: Vec<f64> = sims.iter().map(|s| 1.0 - s).collect();
    let state1 = sims.to_vec();
    Potential::Features { group, feats: vec![state0, state1] }
}

pub(crate) fn ordered_key(a: &str, b: &str) -> (String, String) {
    let (a, b) = (a.to_lowercase(), b.to_lowercase());
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// NP canonicalization feature vector ⟨f_idf, f_emb, f_PPDB⟩ (§3.1.3),
/// truncated by the feature set.
pub fn np_canon_features(signals: &Signals, a: &str, b: &str, fs: FeatureSet) -> Vec<f64> {
    let mut v = vec![signals.sim_idf_np(a, b)];
    if fs != FeatureSet::Single {
        v.push(signals.sim_emb(a, b));
    }
    if fs == FeatureSet::All {
        v.push(signals.sim_ppdb(a, b));
    }
    v
}

/// RP canonicalization feature vector
/// ⟨f_idf, f_emb, f_PPDB, f_AMIE, f_KBP⟩ (§3.1.4).
pub fn rp_canon_features(signals: &Signals, a: &str, b: &str, fs: FeatureSet) -> Vec<f64> {
    let mut v = vec![signals.sim_idf_rp(a, b)];
    if fs != FeatureSet::Single {
        v.push(signals.sim_emb(a, b));
    }
    if fs == FeatureSet::All {
        v.push(signals.sim_ppdb(a, b));
        v.push(signals.sim_amie(a, b));
        v.push(signals.sim_kbp(a, b));
    }
    v
}

/// Entity linking feature vector ⟨f_pop, f'_emb, f'_PPDB⟩ (§3.2.3).
pub fn entity_link_features(
    signals: &Signals,
    ckb: &Ckb,
    phrase: &str,
    e: EntityId,
    fs: FeatureSet,
) -> Vec<f64> {
    let mut v = vec![signals.popularity(ckb, phrase, e)];
    let name = &ckb.entity(e).name;
    if fs != FeatureSet::Single {
        v.push(signals.sim_emb(phrase, name));
    }
    if fs == FeatureSet::All {
        v.push(signals.sim_ppdb(phrase, name));
    }
    v
}

/// [`relation_link_features`] over precomputed contexts: `p` is the
/// phrase, `pn` its morph-normalized form, `surfaces` the candidate
/// relation's `(surface, normalized-surface)` contexts. Produces the
/// identical vector without re-tokenizing/normalizing per candidate —
/// the sharded builder's hot path (the uncached function below is the
/// reference implementation, kept for one-off callers and the
/// equivalence test).
fn relation_link_features_ctx(
    signals: &Signals,
    p: &PhraseCtx,
    pn: &PhraseCtx,
    surfaces: &[(PhraseCtx, PhraseCtx)],
    fs: FeatureSet,
) -> Vec<f64> {
    let best = |f: &dyn Fn(&PhraseCtx, &PhraseCtx) -> f64| -> f64 {
        surfaces.iter().map(|(sf, sfn)| f(p, sf).max(f(pn, sfn))).fold(0.0, f64::max)
    };
    let mut v = vec![best(&|a, b| signals.sim_ngram_ctx(a, b))];
    if fs != FeatureSet::Single {
        // Levenshtein with the length-bound prune; the running max is the
        // floor, so the fold equals `best(sim_ld)` exactly.
        v.push(surfaces.iter().fold(0.0f64, |acc, (sf, sfn)| {
            let acc = signals.sim_ld_ctx_at_least(p, sf, acc);
            signals.sim_ld_ctx_at_least(pn, sfn, acc)
        }));
    }
    if fs == FeatureSet::All {
        v.push(best(&|a, b| signals.sim_emb_ctx(a, b)));
        v.push(best(&|a, b| signals.sim_ppdb_ctx(a, b)));
    }
    v
}

/// Relation linking feature vector ⟨f_ngram, f_LD, f'_emb, f'_PPDB⟩
/// (§3.2.4). String similarity is taken against the best-matching surface
/// form of the candidate relation.
pub fn relation_link_features(
    signals: &Signals,
    ckb: &Ckb,
    phrase: &str,
    r: RelationId,
    fs: FeatureSet,
) -> Vec<f64> {
    let rel = ckb.relation(r);
    // RP comparisons run on raw and morphologically normalized forms and
    // keep the best score (OIE pipelines conventionally normalize RPs,
    // and the CKB's surface inventory stores base forms).
    let normed = jocl_text::normalize::morph_normalize_rp(phrase);
    let best = |f: &dyn Fn(&str, &str) -> f64| -> f64 {
        rel.surface_forms
            .iter()
            .map(|sf| f(phrase, sf).max(f(&normed, &jocl_text::normalize::morph_normalize_rp(sf))))
            .fold(0.0, f64::max)
    };
    let mut v = vec![best(&|a, b| signals.sim_ngram(a, b))];
    if fs != FeatureSet::Single {
        v.push(best(&|a, b| signals.sim_ld(a, b)));
    }
    if fs == FeatureSet::All {
        v.push(best(&|a, b| signals.sim_emb(a, b)));
        v.push(best(&|a, b| signals.sim_ppdb(a, b)));
    }
    v
}

/// Add transitivity factors for all triangles in a pair-variable family,
/// up to `budget`. Returns the number added.
fn add_triangles(
    graph: &mut FactorGraph,
    pairs: &[(TripleId, TripleId, VarId)],
    group: usize,
    scores: &[f64],
    class: u8,
    budget: &mut usize,
) -> usize {
    // Edge map (i, j) -> var.
    let mut edge: FxHashMap<(u32, u32), VarId> = FxHashMap::default();
    let mut adj: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    for &(a, b, v) in pairs {
        edge.insert((a.0, b.0), v);
        adj.entry(a.0).or_default().push(b.0);
        adj.entry(b.0).or_default().push(a.0);
    }
    let mut nodes: Vec<u32> = adj.keys().copied().collect();
    nodes.sort_unstable();
    let mut added = 0usize;
    'outer: for &i in &nodes {
        let mut nbrs: Vec<u32> = adj[&i].iter().copied().filter(|&n| n > i).collect();
        nbrs.sort_unstable();
        for (a_idx, &j) in nbrs.iter().enumerate() {
            for &k in &nbrs[a_idx + 1..] {
                let (Some(&vij), Some(&vjk), Some(&vik)) =
                    (edge.get(&(i, j)), edge.get(&(j, k)), edge.get(&(i, k)))
                else {
                    continue;
                };
                if *budget == 0 {
                    break 'outer;
                }
                *budget -= 1;
                graph.add_factor(
                    &[vij, vjk, vik],
                    Potential::Scores { group, scores: scores.to_vec() },
                    class,
                );
                added += 1;
            }
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitivity_table_matches_paper() {
        let t = transitivity_scores();
        assert_eq!(t.len(), 8);
        // flat = a + 2b + 4c
        assert_eq!(t[0b111], 0.9); // all ones: reward
        assert_eq!(t[0b011], 0.1); // two ones, one zero: penalize
        assert_eq!(t[0b101], 0.1);
        assert_eq!(t[0b110], 0.1);
        assert_eq!(t[0b000], 0.5); // otherwise: middle
        assert_eq!(t[0b001], 0.5);
    }

    #[test]
    fn pair_potential_complements_features() {
        let p = pair_potential(0, &[0.8, 0.3]);
        let Potential::Features { feats, .. } = p else { panic!() };
        assert_eq!(feats[1], vec![0.8, 0.3]);
        assert!((feats[0][0] - 0.2).abs() < 1e-12);
        assert!((feats[0][1] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn equality_table_enumerates_all() {
        let t = equality_table(&[1, 2], &[2, 3, 1]);
        assert_eq!(t.len(), 6);
        assert!(t.contains(&(0, 2, true))); // 1 == 1
        assert!(t.contains(&(1, 0, true))); // 2 == 2
        assert!(t.contains(&(0, 0, false)));
    }

    #[test]
    fn ordered_key_is_symmetric() {
        assert_eq!(ordered_key("B", "a"), ordered_key("a", "B"));
    }

    /// The context-based RP feature path (the sharded builder's hot loop)
    /// must produce exactly the reference `relation_link_features` vector.
    #[test]
    fn ctx_relation_features_match_reference() {
        let ex = crate::example::figure1();
        let signals = crate::signals::build_signals(
            &ex.okb,
            &ex.ckb,
            &ex.ppdb,
            &ex.corpus,
            &jocl_embed::SgnsOptions { dim: 8, epochs: 2, ..Default::default() },
        );
        let rel_ctx: Vec<Vec<(PhraseCtx, PhraseCtx)>> = (0..ex.ckb.num_relations() as u32)
            .map(|rid| {
                ex.ckb
                    .relation(RelationId(rid))
                    .surface_forms
                    .iter()
                    .map(|sf| {
                        let normed = jocl_text::normalize::morph_normalize_rp(sf);
                        (signals.phrase_ctx(sf), signals.phrase_ctx(&normed))
                    })
                    .collect()
            })
            .collect();
        for phrase in ["locate in", "be a member of", "be an early member of", "unrelated"] {
            let pctx = signals.phrase_ctx(phrase);
            let nctx = signals.phrase_ctx(&jocl_text::normalize::morph_normalize_rp(phrase));
            for fs in [FeatureSet::Single, FeatureSet::Double, FeatureSet::All] {
                for rid in 0..ex.ckb.num_relations() as u32 {
                    let r = RelationId(rid);
                    let reference = relation_link_features(&signals, &ex.ckb, phrase, r, fs);
                    let ctx = relation_link_features_ctx(
                        &signals,
                        &pctx,
                        &nctx,
                        &rel_ctx[rid as usize],
                        fs,
                    );
                    assert_eq!(reference, ctx, "phrase {phrase:?} relation {rid} {fs:?}");
                }
            }
        }
    }

    /// Sharding must not influence the built graph: any `build_threads`
    /// produces an identical structure, identical potentials, and
    /// identical plan indexes.
    #[test]
    fn build_is_identical_for_any_thread_count() {
        let ex = crate::example::figure1();
        let signals = crate::signals::build_signals(
            &ex.okb,
            &ex.ckb,
            &ex.ppdb,
            &ex.corpus,
            &jocl_embed::SgnsOptions { dim: 8, epochs: 2, ..Default::default() },
        );
        let build = |threads: usize| {
            // `effective_threads` clamps to the hardware, so drive the
            // sharded path directly with an unclamped pool.
            let config = JoclConfig { build_threads: threads, ..ex.config() };
            let blocking = crate::blocking::block_pairs(&ex.okb, &signals, &config);
            jocl_exec::with_pool(threads, |pool| {
                build_graph_sharded(&ex.okb, &ex.ckb, &signals, &blocking, &config, pool)
            })
        };
        let base = build(1);
        for threads in [2usize, 4] {
            let plan = build(threads);
            assert_eq!(plan.graph.num_vars(), base.graph.num_vars());
            assert_eq!(plan.graph.num_factors(), base.graph.num_factors());
            // Debug output covers cardinalities, adjacency, classes, and
            // every potential value — a full structural fingerprint.
            assert_eq!(format!("{:?}", plan.graph), format!("{:?}", base.graph));
            assert_eq!(plan.np_candidates, base.np_candidates);
            assert_eq!(plan.rp_candidates, base.rp_candidates);
            assert_eq!(plan.subj_pair_vars, base.subj_pair_vars);
            assert_eq!(plan.pred_pair_vars, base.pred_pair_vars);
            assert_eq!(plan.obj_pair_vars, base.obj_pair_vars);
        }
    }
}
