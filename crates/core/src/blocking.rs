//! Canonicalization-pair blocking.
//!
//! Paper §4.1: "As it is unnecessary and impractical to generate
//! canonicalization variables for all pairs of NPs and RPs in the factor
//! graph, we generate canonicalization variables only for NP (RP) pairs
//! with a relatively high similarity based on IDF token overlap …, whose
//! threshold is set to 0.5."
//!
//! Pairs are generated per variable family — subject×subject (`x_ij`),
//! predicate×predicate (`y_ij`), object×object (`z_ij`) — never across
//! families, matching the variable definitions of §3.1.1.
//!
//! To keep the graph near-linear in the OKB size, two caps apply:
//! mentions sharing an *identical* phrase form a clique only up to
//! `max_group_clique` (later members chain onto their predecessor —
//! union-find closure recovers the full cluster at decode time), and
//! cross-phrase pairs take at most `cross_cap` mentions from each side.
//!
//! Blocking is defined **streamingly**: [`BlockingIndex`] consumes one
//! triple at a time and emits exactly the new pairs that triple creates,
//! and [`block_pairs`] is nothing but a replay of the whole OKB through
//! that index. The pair set is therefore a *monotone* function of the
//! triple sequence — appending triples only ever adds pairs — which is
//! what lets the incremental pipeline (`crate::incremental`) extend a
//! live factor graph without ever retracting a variable. The caps are
//! applied against the state at arrival time:
//!
//! * an identical-phrase group forms a clique while it has at most
//!   `max_group_clique` members; each member beyond the cap chains onto
//!   the previous one;
//! * a mention participates in cross-phrase pairs only while its phrase
//!   has fewer than `cross_cap` owners, and pairs against the first
//!   `cross_cap` owners of the other phrase;
//! * a token stops proposing candidate phrase pairs once
//!   [`MAX_TOKEN_DF`] phrases carry it (pairs it proposed earlier
//!   persist).
//!
//! # Memory layout
//!
//! At paper scale the blocking index dominated resident memory when it
//! stored tokens as owned strings and the cumulative pair log as plain
//! `(u32, u32)` tuples. The index is therefore ID-compressed:
//!
//! * all tokens live once in a shared [`jocl_text::Interner`] owned by
//!   [`BlockingIndex`]; per-phrase token lists are `Vec<Sym>` sorted by
//!   symbol id, and similarity is a linear merge over two sorted symbol
//!   runs;
//! * per-family IDF weights are cached per symbol (`Vec<f64>`, NaN =
//!   not yet computed) — sound because a session's [`Signals`] are
//!   frozen, so a token's weight never changes;
//! * the cumulative pair log is run-encoded bytes: every pair emitted
//!   by an append is `(b, t)` with the new triple `t` on the right, so
//!   one append stores one varint run — `t`, a count, then ascending
//!   delta-coded `b`s — instead of `count` tuples.

use crate::config::JoclConfig;
use crate::signals::Signals;
use jocl_kb::{NpSlot, Okb, Triple, TripleId};
use jocl_text::fx::FxHashMap;
use jocl_text::tokenize;
use jocl_text::{Interner, Sym};

/// Blocked mention pairs for the three canonicalization variable
/// families. Pairs are ordered (`t_i < t_j`) and deduplicated.
#[derive(Debug, Clone, Default)]
pub struct Blocking {
    /// Subject–subject pairs (variables `x_ij`).
    pub subj_pairs: Vec<(TripleId, TripleId)>,
    /// Predicate–predicate pairs (variables `y_ij`).
    pub pred_pairs: Vec<(TripleId, TripleId)>,
    /// Object–object pairs (variables `z_ij`).
    pub obj_pairs: Vec<(TripleId, TripleId)>,
}

impl Blocking {
    /// Total number of blocked pairs.
    pub fn len(&self) -> usize {
        self.subj_pairs.len() + self.pred_pairs.len() + self.obj_pairs.len()
    }

    /// True when no pairs were generated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Generate blocked pairs for an OKB under `config`: a full replay of
/// the OKB through a fresh [`BlockingIndex`].
pub fn block_pairs(okb: &Okb, signals: &Signals, config: &JoclConfig) -> Blocking {
    let sw = jocl_obs::Stopwatch::start();
    let _span = jocl_obs::span!("blocking");
    let mut index = BlockingIndex::new(config);
    for (t, triple) in okb.triples() {
        index.append_triple(t, triple, signals);
    }
    let blocking = index.blocking();
    blocking_ns().record(sw.ns());
    blocking
}

/// Cached handle for the blocking-phase latency histogram (registered
/// once; never locks on the replay path).
fn blocking_ns() -> &'static std::sync::Arc<jocl_obs::Histogram> {
    static H: std::sync::OnceLock<std::sync::Arc<jocl_obs::Histogram>> = std::sync::OnceLock::new();
    H.get_or_init(|| jocl_obs::registry().histogram("jocl_blocking_ns", &[]))
}

/// Cap on how many distinct phrases a token may touch before it is
/// considered a non-discriminative hub and skipped during candidate pair
/// retrieval (IDF would score such pairs near zero anyway).
const MAX_TOKEN_DF: usize = 100;

/// The new pairs one appended triple created, per variable family.
/// Each list is ordered (`t_i < t_j`), sorted and duplicate-free.
#[derive(Debug, Clone, Default)]
pub struct BlockingDelta {
    /// New subject–subject pairs.
    pub subj_pairs: Vec<(TripleId, TripleId)>,
    /// New predicate–predicate pairs.
    pub pred_pairs: Vec<(TripleId, TripleId)>,
    /// New object–object pairs.
    pub obj_pairs: Vec<(TripleId, TripleId)>,
}

impl BlockingDelta {
    /// Total new pairs across the three families.
    pub fn len(&self) -> usize {
        self.subj_pairs.len() + self.pred_pairs.len() + self.obj_pairs.len()
    }

    /// True when the appended triple created no pairs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Append-only blocking state for the three variable families.
///
/// `append_triple` must be called with consecutive [`TripleId`]s in OKB
/// order; batch [`block_pairs`] and the incremental session both replay
/// through this type, so the cumulative pair set is identical by
/// construction no matter how arrivals are batched.
#[derive(Debug, Clone)]
pub struct BlockingIndex {
    /// Token arena shared by all three families (subjects and objects
    /// draw from the same NP vocabulary, so sharing roughly halves the
    /// distinct-string count versus per-family arenas).
    interner: Interner,
    subj: FamilyIndex,
    pred: FamilyIndex,
    obj: FamilyIndex,
    blocking_threshold: f64,
    max_group_clique: usize,
    cross_cap: usize,
}

impl BlockingIndex {
    /// Empty index under `config`'s caps and threshold.
    pub fn new(config: &JoclConfig) -> Self {
        Self {
            interner: Interner::new(),
            subj: FamilyIndex::default(),
            pred: FamilyIndex::default(),
            obj: FamilyIndex::default(),
            blocking_threshold: config.blocking_threshold,
            max_group_clique: config.max_group_clique,
            cross_cap: config.cross_cap,
        }
    }

    /// Append one triple; returns the pairs it newly creates. Subjects
    /// and objects block on the lowercase phrase; predicates block on
    /// their morphological normal form (tense, auxiliaries, determiners
    /// and modifiers stripped): OIE relation phrases are conventionally
    /// pre-normalized this way (ReVerb emits normalized RPs; AMIE's
    /// input is "morphological normalized OIE triples", §3.1.4), and raw
    /// IDF overlap between function words would otherwise dominate the
    /// blocking decision.
    pub fn append_triple(
        &mut self,
        t: TripleId,
        triple: &Triple,
        signals: &Signals,
    ) -> BlockingDelta {
        let caps = Caps {
            threshold: self.blocking_threshold,
            clique: self.max_group_clique,
            cross: self.cross_cap,
        };
        BlockingDelta {
            subj_pairs: self.subj.append(
                t,
                triple.subject.to_lowercase(),
                &signals.idf_np,
                &mut self.interner,
                caps,
            ),
            pred_pairs: self.pred.append(
                t,
                jocl_text::normalize::morph_normalize_rp(&triple.predicate),
                &signals.idf_rp,
                &mut self.interner,
                caps,
            ),
            obj_pairs: self.obj.append(
                t,
                triple.object.to_lowercase(),
                &signals.idf_np,
                &mut self.interner,
                caps,
            ),
        }
    }

    /// Serialize the full blocking state into a snapshot section. The
    /// shared token interner **is** written: symbol-id assignment depends
    /// on how arrivals interleaved across the three families, so
    /// re-interning on import would reassign ids and break the
    /// restored-versus-uninterrupted parity contract. Per-phrase token
    /// lists, the token inverted indexes and the IDF weight caches are
    /// *not* written — they are pure functions of the phrase texts and
    /// the restored interner — but owners, threshold-passing links and
    /// the run-encoded pair logs are arrival-time decisions and are part
    /// of the state.
    pub fn export_state(&self, w: &mut jocl_kb::snap::SnapWriter) {
        w.tag("BLK");
        w.usize(self.interner.len());
        for (_, s) in self.interner.iter() {
            w.str(s);
        }
        for fam in [&self.subj, &self.pred, &self.obj] {
            fam.export_state(w);
        }
    }

    /// Rebuild a blocking index from [`BlockingIndex::export_state`]
    /// bytes under `config`'s caps. `num_triples` bounds the owner/pair
    /// ids for validation.
    pub fn import_state(
        r: &mut jocl_kb::snap::SnapReader<'_>,
        config: &JoclConfig,
        num_triples: usize,
    ) -> Result<Self, jocl_kb::KbError> {
        r.expect_tag("BLK")?;
        let n = r.seq_len(8)?;
        let mut interner = Interner::with_capacity(n);
        for i in 0..n {
            let s = r.str()?;
            if interner.intern(&s).idx() != i {
                return Err(r.corrupt(format!("duplicate interned token {s:?}")));
            }
        }
        let subj = FamilyIndex::import_state(r, &interner, num_triples)?;
        let pred = FamilyIndex::import_state(r, &interner, num_triples)?;
        let obj = FamilyIndex::import_state(r, &interner, num_triples)?;
        Ok(Self {
            interner,
            subj,
            pred,
            obj,
            blocking_threshold: config.blocking_threshold,
            max_group_clique: config.max_group_clique,
            cross_cap: config.cross_cap,
        })
    }

    /// The cumulative pair set, sorted per family.
    pub fn blocking(&self) -> Blocking {
        let sorted = |log: &PairLog| {
            let mut v = log.decode().expect("pair log is self-produced or import-validated");
            v.sort_unstable();
            v
        };
        Blocking {
            subj_pairs: sorted(&self.subj.pairs),
            pred_pairs: sorted(&self.pred.pairs),
            obj_pairs: sorted(&self.obj.pairs),
        }
    }

    /// Resident heap bytes: the shared token interner plus the three
    /// family indexes (phrase entries, text map, token inverted index,
    /// lazy IDF weight caches and the run-encoded pair logs).
    pub fn heap_bytes(&self) -> usize {
        self.interner.heap_bytes()
            + self.subj.heap_bytes()
            + self.pred.heap_bytes()
            + self.obj.heap_bytes()
    }
}

#[derive(Clone, Copy)]
struct Caps {
    threshold: f64,
    clique: usize,
    cross: usize,
}

/// One distinct blocking phrase.
#[derive(Debug, Clone)]
struct PhraseEntry {
    /// Triples carrying the phrase, in arrival (= id) order.
    owners: Vec<TripleId>,
    /// Deduplicated tokens, sorted by symbol id (similarity is a merge
    /// over two such runs).
    tokens: Vec<Sym>,
    /// Phrase ids whose IDF similarity passed the threshold when one of
    /// the two phrases arrived. Ascending by construction: a phrase's
    /// initial links are sorted earlier ids, and every later link is
    /// pushed by a newly arriving phrase with a larger id.
    links: Vec<u32>,
}

/// Append-only blocking state of one variable family.
#[derive(Debug, Clone, Default)]
struct FamilyIndex {
    phrases: Vec<PhraseEntry>,
    by_text: FxHashMap<String, u32>,
    /// token symbol → phrase ids carrying it (arrival order).
    token_index: FxHashMap<Sym, Vec<u32>>,
    /// Lazy per-symbol IDF weight cache (NaN = not yet computed).
    /// Transient: sound because the session's signals are frozen, and
    /// rebuilt on demand after an import.
    weights: Vec<f64>,
    /// Cumulative emitted pairs (run-encoded; no duplicates by
    /// construction).
    pairs: PairLog,
}

impl FamilyIndex {
    /// Serialize this family: phrase texts (in id order) with owners and
    /// links, plus the run-encoded pair log.
    fn export_state(&self, w: &mut jocl_kb::snap::SnapWriter) {
        let mut texts: Vec<Option<&str>> = vec![None; self.phrases.len()];
        for (text, &pi) in &self.by_text {
            texts[pi as usize] = Some(text);
        }
        w.usize(self.phrases.len());
        let mut ids: Vec<u32> = Vec::new();
        for (pi, p) in self.phrases.iter().enumerate() {
            w.str(texts[pi].expect("every phrase id has a by_text entry"));
            ids.clear();
            ids.extend(p.owners.iter().map(|t| t.0));
            w.u32_slice_delta(&ids);
            w.u32_slice_delta(&p.links);
        }
        w.usize(self.pairs.len);
        w.bytes(&self.pairs.bytes);
    }

    /// Inverse of [`FamilyIndex::export_state`]; tokens, the token
    /// inverted index and the weight cache are recomputed from the
    /// phrase texts and the restored interner.
    fn import_state(
        r: &mut jocl_kb::snap::SnapReader<'_>,
        interner: &Interner,
        num_triples: usize,
    ) -> Result<Self, jocl_kb::KbError> {
        let n = r.seq_len(10)?;
        let mut fam = FamilyIndex::default();
        for pi in 0..n {
            let text = r.str()?;
            let owner_ids = r.u32_vec_delta()?;
            let links = r.u32_vec_delta()?;
            if let Some(&bad) = owner_ids.iter().find(|&&t| t as usize >= num_triples) {
                return Err(r.corrupt(format!("owner triple {bad} out of range")));
            }
            if owner_ids.windows(2).any(|w| w[0] == w[1]) {
                return Err(r.corrupt(format!("duplicate owner in phrase {pi}")));
            }
            if let Some(&bad) = links.iter().find(|&&l| l as usize >= n) {
                return Err(r.corrupt(format!("phrase link {bad} out of range")));
            }
            if links.windows(2).any(|w| w[0] == w[1]) {
                return Err(r.corrupt(format!("duplicate link in phrase {pi}")));
            }
            let mut tokens = Vec::new();
            for tok in tokenize(&text) {
                match interner.get(&tok) {
                    Some(sym) => tokens.push(sym),
                    None => return Err(r.corrupt(format!("phrase token {tok:?} not interned"))),
                }
            }
            tokens.sort_unstable();
            tokens.dedup();
            for &tok in &tokens {
                fam.token_index.entry(tok).or_default().push(pi as u32);
            }
            if fam.by_text.insert(text, pi as u32).is_some() {
                return Err(r.corrupt(format!("duplicate phrase text for id {pi}")));
            }
            let owners = owner_ids.into_iter().map(TripleId).collect();
            fam.phrases.push(PhraseEntry { owners, tokens, links });
        }
        let len = r.seq_len(1)?;
        let bytes = r.bytes()?;
        let pairs = PairLog { bytes, len };
        let decoded = pairs.decode().map_err(|e| r.corrupt(e))?;
        if let Some(&(_, b)) = decoded.iter().find(|&&(_, b)| b.idx() >= num_triples) {
            return Err(r.corrupt(format!("pair triple {} out of range", b.0)));
        }
        fam.pairs = pairs;
        Ok(fam)
    }

    /// Append one mention; returns the new pairs, sorted.
    fn append(
        &mut self,
        t: TripleId,
        key: String,
        idf: &jocl_text::IdfIndex,
        interner: &mut Interner,
        caps: Caps,
    ) -> Vec<(TripleId, TripleId)> {
        let ordered = |a: TripleId, b: TripleId| if a.0 < b.0 { (a, b) } else { (b, a) };
        let mut fresh: Vec<(TripleId, TripleId)> = Vec::new();
        match self.by_text.get(&key).copied() {
            Some(pi) => {
                let pi = pi as usize;
                let k = self.phrases[pi].owners.len();
                // Identical-phrase group: clique while small, chain after.
                if k < caps.clique {
                    for &b in &self.phrases[pi].owners {
                        fresh.push(ordered(t, b));
                    }
                } else if let Some(&last) = self.phrases[pi].owners.last() {
                    fresh.push(ordered(t, last));
                }
                // Cross-phrase pairs: only while this phrase is below the
                // cross cap, against the first `cross` owners of each
                // linked phrase.
                if k < caps.cross {
                    for li in self.phrases[pi].links.clone() {
                        for &b in self.phrases[li as usize].owners.iter().take(caps.cross) {
                            fresh.push(ordered(t, b));
                        }
                    }
                }
                self.phrases[pi].owners.push(t);
            }
            None => {
                let mut tokens: Vec<Sym> =
                    tokenize(&key).iter().map(|tok| interner.intern(tok)).collect();
                tokens.sort_unstable();
                tokens.dedup();
                // Candidate phrases through shared non-hub tokens. A
                // token is consulted only while its phrase list is below
                // MAX_TOKEN_DF at arrival time (monotone hub-out).
                let mut cands: Vec<u32> = Vec::new();
                for tok in &tokens {
                    if let Some(list) = self.token_index.get(tok) {
                        if list.len() < MAX_TOKEN_DF {
                            cands.extend_from_slice(list);
                        }
                    }
                }
                cands.sort_unstable();
                cands.dedup();
                let pi = self.phrases.len() as u32;
                let mut links: Vec<u32> = Vec::new();
                for pb in cands {
                    let sim = sim_cached(
                        &tokens,
                        &self.phrases[pb as usize].tokens,
                        &mut self.weights,
                        interner,
                        idf,
                    );
                    if sim < caps.threshold {
                        continue;
                    }
                    links.push(pb);
                    let other = &mut self.phrases[pb as usize];
                    other.links.push(pi);
                    for &b in other.owners.iter().take(caps.cross) {
                        fresh.push(ordered(t, b));
                    }
                }
                for &tok in &tokens {
                    self.token_index.entry(tok).or_default().push(pi);
                }
                self.by_text.insert(key, pi);
                self.phrases.push(PhraseEntry { owners: vec![t], tokens, links });
            }
        }
        fresh.sort_unstable();
        fresh.dedup();
        if !fresh.is_empty() {
            self.pairs.push_run(t, &fresh);
        }
        fresh
    }

    /// Resident heap bytes of this family.
    fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let phrase_heap: usize = self
            .phrases
            .iter()
            .map(|p| {
                p.owners.capacity() * size_of::<TripleId>()
                    + p.tokens.capacity() * size_of::<Sym>()
                    + p.links.capacity() * size_of::<u32>()
            })
            .sum();
        self.phrases.capacity() * size_of::<PhraseEntry>()
            + phrase_heap
            + self.by_text.capacity() * (size_of::<String>() + size_of::<u32>() + 1)
            + self.by_text.keys().map(|k| k.capacity()).sum::<usize>()
            + self.token_index.capacity() * (size_of::<Sym>() + size_of::<Vec<u32>>() + 1)
            + self.token_index.values().map(|v| v.capacity() * size_of::<u32>()).sum::<usize>()
            + self.weights.capacity() * size_of::<f64>()
            + self.pairs.heap_bytes()
    }
}

/// `Sim_idf` over two symbol runs sorted by id: a linear merge, reading
/// per-token weights through the family's lazy cache. Matches
/// [`jocl_text::IdfIndex::sim_tokens`] up to floating-point summation
/// order (the merge sums in symbol order, not lexicographic order).
fn sim_cached(
    wa: &[Sym],
    wb: &[Sym],
    weights: &mut Vec<f64>,
    interner: &Interner,
    idf: &jocl_text::IdfIndex,
) -> f64 {
    if wa.is_empty() || wb.is_empty() {
        return 0.0;
    }
    let mut w = |s: Sym| {
        if s.idx() >= weights.len() {
            weights.resize(s.idx() + 1, f64::NAN);
        }
        if weights[s.idx()].is_nan() {
            weights[s.idx()] = idf.weight(interner.resolve(s));
        }
        weights[s.idx()]
    };
    let (mut inter, mut union) = (0.0, 0.0);
    let (mut i, mut j) = (0, 0);
    while i < wa.len() && j < wb.len() {
        match wa[i].cmp(&wb[j]) {
            std::cmp::Ordering::Less => {
                union += w(wa[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                union += w(wb[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let x = w(wa[i]);
                inter += x;
                union += x;
                i += 1;
                j += 1;
            }
        }
    }
    for &s in &wa[i..] {
        union += w(s);
    }
    for &s in &wb[j..] {
        union += w(s);
    }
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Run-encoded cumulative pair log. Every pair a [`FamilyIndex::append`]
/// emits has the newly appended triple on the right, so one append is one
/// run: varint `t`, varint count, then the ascending left-hand ids
/// delta-coded (first id raw, then gaps).
#[derive(Debug, Clone, Default)]
struct PairLog {
    bytes: Vec<u8>,
    /// Total pairs across all runs.
    len: usize,
}

impl PairLog {
    /// Append one run: the pairs `(b, t)` for each `b` in `fresh` (which
    /// is sorted, deduplicated, and entirely left of `t`).
    fn push_run(&mut self, t: TripleId, fresh: &[(TripleId, TripleId)]) {
        push_vu64(&mut self.bytes, u64::from(t.0));
        push_vu64(&mut self.bytes, fresh.len() as u64);
        let mut prev = 0u32;
        for (i, &(b, hi)) in fresh.iter().enumerate() {
            debug_assert_eq!(hi, t, "every emitted pair carries the new triple on the right");
            let d = if i == 0 { b.0 } else { b.0 - prev };
            push_vu64(&mut self.bytes, u64::from(d));
            prev = b.0;
        }
        self.len += fresh.len();
    }

    /// Decode all runs back to `(b, t)` pairs, in emission order.
    /// Validates structure (ascending `b < t`, declared count) so import
    /// can reject corrupt logs with a typed error instead of panicking.
    fn decode(&self) -> Result<Vec<(TripleId, TripleId)>, String> {
        let mut out = Vec::with_capacity(self.len.min(self.bytes.len()));
        let mut pos = 0;
        while pos < self.bytes.len() {
            let t = u32::try_from(read_vu64(&self.bytes, &mut pos)?)
                .map_err(|_| "pair run id exceeds u32".to_string())?;
            let count = read_vu64(&self.bytes, &mut pos)?;
            let mut b = 0u64;
            for i in 0..count {
                let d = read_vu64(&self.bytes, &mut pos)?;
                if i > 0 && d == 0 {
                    return Err(format!("duplicate pair in run for {t}"));
                }
                b = if i == 0 {
                    d
                } else {
                    b.checked_add(d).ok_or_else(|| format!("pair run for {t} overflows"))?
                };
                if b >= u64::from(t) {
                    return Err(format!("pair run for {t} climbs to {b}"));
                }
                out.push((TripleId(b as u32), TripleId(t)));
            }
        }
        if out.len() != self.len {
            return Err(format!("pair log holds {} pairs, declared {}", out.len(), self.len));
        }
        Ok(out)
    }

    fn heap_bytes(&self) -> usize {
        self.bytes.capacity()
    }
}

/// LEB128-append `v` to `out`.
fn push_vu64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// LEB128-read one value from `bytes` at `*pos`, advancing it.
fn read_vu64(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if shift >= 64 {
            return Err("pair log varint too long".to_string());
        }
        let &b = bytes.get(*pos).ok_or_else(|| "pair log truncated".to_string())?;
        *pos += 1;
        if shift == 63 && (b & 0x7f) > 1 {
            return Err("pair log varint exceeds u64".to_string());
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Convenience: the phrase of the subject / predicate / object slot used
/// by a pair family.
pub fn family_phrase(okb: &Okb, t: TripleId, family: PairFamily) -> &str {
    let tr = okb.triple(t);
    match family {
        PairFamily::Subject => &tr.subject,
        PairFamily::Predicate => &tr.predicate,
        PairFamily::Object => &tr.object,
    }
}

/// The three canonicalization variable families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairFamily {
    /// `x_ij` over subjects.
    Subject,
    /// `y_ij` over predicates.
    Predicate,
    /// `z_ij` over objects.
    Object,
}

impl PairFamily {
    /// The NP slot corresponding to this family (predicates have none).
    pub fn np_slot(self) -> Option<NpSlot> {
        match self {
            PairFamily::Subject => Some(NpSlot::Subject),
            PairFamily::Object => Some(NpSlot::Object),
            PairFamily::Predicate => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::build_signals;
    use jocl_embed::SgnsOptions;
    use jocl_kb::{Ckb, Triple};
    use jocl_rules::ParaphraseStore;

    fn okb() -> Okb {
        let mut okb = Okb::new();
        okb.add_triple(Triple::new("University of Maryland", "locate in", "Maryland"));
        okb.add_triple(Triple::new("University of Maryland", "be a member of", "Universitas 21"));
        okb.add_triple(Triple::new("University of Virginia", "be an early member of", "U21"));
        okb.add_triple(Triple::new("Warren Buffett", "live in", "Omaha"));
        okb
    }

    fn signals(okb: &Okb) -> Signals {
        build_signals(
            okb,
            &Ckb::new(),
            &ParaphraseStore::new(),
            &[],
            &SgnsOptions { dim: 4, epochs: 1, ..Default::default() },
        )
    }

    #[test]
    fn identical_subjects_pair_up() {
        let okb = okb();
        let s = signals(&okb);
        let b = block_pairs(&okb, &s, &JoclConfig::default());
        assert!(
            b.subj_pairs.contains(&(TripleId(0), TripleId(1))),
            "identical subjects must pair: {:?}",
            b.subj_pairs
        );
    }

    #[test]
    fn similar_subjects_pair_dissimilar_do_not() {
        let okb = okb();
        let s = signals(&okb);
        let b = block_pairs(&okb, &s, &JoclConfig::default());
        // "University of Maryland" vs "University of Virginia" share
        // "university of" — above threshold with IDF weighting? They share
        // 2 of 4 tokens; either way "Warren Buffett" must not pair with
        // universities.
        assert!(!b.subj_pairs.iter().any(|&(a, b2)| { (a == TripleId(3)) ^ (b2 == TripleId(3)) }));
    }

    #[test]
    fn predicates_block_within_family_only() {
        let okb = okb();
        let s = signals(&okb);
        let b = block_pairs(&okb, &s, &JoclConfig::default());
        // "be a member of" vs "be an early member of" share most tokens.
        assert!(b.pred_pairs.contains(&(TripleId(1), TripleId(2))), "{:?}", b.pred_pairs);
    }

    #[test]
    fn pairs_are_ordered_and_unique() {
        let okb = okb();
        let s = signals(&okb);
        let b = block_pairs(&okb, &s, &JoclConfig::default());
        for list in [&b.subj_pairs, &b.pred_pairs, &b.obj_pairs] {
            let mut seen = std::collections::HashSet::new();
            for &(a, b2) in list.iter() {
                assert!(a.0 < b2.0, "pairs must be ordered");
                assert!(seen.insert((a, b2)), "duplicate pair");
            }
        }
    }

    #[test]
    fn threshold_one_keeps_only_identical() {
        let okb = okb();
        let s = signals(&okb);
        let config = JoclConfig { blocking_threshold: 1.0 + 1e-9, ..Default::default() };
        let b = block_pairs(&okb, &s, &config);
        // Only the duplicated "University of Maryland" subject pair
        // (identical phrases bypass the similarity check).
        assert_eq!(b.subj_pairs, vec![(TripleId(0), TripleId(1))]);
    }

    #[test]
    fn chain_cap_limits_identical_groups() {
        let mut okb = Okb::new();
        for i in 0..20 {
            okb.add_triple(Triple::new("Same Phrase", "rel", &format!("obj{i}")));
        }
        let s = signals(&okb);
        let config = JoclConfig { max_group_clique: 5, ..Default::default() };
        let b = block_pairs(&okb, &s, &config);
        // A clique over all 20 would be C(20,2)=190 pairs; the streaming
        // cap forms a clique over the first 5 (C(5,2)=10) and chains each
        // of the remaining 15 onto its predecessor.
        assert_eq!(b.subj_pairs.len(), 10 + 15);
        // Connectivity is preserved: the pairs chain all 20 triples.
        let edges: Vec<(usize, usize)> =
            b.subj_pairs.iter().map(|&(a, b2)| (a.idx(), b2.idx())).collect();
        let c = jocl_cluster::Clustering::from_edges(20, edges);
        assert_eq!(c.num_clusters(), 1);
    }

    #[test]
    fn empty_okb_blocks_nothing() {
        let okb = Okb::new();
        let s = signals(&okb);
        let b = block_pairs(&okb, &s, &JoclConfig::default());
        assert!(b.is_empty());
    }

    /// The monotonicity contract behind incremental ingestion: the
    /// per-append deltas concatenate (as sets) to exactly the batch pair
    /// set, so replaying in any batching reproduces `block_pairs`.
    #[test]
    fn append_deltas_concatenate_to_batch_blocking() {
        let okb = okb();
        let s = signals(&okb);
        let config = JoclConfig::default();
        let batch = block_pairs(&okb, &s, &config);
        let mut index = BlockingIndex::new(&config);
        let mut collected = Blocking::default();
        for (t, triple) in okb.triples() {
            let delta = index.append_triple(t, triple, &s);
            collected.subj_pairs.extend(delta.subj_pairs);
            collected.pred_pairs.extend(delta.pred_pairs);
            collected.obj_pairs.extend(delta.obj_pairs);
        }
        let replayed = index.blocking();
        assert_eq!(replayed.subj_pairs, batch.subj_pairs);
        assert_eq!(replayed.pred_pairs, batch.pred_pairs);
        assert_eq!(replayed.obj_pairs, batch.obj_pairs);
        for (mut got, want) in [
            (collected.subj_pairs, &batch.subj_pairs),
            (collected.pred_pairs, &batch.pred_pairs),
            (collected.obj_pairs, &batch.obj_pairs),
        ] {
            got.sort_unstable();
            assert_eq!(&got, want, "deltas must concatenate to the batch pair set");
        }
    }

    /// An appended delta only ever involves the new triple — the contract
    /// the incremental graph builder relies on (old pair variables never
    /// need revisiting).
    #[test]
    fn append_delta_only_pairs_the_new_triple() {
        let okb = okb();
        let s = signals(&okb);
        let mut index = BlockingIndex::new(&JoclConfig::default());
        for (t, triple) in okb.triples() {
            let delta = index.append_triple(t, triple, &s);
            for pairs in [&delta.subj_pairs, &delta.pred_pairs, &delta.obj_pairs] {
                for &(a, b) in pairs.iter() {
                    assert!(a == t || b == t, "pair {a:?}-{b:?} from appending {t:?}");
                    assert!(a.0 < b.0);
                }
            }
        }
    }

    /// Exporting mid-stream, importing, and continuing must be
    /// indistinguishable from never stopping — including the re-exported
    /// bytes, which is what the session snapshot parity tests lean on.
    /// This is why the shared interner is serialized: re-interning on
    /// import would reassign symbol ids by family instead of by arrival
    /// interleaving.
    #[test]
    fn import_resumes_bitwise_identical_to_uninterrupted() {
        let mut okb = Okb::new();
        for i in 0..10 {
            okb.add_triple(Triple::new(
                &format!("University of State {i}"),
                "be a member of",
                "Universitas 21",
            ));
            okb.add_triple(Triple::new("Warren Buffett", &format!("rel {i}"), "Omaha"));
        }
        let s = signals(&okb);
        let config = JoclConfig::default();

        let mut uninterrupted = BlockingIndex::new(&config);
        let mut resumed: Option<BlockingIndex> = None;
        for (t, triple) in okb.triples() {
            let want = uninterrupted.append_triple(t, triple, &s);
            if let Some(idx) = resumed.as_mut() {
                let got = idx.append_triple(t, triple, &s);
                assert_eq!(got.subj_pairs, want.subj_pairs, "delta diverged at {t:?}");
                assert_eq!(got.pred_pairs, want.pred_pairs, "delta diverged at {t:?}");
                assert_eq!(got.obj_pairs, want.obj_pairs, "delta diverged at {t:?}");
            }
            if t.idx() == 9 {
                let mut w = jocl_kb::snap::SnapWriter::new();
                uninterrupted.export_state(&mut w);
                let bytes = w.into_bytes();
                let mut r = jocl_kb::snap::SnapReader::new(&bytes);
                resumed = Some(BlockingIndex::import_state(&mut r, &config, okb.len()).unwrap());
            }
        }
        let resumed = resumed.expect("snapshot point was reached");
        let mut wa = jocl_kb::snap::SnapWriter::new();
        uninterrupted.export_state(&mut wa);
        let mut wb = jocl_kb::snap::SnapWriter::new();
        resumed.export_state(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes(), "re-export must be bit-identical");
    }

    #[test]
    fn heap_bytes_grows_with_content() {
        let okb = okb();
        let s = signals(&okb);
        let mut index = BlockingIndex::new(&JoclConfig::default());
        let empty = index.heap_bytes();
        for (t, triple) in okb.triples() {
            index.append_triple(t, triple, &s);
        }
        assert!(index.heap_bytes() > empty, "appending triples must grow the accounted heap");
    }

    #[test]
    fn corrupt_blocking_sections_are_typed_errors() {
        let okb = okb();
        let s = signals(&okb);
        let config = JoclConfig::default();
        let mut index = BlockingIndex::new(&config);
        for (t, triple) in okb.triples() {
            index.append_triple(t, triple, &s);
        }
        let mut w = jocl_kb::snap::SnapWriter::new();
        index.export_state(&mut w);
        let bytes = w.into_bytes();
        // Sanity: intact bytes import.
        let mut r = jocl_kb::snap::SnapReader::new(&bytes);
        BlockingIndex::import_state(&mut r, &config, okb.len()).unwrap();
        // Truncations at every prefix are typed errors, never panics.
        for cut in 0..bytes.len() {
            let mut r = jocl_kb::snap::SnapReader::new(&bytes[..cut]);
            assert!(BlockingIndex::import_state(&mut r, &config, okb.len()).is_err());
        }
        // Too few triples for the recorded owners is rejected.
        let mut r = jocl_kb::snap::SnapReader::new(&bytes);
        assert!(BlockingIndex::import_state(&mut r, &config, 1).is_err());
    }
}
