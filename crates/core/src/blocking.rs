//! Canonicalization-pair blocking.
//!
//! Paper §4.1: "As it is unnecessary and impractical to generate
//! canonicalization variables for all pairs of NPs and RPs in the factor
//! graph, we generate canonicalization variables only for NP (RP) pairs
//! with a relatively high similarity based on IDF token overlap …, whose
//! threshold is set to 0.5."
//!
//! Pairs are generated per variable family — subject×subject (`x_ij`),
//! predicate×predicate (`y_ij`), object×object (`z_ij`) — never across
//! families, matching the variable definitions of §3.1.1.
//!
//! To keep the graph near-linear in the OKB size, two caps apply:
//! mentions sharing an *identical* phrase form a clique only up to
//! `max_group_clique` (later members chain onto their predecessor —
//! union-find closure recovers the full cluster at decode time), and
//! cross-phrase pairs take at most `cross_cap` mentions from each side.
//!
//! Blocking is defined **streamingly**: [`BlockingIndex`] consumes one
//! triple at a time and emits exactly the new pairs that triple creates,
//! and [`block_pairs`] is nothing but a replay of the whole OKB through
//! that index. The pair set is therefore a *monotone* function of the
//! triple sequence — appending triples only ever adds pairs — which is
//! what lets the incremental pipeline (`crate::incremental`) extend a
//! live factor graph without ever retracting a variable. The caps are
//! applied against the state at arrival time:
//!
//! * an identical-phrase group forms a clique while it has at most
//!   `max_group_clique` members; each member beyond the cap chains onto
//!   the previous one;
//! * a mention participates in cross-phrase pairs only while its phrase
//!   has fewer than `cross_cap` owners, and pairs against the first
//!   `cross_cap` owners of the other phrase;
//! * a token stops proposing candidate phrase pairs once
//!   [`MAX_TOKEN_DF`] phrases carry it (pairs it proposed earlier
//!   persist).

use crate::config::JoclConfig;
use crate::signals::Signals;
use jocl_kb::{NpSlot, Okb, Triple, TripleId};
use jocl_text::fx::FxHashMap;
use jocl_text::tokenize;

/// Blocked mention pairs for the three canonicalization variable
/// families. Pairs are ordered (`t_i < t_j`) and deduplicated.
#[derive(Debug, Clone, Default)]
pub struct Blocking {
    /// Subject–subject pairs (variables `x_ij`).
    pub subj_pairs: Vec<(TripleId, TripleId)>,
    /// Predicate–predicate pairs (variables `y_ij`).
    pub pred_pairs: Vec<(TripleId, TripleId)>,
    /// Object–object pairs (variables `z_ij`).
    pub obj_pairs: Vec<(TripleId, TripleId)>,
}

impl Blocking {
    /// Total number of blocked pairs.
    pub fn len(&self) -> usize {
        self.subj_pairs.len() + self.pred_pairs.len() + self.obj_pairs.len()
    }

    /// True when no pairs were generated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Generate blocked pairs for an OKB under `config`: a full replay of
/// the OKB through a fresh [`BlockingIndex`].
pub fn block_pairs(okb: &Okb, signals: &Signals, config: &JoclConfig) -> Blocking {
    let mut index = BlockingIndex::new(config);
    for (t, triple) in okb.triples() {
        index.append_triple(t, triple, signals);
    }
    index.blocking()
}

/// Cap on how many distinct phrases a token may touch before it is
/// considered a non-discriminative hub and skipped during candidate pair
/// retrieval (IDF would score such pairs near zero anyway).
const MAX_TOKEN_DF: usize = 100;

/// The new pairs one appended triple created, per variable family.
/// Each list is ordered (`t_i < t_j`), sorted and duplicate-free.
#[derive(Debug, Clone, Default)]
pub struct BlockingDelta {
    /// New subject–subject pairs.
    pub subj_pairs: Vec<(TripleId, TripleId)>,
    /// New predicate–predicate pairs.
    pub pred_pairs: Vec<(TripleId, TripleId)>,
    /// New object–object pairs.
    pub obj_pairs: Vec<(TripleId, TripleId)>,
}

impl BlockingDelta {
    /// Total new pairs across the three families.
    pub fn len(&self) -> usize {
        self.subj_pairs.len() + self.pred_pairs.len() + self.obj_pairs.len()
    }

    /// True when the appended triple created no pairs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Append-only blocking state for the three variable families.
///
/// `append_triple` must be called with consecutive [`TripleId`]s in OKB
/// order; batch [`block_pairs`] and the incremental session both replay
/// through this type, so the cumulative pair set is identical by
/// construction no matter how arrivals are batched.
#[derive(Debug, Clone)]
pub struct BlockingIndex {
    subj: FamilyIndex,
    pred: FamilyIndex,
    obj: FamilyIndex,
    blocking_threshold: f64,
    max_group_clique: usize,
    cross_cap: usize,
}

impl BlockingIndex {
    /// Empty index under `config`'s caps and threshold.
    pub fn new(config: &JoclConfig) -> Self {
        Self {
            subj: FamilyIndex::default(),
            pred: FamilyIndex::default(),
            obj: FamilyIndex::default(),
            blocking_threshold: config.blocking_threshold,
            max_group_clique: config.max_group_clique,
            cross_cap: config.cross_cap,
        }
    }

    /// Append one triple; returns the pairs it newly creates. Subjects
    /// and objects block on the lowercase phrase; predicates block on
    /// their morphological normal form (tense, auxiliaries, determiners
    /// and modifiers stripped): OIE relation phrases are conventionally
    /// pre-normalized this way (ReVerb emits normalized RPs; AMIE's
    /// input is "morphological normalized OIE triples", §3.1.4), and raw
    /// IDF overlap between function words would otherwise dominate the
    /// blocking decision.
    pub fn append_triple(
        &mut self,
        t: TripleId,
        triple: &Triple,
        signals: &Signals,
    ) -> BlockingDelta {
        let caps = Caps {
            threshold: self.blocking_threshold,
            clique: self.max_group_clique,
            cross: self.cross_cap,
        };
        BlockingDelta {
            subj_pairs: self.subj.append(t, triple.subject.to_lowercase(), &signals.idf_np, caps),
            pred_pairs: self.pred.append(
                t,
                jocl_text::normalize::morph_normalize_rp(&triple.predicate),
                &signals.idf_rp,
                caps,
            ),
            obj_pairs: self.obj.append(t, triple.object.to_lowercase(), &signals.idf_np, caps),
        }
    }

    /// Serialize the full blocking state into a snapshot section. The
    /// per-phrase token lists and the token inverted index are *not*
    /// written — both are pure functions of the phrase texts and are
    /// rebuilt on import — but owners, threshold-passing links and the
    /// cumulative pair log are arrival-time decisions and are part of
    /// the state.
    pub fn export_state(&self, w: &mut jocl_kb::snap::SnapWriter) {
        w.tag("BLK");
        for fam in [&self.subj, &self.pred, &self.obj] {
            fam.export_state(w);
        }
    }

    /// Rebuild a blocking index from [`BlockingIndex::export_state`]
    /// bytes under `config`'s caps. `num_triples` bounds the owner/pair
    /// ids for validation.
    pub fn import_state(
        r: &mut jocl_kb::snap::SnapReader<'_>,
        config: &JoclConfig,
        num_triples: usize,
    ) -> Result<Self, jocl_kb::KbError> {
        r.expect_tag("BLK")?;
        let subj = FamilyIndex::import_state(r, num_triples)?;
        let pred = FamilyIndex::import_state(r, num_triples)?;
        let obj = FamilyIndex::import_state(r, num_triples)?;
        Ok(Self {
            subj,
            pred,
            obj,
            blocking_threshold: config.blocking_threshold,
            max_group_clique: config.max_group_clique,
            cross_cap: config.cross_cap,
        })
    }

    /// The cumulative pair set, sorted per family.
    pub fn blocking(&self) -> Blocking {
        let sorted = |v: &Vec<(TripleId, TripleId)>| {
            let mut v = v.clone();
            v.sort_unstable();
            v
        };
        Blocking {
            subj_pairs: sorted(&self.subj.pairs),
            pred_pairs: sorted(&self.pred.pairs),
            obj_pairs: sorted(&self.obj.pairs),
        }
    }
}

#[derive(Clone, Copy)]
struct Caps {
    threshold: f64,
    clique: usize,
    cross: usize,
}

/// One distinct blocking phrase.
#[derive(Debug, Clone)]
struct PhraseEntry {
    /// Triples carrying the phrase, in arrival (= id) order.
    owners: Vec<TripleId>,
    /// Sorted, deduplicated tokens.
    tokens: Vec<String>,
    /// Phrase ids whose IDF similarity passed the threshold when one of
    /// the two phrases arrived.
    links: Vec<u32>,
}

/// Append-only blocking state of one variable family.
#[derive(Debug, Clone, Default)]
struct FamilyIndex {
    phrases: Vec<PhraseEntry>,
    by_text: FxHashMap<String, u32>,
    /// token → phrase ids carrying it (arrival order).
    token_index: FxHashMap<String, Vec<u32>>,
    /// Cumulative emitted pairs (unsorted; no duplicates by construction).
    pairs: Vec<(TripleId, TripleId)>,
}

impl FamilyIndex {
    /// Serialize this family: phrase texts (in id order) with owners and
    /// links, plus the cumulative pair log.
    fn export_state(&self, w: &mut jocl_kb::snap::SnapWriter) {
        let mut texts: Vec<Option<&str>> = vec![None; self.phrases.len()];
        for (text, &pi) in &self.by_text {
            texts[pi as usize] = Some(text);
        }
        w.usize(self.phrases.len());
        for (pi, p) in self.phrases.iter().enumerate() {
            w.str(texts[pi].expect("every phrase id has a by_text entry"));
            w.usize(p.owners.len());
            for t in &p.owners {
                w.u32(t.0);
            }
            w.u32_slice(&p.links);
        }
        w.usize(self.pairs.len());
        for &(a, b) in &self.pairs {
            w.u32(a.0);
            w.u32(b.0);
        }
    }

    /// Inverse of [`FamilyIndex::export_state`]; tokens and the token
    /// inverted index are recomputed from the phrase texts.
    fn import_state(
        r: &mut jocl_kb::snap::SnapReader<'_>,
        num_triples: usize,
    ) -> Result<Self, jocl_kb::KbError> {
        let n = r.seq_len(24)?;
        let mut fam = FamilyIndex::default();
        for pi in 0..n {
            let text = r.str()?;
            let owners: Vec<TripleId> =
                (0..r.seq_len(8)?).map(|_| r.u32().map(TripleId)).collect::<Result<_, _>>()?;
            let links = r.u32_vec()?;
            if let Some(bad) = owners.iter().find(|t| t.idx() >= num_triples) {
                return Err(r.corrupt(format!("owner triple {} out of range", bad.0)));
            }
            if let Some(&bad) = links.iter().find(|&&l| l as usize >= n) {
                return Err(r.corrupt(format!("phrase link {bad} out of range")));
            }
            let mut tokens = tokenize(&text);
            tokens.sort_unstable();
            tokens.dedup();
            for tok in &tokens {
                fam.token_index.entry(tok.clone()).or_default().push(pi as u32);
            }
            if fam.by_text.insert(text, pi as u32).is_some() {
                return Err(r.corrupt(format!("duplicate phrase text for id {pi}")));
            }
            fam.phrases.push(PhraseEntry { owners, tokens, links });
        }
        for _ in 0..r.seq_len(16)? {
            let (a, b) = (r.u32()?, r.u32()?);
            if a as usize >= num_triples || b as usize >= num_triples {
                return Err(r.corrupt(format!("pair ({a}, {b}) out of range")));
            }
            fam.pairs.push((TripleId(a), TripleId(b)));
        }
        Ok(fam)
    }

    /// Append one mention; returns the new pairs, sorted.
    fn append(
        &mut self,
        t: TripleId,
        key: String,
        idf: &jocl_text::IdfIndex,
        caps: Caps,
    ) -> Vec<(TripleId, TripleId)> {
        let ordered = |a: TripleId, b: TripleId| if a.0 < b.0 { (a, b) } else { (b, a) };
        let mut fresh: Vec<(TripleId, TripleId)> = Vec::new();
        match self.by_text.get(&key).copied() {
            Some(pi) => {
                let pi = pi as usize;
                let k = self.phrases[pi].owners.len();
                // Identical-phrase group: clique while small, chain after.
                if k < caps.clique {
                    for &b in &self.phrases[pi].owners {
                        fresh.push(ordered(t, b));
                    }
                } else if let Some(&last) = self.phrases[pi].owners.last() {
                    fresh.push(ordered(t, last));
                }
                // Cross-phrase pairs: only while this phrase is below the
                // cross cap, against the first `cross` owners of each
                // linked phrase.
                if k < caps.cross {
                    for li in self.phrases[pi].links.clone() {
                        for &b in self.phrases[li as usize].owners.iter().take(caps.cross) {
                            fresh.push(ordered(t, b));
                        }
                    }
                }
                self.phrases[pi].owners.push(t);
            }
            None => {
                let mut tokens = tokenize(&key);
                tokens.sort_unstable();
                tokens.dedup();
                // Candidate phrases through shared non-hub tokens. A
                // token is consulted only while its phrase list is below
                // MAX_TOKEN_DF at arrival time (monotone hub-out).
                let mut cands: Vec<u32> = Vec::new();
                for tok in &tokens {
                    if let Some(list) = self.token_index.get(tok.as_str()) {
                        if list.len() < MAX_TOKEN_DF {
                            cands.extend_from_slice(list);
                        }
                    }
                }
                cands.sort_unstable();
                cands.dedup();
                let pi = self.phrases.len() as u32;
                let mut links: Vec<u32> = Vec::new();
                for pb in cands {
                    let sim = idf.sim_tokens(&tokens, &self.phrases[pb as usize].tokens);
                    if sim < caps.threshold {
                        continue;
                    }
                    links.push(pb);
                    let other = &mut self.phrases[pb as usize];
                    other.links.push(pi);
                    for &b in other.owners.iter().take(caps.cross) {
                        fresh.push(ordered(t, b));
                    }
                }
                for tok in &tokens {
                    self.token_index.entry(tok.clone()).or_default().push(pi);
                }
                self.by_text.insert(key, pi);
                self.phrases.push(PhraseEntry { owners: vec![t], tokens, links });
            }
        }
        fresh.sort_unstable();
        fresh.dedup();
        self.pairs.extend_from_slice(&fresh);
        fresh
    }
}

/// Convenience: the phrase of the subject / predicate / object slot used
/// by a pair family.
pub fn family_phrase(okb: &Okb, t: TripleId, family: PairFamily) -> &str {
    let tr = okb.triple(t);
    match family {
        PairFamily::Subject => &tr.subject,
        PairFamily::Predicate => &tr.predicate,
        PairFamily::Object => &tr.object,
    }
}

/// The three canonicalization variable families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairFamily {
    /// `x_ij` over subjects.
    Subject,
    /// `y_ij` over predicates.
    Predicate,
    /// `z_ij` over objects.
    Object,
}

impl PairFamily {
    /// The NP slot corresponding to this family (predicates have none).
    pub fn np_slot(self) -> Option<NpSlot> {
        match self {
            PairFamily::Subject => Some(NpSlot::Subject),
            PairFamily::Object => Some(NpSlot::Object),
            PairFamily::Predicate => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::build_signals;
    use jocl_embed::SgnsOptions;
    use jocl_kb::{Ckb, Triple};
    use jocl_rules::ParaphraseStore;

    fn okb() -> Okb {
        let mut okb = Okb::new();
        okb.add_triple(Triple::new("University of Maryland", "locate in", "Maryland"));
        okb.add_triple(Triple::new("University of Maryland", "be a member of", "Universitas 21"));
        okb.add_triple(Triple::new("University of Virginia", "be an early member of", "U21"));
        okb.add_triple(Triple::new("Warren Buffett", "live in", "Omaha"));
        okb
    }

    fn signals(okb: &Okb) -> Signals {
        build_signals(
            okb,
            &Ckb::new(),
            &ParaphraseStore::new(),
            &[],
            &SgnsOptions { dim: 4, epochs: 1, ..Default::default() },
        )
    }

    #[test]
    fn identical_subjects_pair_up() {
        let okb = okb();
        let s = signals(&okb);
        let b = block_pairs(&okb, &s, &JoclConfig::default());
        assert!(
            b.subj_pairs.contains(&(TripleId(0), TripleId(1))),
            "identical subjects must pair: {:?}",
            b.subj_pairs
        );
    }

    #[test]
    fn similar_subjects_pair_dissimilar_do_not() {
        let okb = okb();
        let s = signals(&okb);
        let b = block_pairs(&okb, &s, &JoclConfig::default());
        // "University of Maryland" vs "University of Virginia" share
        // "university of" — above threshold with IDF weighting? They share
        // 2 of 4 tokens; either way "Warren Buffett" must not pair with
        // universities.
        assert!(!b.subj_pairs.iter().any(|&(a, b2)| { (a == TripleId(3)) ^ (b2 == TripleId(3)) }));
    }

    #[test]
    fn predicates_block_within_family_only() {
        let okb = okb();
        let s = signals(&okb);
        let b = block_pairs(&okb, &s, &JoclConfig::default());
        // "be a member of" vs "be an early member of" share most tokens.
        assert!(b.pred_pairs.contains(&(TripleId(1), TripleId(2))), "{:?}", b.pred_pairs);
    }

    #[test]
    fn pairs_are_ordered_and_unique() {
        let okb = okb();
        let s = signals(&okb);
        let b = block_pairs(&okb, &s, &JoclConfig::default());
        for list in [&b.subj_pairs, &b.pred_pairs, &b.obj_pairs] {
            let mut seen = std::collections::HashSet::new();
            for &(a, b2) in list.iter() {
                assert!(a.0 < b2.0, "pairs must be ordered");
                assert!(seen.insert((a, b2)), "duplicate pair");
            }
        }
    }

    #[test]
    fn threshold_one_keeps_only_identical() {
        let okb = okb();
        let s = signals(&okb);
        let config = JoclConfig { blocking_threshold: 1.0 + 1e-9, ..Default::default() };
        let b = block_pairs(&okb, &s, &config);
        // Only the duplicated "University of Maryland" subject pair
        // (identical phrases bypass the similarity check).
        assert_eq!(b.subj_pairs, vec![(TripleId(0), TripleId(1))]);
    }

    #[test]
    fn chain_cap_limits_identical_groups() {
        let mut okb = Okb::new();
        for i in 0..20 {
            okb.add_triple(Triple::new("Same Phrase", "rel", &format!("obj{i}")));
        }
        let s = signals(&okb);
        let config = JoclConfig { max_group_clique: 5, ..Default::default() };
        let b = block_pairs(&okb, &s, &config);
        // A clique over all 20 would be C(20,2)=190 pairs; the streaming
        // cap forms a clique over the first 5 (C(5,2)=10) and chains each
        // of the remaining 15 onto its predecessor.
        assert_eq!(b.subj_pairs.len(), 10 + 15);
        // Connectivity is preserved: the pairs chain all 20 triples.
        let edges: Vec<(usize, usize)> =
            b.subj_pairs.iter().map(|&(a, b2)| (a.idx(), b2.idx())).collect();
        let c = jocl_cluster::Clustering::from_edges(20, edges);
        assert_eq!(c.num_clusters(), 1);
    }

    #[test]
    fn empty_okb_blocks_nothing() {
        let okb = Okb::new();
        let s = signals(&okb);
        let b = block_pairs(&okb, &s, &JoclConfig::default());
        assert!(b.is_empty());
    }

    /// The monotonicity contract behind incremental ingestion: the
    /// per-append deltas concatenate (as sets) to exactly the batch pair
    /// set, so replaying in any batching reproduces `block_pairs`.
    #[test]
    fn append_deltas_concatenate_to_batch_blocking() {
        let okb = okb();
        let s = signals(&okb);
        let config = JoclConfig::default();
        let batch = block_pairs(&okb, &s, &config);
        let mut index = BlockingIndex::new(&config);
        let mut collected = Blocking::default();
        for (t, triple) in okb.triples() {
            let delta = index.append_triple(t, triple, &s);
            collected.subj_pairs.extend(delta.subj_pairs);
            collected.pred_pairs.extend(delta.pred_pairs);
            collected.obj_pairs.extend(delta.obj_pairs);
        }
        let replayed = index.blocking();
        assert_eq!(replayed.subj_pairs, batch.subj_pairs);
        assert_eq!(replayed.pred_pairs, batch.pred_pairs);
        assert_eq!(replayed.obj_pairs, batch.obj_pairs);
        for (mut got, want) in [
            (collected.subj_pairs, &batch.subj_pairs),
            (collected.pred_pairs, &batch.pred_pairs),
            (collected.obj_pairs, &batch.obj_pairs),
        ] {
            got.sort_unstable();
            assert_eq!(&got, want, "deltas must concatenate to the batch pair set");
        }
    }

    /// An appended delta only ever involves the new triple — the contract
    /// the incremental graph builder relies on (old pair variables never
    /// need revisiting).
    #[test]
    fn append_delta_only_pairs_the_new_triple() {
        let okb = okb();
        let s = signals(&okb);
        let mut index = BlockingIndex::new(&JoclConfig::default());
        for (t, triple) in okb.triples() {
            let delta = index.append_triple(t, triple, &s);
            for pairs in [&delta.subj_pairs, &delta.pred_pairs, &delta.obj_pairs] {
                for &(a, b) in pairs.iter() {
                    assert!(a == t || b == t, "pair {a:?}-{b:?} from appending {t:?}");
                    assert!(a.0 < b.0);
                }
            }
        }
    }
}
