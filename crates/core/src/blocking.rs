//! Canonicalization-pair blocking.
//!
//! Paper §4.1: "As it is unnecessary and impractical to generate
//! canonicalization variables for all pairs of NPs and RPs in the factor
//! graph, we generate canonicalization variables only for NP (RP) pairs
//! with a relatively high similarity based on IDF token overlap …, whose
//! threshold is set to 0.5."
//!
//! Pairs are generated per variable family — subject×subject (`x_ij`),
//! predicate×predicate (`y_ij`), object×object (`z_ij`) — never across
//! families, matching the variable definitions of §3.1.1.
//!
//! To keep the graph near-linear in the OKB size, two caps apply:
//! mentions sharing an *identical* phrase form a clique only up to
//! `max_group_clique` (larger groups are chained — union-find closure
//! recovers the full cluster at decode time), and cross-phrase pairs take
//! at most `cross_cap` mentions from each side.

use crate::config::JoclConfig;
use crate::signals::Signals;
use jocl_kb::{NpSlot, Okb, TripleId};
use jocl_text::fx::{FxHashMap, FxHashSet};
use jocl_text::tokenize;

/// Blocked mention pairs for the three canonicalization variable
/// families. Pairs are ordered (`t_i < t_j`) and deduplicated.
#[derive(Debug, Clone, Default)]
pub struct Blocking {
    /// Subject–subject pairs (variables `x_ij`).
    pub subj_pairs: Vec<(TripleId, TripleId)>,
    /// Predicate–predicate pairs (variables `y_ij`).
    pub pred_pairs: Vec<(TripleId, TripleId)>,
    /// Object–object pairs (variables `z_ij`).
    pub obj_pairs: Vec<(TripleId, TripleId)>,
}

impl Blocking {
    /// Total number of blocked pairs.
    pub fn len(&self) -> usize {
        self.subj_pairs.len() + self.pred_pairs.len() + self.obj_pairs.len()
    }

    /// True when no pairs were generated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Generate blocked pairs for an OKB under `config`.
pub fn block_pairs(okb: &Okb, signals: &Signals, config: &JoclConfig) -> Blocking {
    let subjects: Vec<(TripleId, String)> =
        okb.triples().map(|(t, tr)| (t, tr.subject.to_lowercase())).collect();
    let objects: Vec<(TripleId, String)> =
        okb.triples().map(|(t, tr)| (t, tr.object.to_lowercase())).collect();
    // Predicates are blocked on their morphological normal form (tense,
    // auxiliaries, determiners and modifiers stripped): OIE relation
    // phrases are conventionally pre-normalized this way (ReVerb emits
    // normalized RPs; AMIE's input is "morphological normalized OIE
    // triples", §3.1.4), and raw IDF overlap between function words would
    // otherwise dominate the blocking decision.
    let predicates: Vec<(TripleId, String)> = okb
        .triples()
        .map(|(t, tr)| (t, jocl_text::normalize::morph_normalize_rp(&tr.predicate)))
        .collect();
    Blocking {
        subj_pairs: block_family(&subjects, &signals.idf_np, config),
        pred_pairs: block_family(&predicates, &signals.idf_rp, config),
        obj_pairs: block_family(&objects, &signals.idf_np, config),
    }
}

/// Cap on how many distinct phrases a token may touch before it is
/// considered a non-discriminative hub and skipped during candidate pair
/// retrieval (IDF would score such pairs near zero anyway).
const MAX_TOKEN_DF: usize = 100;

fn block_family(
    mentions: &[(TripleId, String)],
    idf: &jocl_text::IdfIndex,
    config: &JoclConfig,
) -> Vec<(TripleId, TripleId)> {
    // Distinct phrases and their owners.
    let mut phrase_owners: FxHashMap<&str, Vec<TripleId>> = FxHashMap::default();
    for (t, p) in mentions {
        phrase_owners.entry(p.as_str()).or_default().push(*t);
    }
    let mut phrases: Vec<(&str, Vec<TripleId>)> = phrase_owners.into_iter().collect();
    phrases.sort_by(|a, b| a.0.cmp(b.0));

    let mut pairs: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut push = |a: TripleId, b: TripleId| {
        if a != b {
            let (x, y) = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
            pairs.insert((x, y));
        }
    };

    // 1. Identical-phrase groups: clique up to the cap, chain beyond.
    for (_, owners) in &phrases {
        if owners.len() <= config.max_group_clique {
            for (i, &a) in owners.iter().enumerate() {
                for &b in &owners[i + 1..] {
                    push(a, b);
                }
            }
        } else {
            for w in owners.windows(2) {
                push(w[0], w[1]);
            }
        }
    }

    // 2. Cross-phrase candidates via shared tokens.
    let token_sets: Vec<Vec<String>> = phrases
        .iter()
        .map(|(p, _)| {
            let mut t = tokenize(p);
            t.sort_unstable();
            t.dedup();
            t
        })
        .collect();
    let mut token_index: FxHashMap<&str, Vec<u32>> = FxHashMap::default();
    for (pi, toks) in token_sets.iter().enumerate() {
        for t in toks {
            token_index.entry(t.as_str()).or_default().push(pi as u32);
        }
    }
    let mut candidate_pairs: FxHashSet<(u32, u32)> = FxHashSet::default();
    for (_, phrase_list) in token_index {
        if phrase_list.len() > MAX_TOKEN_DF {
            continue;
        }
        for (i, &a) in phrase_list.iter().enumerate() {
            for &b in &phrase_list[i + 1..] {
                candidate_pairs.insert((a.min(b), a.max(b)));
            }
        }
    }
    let mut candidate_pairs: Vec<(u32, u32)> = candidate_pairs.into_iter().collect();
    candidate_pairs.sort_unstable();
    for (pa, pb) in candidate_pairs {
        let sim = idf.sim_tokens(&token_sets[pa as usize], &token_sets[pb as usize]);
        if sim < config.blocking_threshold {
            continue;
        }
        let owners_a = &phrases[pa as usize].1;
        let owners_b = &phrases[pb as usize].1;
        for &a in owners_a.iter().take(config.cross_cap) {
            for &b in owners_b.iter().take(config.cross_cap) {
                push(a, b);
            }
        }
    }

    let mut out: Vec<(TripleId, TripleId)> =
        pairs.into_iter().map(|(a, b)| (TripleId(a), TripleId(b))).collect();
    out.sort_unstable();
    out
}

/// Convenience: the phrase of the subject / predicate / object slot used
/// by a pair family.
pub fn family_phrase(okb: &Okb, t: TripleId, family: PairFamily) -> &str {
    let tr = okb.triple(t);
    match family {
        PairFamily::Subject => &tr.subject,
        PairFamily::Predicate => &tr.predicate,
        PairFamily::Object => &tr.object,
    }
}

/// The three canonicalization variable families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairFamily {
    /// `x_ij` over subjects.
    Subject,
    /// `y_ij` over predicates.
    Predicate,
    /// `z_ij` over objects.
    Object,
}

impl PairFamily {
    /// The NP slot corresponding to this family (predicates have none).
    pub fn np_slot(self) -> Option<NpSlot> {
        match self {
            PairFamily::Subject => Some(NpSlot::Subject),
            PairFamily::Object => Some(NpSlot::Object),
            PairFamily::Predicate => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::build_signals;
    use jocl_embed::SgnsOptions;
    use jocl_kb::{Ckb, Triple};
    use jocl_rules::ParaphraseStore;

    fn okb() -> Okb {
        let mut okb = Okb::new();
        okb.add_triple(Triple::new("University of Maryland", "locate in", "Maryland"));
        okb.add_triple(Triple::new("University of Maryland", "be a member of", "Universitas 21"));
        okb.add_triple(Triple::new("University of Virginia", "be an early member of", "U21"));
        okb.add_triple(Triple::new("Warren Buffett", "live in", "Omaha"));
        okb
    }

    fn signals(okb: &Okb) -> Signals {
        build_signals(
            okb,
            &Ckb::new(),
            &ParaphraseStore::new(),
            &[],
            &SgnsOptions { dim: 4, epochs: 1, ..Default::default() },
        )
    }

    #[test]
    fn identical_subjects_pair_up() {
        let okb = okb();
        let s = signals(&okb);
        let b = block_pairs(&okb, &s, &JoclConfig::default());
        assert!(
            b.subj_pairs.contains(&(TripleId(0), TripleId(1))),
            "identical subjects must pair: {:?}",
            b.subj_pairs
        );
    }

    #[test]
    fn similar_subjects_pair_dissimilar_do_not() {
        let okb = okb();
        let s = signals(&okb);
        let b = block_pairs(&okb, &s, &JoclConfig::default());
        // "University of Maryland" vs "University of Virginia" share
        // "university of" — above threshold with IDF weighting? They share
        // 2 of 4 tokens; either way "Warren Buffett" must not pair with
        // universities.
        assert!(!b.subj_pairs.iter().any(|&(a, b2)| { (a == TripleId(3)) ^ (b2 == TripleId(3)) }));
    }

    #[test]
    fn predicates_block_within_family_only() {
        let okb = okb();
        let s = signals(&okb);
        let b = block_pairs(&okb, &s, &JoclConfig::default());
        // "be a member of" vs "be an early member of" share most tokens.
        assert!(b.pred_pairs.contains(&(TripleId(1), TripleId(2))), "{:?}", b.pred_pairs);
    }

    #[test]
    fn pairs_are_ordered_and_unique() {
        let okb = okb();
        let s = signals(&okb);
        let b = block_pairs(&okb, &s, &JoclConfig::default());
        for list in [&b.subj_pairs, &b.pred_pairs, &b.obj_pairs] {
            let mut seen = std::collections::HashSet::new();
            for &(a, b2) in list.iter() {
                assert!(a.0 < b2.0, "pairs must be ordered");
                assert!(seen.insert((a, b2)), "duplicate pair");
            }
        }
    }

    #[test]
    fn threshold_one_keeps_only_identical() {
        let okb = okb();
        let s = signals(&okb);
        let config = JoclConfig { blocking_threshold: 1.0 + 1e-9, ..Default::default() };
        let b = block_pairs(&okb, &s, &config);
        // Only the duplicated "University of Maryland" subject pair
        // (identical phrases bypass the similarity check).
        assert_eq!(b.subj_pairs, vec![(TripleId(0), TripleId(1))]);
    }

    #[test]
    fn chain_cap_limits_identical_groups() {
        let mut okb = Okb::new();
        for i in 0..20 {
            okb.add_triple(Triple::new("Same Phrase", "rel", &format!("obj{i}")));
        }
        let s = signals(&okb);
        let config = JoclConfig { max_group_clique: 5, ..Default::default() };
        let b = block_pairs(&okb, &s, &config);
        // A clique would be C(20,2)=190 pairs; the chain gives 19.
        assert_eq!(b.subj_pairs.len(), 19);
        // Connectivity is preserved: the pairs chain all 20 triples.
        let edges: Vec<(usize, usize)> =
            b.subj_pairs.iter().map(|&(a, b2)| (a.idx(), b2.idx())).collect();
        let c = jocl_cluster::Clustering::from_edges(20, edges);
        assert_eq!(c.num_clusters(), 1);
    }

    #[test]
    fn empty_okb_blocks_nothing() {
        let okb = Okb::new();
        let s = signals(&okb);
        let b = block_pairs(&okb, &s, &JoclConfig::default());
        assert!(b.is_empty());
    }
}
