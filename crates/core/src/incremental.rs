//! Incremental delta ingestion: warm-started canonicalization for
//! streaming OKB triples.
//!
//! The batch pipeline (`crate::pipeline`) treats canonicalization as a
//! one-shot snapshot job: blocking, graph construction and LBP all start
//! from nothing on every run. A serving deployment sees OIE triples
//! *arrive*, and re-running the whole stack per arrival throws away the
//! one thing the previous run paid for — a converged factor graph.
//!
//! [`IncrementalJocl`] is the session object that keeps it. It owns the
//! growing [`Okb`], the append-only [`BlockingIndex`], the live
//! [`GraphPlan`] and the last committed LBP messages, and exposes one
//! operation: [`IncrementalJocl::apply_delta`]. A delta
//!
//! 1. **ingests** its triples idempotently (`Okb::ingest_triple`:
//!    re-delivered triples are no-ops, not duplicate evidence);
//! 2. **extends blocking** through `BlockingIndex::append_triple`, which
//!    emits exactly the new pairs — the pair set is a monotone function
//!    of the arrival sequence, so batch and incremental blocking agree
//!    by construction;
//! 3. **appends** the new linking/pair variables and their F1–F6, U1–U7
//!    factors to the factor graph (ids and adjacency of existing nodes
//!    are never disturbed), reusing the same per-distinct-phrase feature
//!    caches across deltas;
//! 4. **warm-starts LBP** via [`LbpEngine::resume`]: prior messages are
//!    seeded and only the *dirty* factor blocks — the ones this delta
//!    appended — are primed into the residual queue, so convergence work
//!    is proportional to how far the delta's influence actually reaches,
//!    not to the graph size;
//! 5. **re-decodes** with marginals refreshed only for the connected
//!    components the delta touched (tracked by a growing [`UnionFind`]
//!    over variables); untouched components keep their messages — and
//!    therefore marginals — bit-for-bit.
//!
//! The correctness contract, enforced by `tests/incremental.rs` and the
//! `jocl_bench` stream gate: **N deltas followed by convergence decode
//! identically to a from-scratch batch run on the union** (same frozen
//! [`Signals`], same config). Signals are a session resource: IDF, SGNS,
//! AMIE and friends are built once (offline or at session start) and
//! frozen, exactly like `JoclConfig::pretrained_params` weights in
//! serving mode.
//!
//! One precondition: the contract holds while the
//! `JoclConfig::max_triangles` budget is not exhausted. The budget is a
//! global cap spent in build order, and a streamed build necessarily
//! spends it in arrival order while a batch build spends it in
//! family-sorted order — once it runs out, the two keep *different*
//! U1–U3 triangle subsets. [`DeltaStats::triangle_budget_exhausted`]
//! reports when a session crosses that line; raise the budget (or treat
//! the session as approximate from then on) if exact batch parity
//! matters.
//!
//! Training is deliberately out of scope per delta: learn weights
//! offline with the batch pipeline, persist them with
//! `crate::persist::save_params`, and hand them to the session through
//! `JoclConfig::pretrained_params`.

use crate::blocking::{BlockingDelta, BlockingIndex};
use crate::builder::{
    entity_link_features, equality_table, init_params, np_canon_features, ordered_key,
    pair_potential, relation_link_features, rp_canon_features, transitivity_scores, BuildStats,
    GraphPlan,
};
use crate::config::{classes, JoclConfig, Variant};
use crate::decode::{decode, Diagnostics, JoclOutput};
use crate::pipeline::lbp_options;
use crate::signals::Signals;
use jocl_cluster::UnionFind;
use jocl_fg::lbp::LbpEngine;
use jocl_fg::{FactorGraph, FactorId, LbpMessages, LbpResult, Marginals, Potential, VarId};
use jocl_kb::{
    CandidateGen, Ckb, EntityId, NpMention, NpSlot, Okb, RelationId, RpMention, Triple, TripleId,
};
use jocl_text::fx::{FxHashMap, FxHashSet};

/// What one [`IncrementalJocl::apply_delta`] call did.
#[derive(Debug, Clone)]
pub struct DeltaStats {
    /// Triples actually appended (fresh).
    pub appended: usize,
    /// Triples ignored because an identical triple was already present.
    pub duplicates: usize,
    /// New blocked pairs across the three families.
    pub new_pairs: usize,
    /// Variables appended to the factor graph.
    pub new_vars: usize,
    /// Factors appended to the factor graph.
    pub new_factors: usize,
    /// Connected components (of the variable graph) the delta touched.
    pub affected_components: usize,
    /// Total connected components after the delta.
    pub total_components: usize,
    /// Variables whose marginals were recomputed (the rest were reused
    /// from the previous decode).
    pub refreshed_vars: usize,
    /// True once the session's `max_triangles` budget has forced a
    /// transitivity triangle to be dropped — from that point exact
    /// decode parity with a batch build is no longer guaranteed (see
    /// the module docs). An exactly-consumed budget with nothing
    /// dropped keeps the flag false.
    pub triangle_budget_exhausted: bool,
    /// Whether LBP resumed from prior messages (false on the first
    /// non-trivial delta, which runs cold).
    pub warm_started: bool,
    /// The warm (or cold) LBP run of this delta.
    pub lbp: LbpResult,
}

/// Result of one delta: the full decoded output on the union so far,
/// plus what the delta cost.
#[derive(Debug, Clone)]
pub struct DeltaOutput {
    /// Decode over the *entire* session OKB (identical to a batch run on
    /// the union — see the module docs).
    pub output: JoclOutput,
    /// Incremental bookkeeping.
    pub stats: DeltaStats,
}

/// Per-family pair-variable adjacency for incremental transitivity
/// closure: `edges[(i, j)]` (i < j) is the pair variable, `adj` the
/// undirected neighbor lists.
#[derive(Debug, Clone, Default)]
struct TriangleIndex {
    edges: FxHashMap<(u32, u32), VarId>,
    adj: FxHashMap<u32, Vec<u32>>,
}

impl TriangleIndex {
    fn insert(&mut self, a: TripleId, b: TripleId, v: VarId) {
        self.edges.insert((a.0, b.0), v);
        self.adj.entry(a.0).or_default().push(b.0);
        self.adj.entry(b.0).or_default().push(a.0);
    }
}

/// A persistent canonicalization + linking session over a streaming OKB.
///
/// Borrows the CKB and the frozen [`Signals`] (they are shared,
/// read-only serving resources); owns everything that grows. `Clone`
/// forks the whole warm state — benchmarks use this to replay one delta
/// against an identical warm session repeatedly.
#[derive(Clone)]
pub struct IncrementalJocl<'a> {
    config: JoclConfig,
    ckb: &'a Ckb,
    signals: &'a Signals,
    okb: Okb,
    blocking: BlockingIndex,
    plan: GraphPlan,
    /// Messages of the last run (None before the first delta).
    messages: Option<LbpMessages>,
    /// Whether the last run actually converged. If it did not (e.g. the
    /// iteration budget ran out), the next delta re-primes **every**
    /// factor instead of just its own dirty set: the stale above-`tol`
    /// residuals the aborted drain left behind must re-enter the queue,
    /// or a later "converged" report would certify nothing.
    prior_converged: bool,
    /// Cached marginals per variable, refreshed per affected component.
    marginals: Vec<Vec<f64>>,
    /// Connected components over variables (factors union their vars).
    components: UnionFind,
    /// Candidate + feature cache per distinct lowercase NP phrase.
    np_values: FxHashMap<String, (Vec<EntityId>, Vec<Vec<f64>>)>,
    /// Candidate + feature cache per distinct lowercase RP phrase.
    rp_values: FxHashMap<String, (Vec<RelationId>, Vec<Vec<f64>>)>,
    /// F1/F3 similarity cache per ordered lowercase phrase pair.
    np_pair_sims: FxHashMap<(String, String), Vec<f64>>,
    /// F2 similarity cache per ordered lowercase phrase pair.
    rp_pair_sims: FxHashMap<(String, String), Vec<f64>>,
    /// Pair-graph adjacency per family (subject, predicate, object).
    tri: [TriangleIndex; 3],
    /// Remaining transitivity-triangle budget (`config.max_triangles`).
    triangle_budget: usize,
    /// Set once a triangle was actually dropped for lack of budget (an
    /// exactly-consumed budget with nothing skipped keeps parity).
    triangles_skipped: bool,
    /// Message updates across the whole session (all deltas).
    pub total_message_updates: u64,
}

impl<'a> IncrementalJocl<'a> {
    /// Open a session with an empty OKB.
    ///
    /// # Panics
    /// Panics if `config.pretrained_params` is set with a shape that
    /// does not match `config.features` (stale weights must fail fast,
    /// exactly as in the batch serving path).
    pub fn new(config: JoclConfig, ckb: &'a Ckb, signals: &'a Signals) -> Self {
        let (mut params, groups) = init_params(config.features);
        if let Some(pre) = &config.pretrained_params {
            assert_eq!(
                pre.num_groups(),
                params.num_groups(),
                "pretrained params have a different group count than the session layout"
            );
            for g in 0..pre.num_groups() {
                assert_eq!(
                    pre.group(g).len(),
                    params.group(g).len(),
                    "pretrained group {g} has a different shape than the session layout"
                );
            }
            params = pre.clone();
        }
        let plan = GraphPlan {
            graph: FactorGraph::new(),
            params,
            groups,
            np_link_vars: Vec::new(),
            np_candidates: Vec::new(),
            rp_link_vars: Vec::new(),
            rp_candidates: Vec::new(),
            subj_pair_vars: Vec::new(),
            pred_pair_vars: Vec::new(),
            obj_pair_vars: Vec::new(),
            stats: BuildStats::default(),
        };
        Self {
            blocking: BlockingIndex::new(&config),
            triangle_budget: config.max_triangles,
            config,
            ckb,
            signals,
            okb: Okb::new(),
            plan,
            messages: None,
            prior_converged: true,
            marginals: Vec::new(),
            components: UnionFind::new(0),
            np_values: FxHashMap::default(),
            rp_values: FxHashMap::default(),
            np_pair_sims: FxHashMap::default(),
            rp_pair_sims: FxHashMap::default(),
            tri: [TriangleIndex::default(), TriangleIndex::default(), TriangleIndex::default()],
            triangles_skipped: false,
            total_message_updates: 0,
        }
    }

    /// The session OKB (the union of all applied deltas, deduplicated).
    pub fn okb(&self) -> &Okb {
        &self.okb
    }

    /// The active configuration.
    pub fn config(&self) -> &JoclConfig {
        &self.config
    }

    /// Triples currently in the session.
    pub fn len(&self) -> usize {
        self.okb.len()
    }

    /// True before any triple has been ingested.
    pub fn is_empty(&self) -> bool {
        self.okb.is_empty()
    }

    /// Ingest a batch of arriving triples, converge the factor graph
    /// against the warm state, and decode the union. See the module docs
    /// for the five stages. An empty or fully-duplicate delta is cheap:
    /// nothing is appended, LBP performs zero updates, and the previous
    /// decode is reproduced.
    pub fn apply_delta(&mut self, triples: &[Triple]) -> DeltaOutput {
        // --- 1. idempotent ingest ----------------------------------------
        let mut new_ids: Vec<TripleId> = Vec::new();
        let mut duplicates = 0usize;
        for t in triples {
            let (id, fresh) = self.okb.ingest_triple(t.clone());
            if fresh {
                new_ids.push(id);
            } else {
                duplicates += 1;
            }
        }

        // --- 2. incremental blocking -------------------------------------
        let mut delta = BlockingDelta::default();
        for &id in &new_ids {
            let triple = self.okb.triple(id).clone();
            let d = self.blocking.append_triple(id, &triple, self.signals);
            delta.subj_pairs.extend(d.subj_pairs);
            delta.pred_pairs.extend(d.pred_pairs);
            delta.obj_pairs.extend(d.obj_pairs);
        }
        delta.subj_pairs.sort_unstable();
        delta.pred_pairs.sort_unstable();
        delta.obj_pairs.sort_unstable();

        // --- 3. append-only graph growth ---------------------------------
        let first_new_var = self.plan.graph.num_vars();
        let first_new_factor = self.plan.graph.num_factors();
        self.extend_plan(&new_ids, &delta);
        let num_vars = self.plan.graph.num_vars();
        let num_factors = self.plan.graph.num_factors();

        self.components.grow(num_vars);
        for f in first_new_factor..num_factors {
            let vars = self.plan.graph.factor_vars(FactorId(f as u32));
            for w in vars.windows(2) {
                self.components.union(w[0].idx(), w[1].idx());
            }
        }

        // --- 4. warm-started inference -----------------------------------
        let opts = lbp_options(&self.config);
        // After an unconverged run, prime the *whole* factor set: the
        // warm messages are still a better start than uniform, but only
        // a full priming lets an empty residual queue certify a global
        // fixed point again.
        let dirty: Vec<u32> = if self.prior_converged {
            (first_new_factor as u32..num_factors as u32).collect()
        } else {
            (0..num_factors as u32).collect()
        };
        let warm_started = self.messages.is_some();
        // An empty/fully-duplicate delta leaves the graph untouched and
        // the prior run converged: the committed messages are still the
        // fixed point, so skip inference entirely (either schedule mode).
        let graph_unchanged = warm_started && dirty.is_empty();
        let mut engine = LbpEngine::new(&self.plan.graph);
        let lbp = match &self.messages {
            Some(prior) if graph_unchanged => {
                engine.import_messages(prior);
                LbpResult { iterations: 0, converged: true, residual: 0.0, message_updates: 0 }
            }
            Some(prior) => engine.resume(prior, &self.plan.params, &opts, &dirty),
            None => engine.run(&self.plan.params, &opts),
        };
        self.total_message_updates += lbp.message_updates;

        // Components this delta touched (after the unions above, a new
        // factor bridging two old components reaches both).
        let mut affected: FxHashSet<usize> = FxHashSet::default();
        for &f in &dirty {
            for &v in self.plan.graph.factor_vars(FactorId(f)) {
                affected.insert(self.components.find(v.idx()));
            }
        }

        // --- 5. re-decode affected components ----------------------------
        // In residual mode an untouched component's messages are
        // bit-for-bit unchanged, so its cached marginals stay exact. The
        // synchronous warm path sweeps everything (messages drift within
        // tol), so refresh everything.
        let refresh_all = !graph_unchanged
            && (!warm_started
                || matches!(opts.mode, jocl_fg::ScheduleMode::Synchronous)
                || !lbp.converged);
        self.marginals.resize(num_vars, Vec::new());
        let mut refreshed = 0usize;
        for v in 0..num_vars {
            let needs = refresh_all
                || self.marginals[v].is_empty()
                || affected.contains(&self.components.find(v));
            if needs {
                self.marginals[v] = engine.var_marginal(VarId(v as u32));
                refreshed += 1;
            }
        }
        self.messages = Some(engine.export_messages());
        self.prior_converged = lbp.converged;
        drop(engine);

        let diagnostics = Diagnostics {
            lbp,
            num_vars,
            num_factors,
            pair_counts: (
                self.plan.subj_pair_vars.len(),
                self.plan.pred_pair_vars.len(),
                self.plan.obj_pair_vars.len(),
            ),
            triangles: self.plan.stats.triangles,
            train_epochs: 0,
            train_grad_norm: f64::NAN,
        };
        let marginals = Marginals::from_probs(self.marginals.clone());
        let mut output = decode(&self.okb, &self.plan, &marginals, &self.config, diagnostics);
        output.learned_params = Some(self.plan.params.clone());

        DeltaOutput {
            output,
            stats: DeltaStats {
                appended: new_ids.len(),
                duplicates,
                new_pairs: delta.len(),
                new_vars: num_vars - first_new_var,
                new_factors: num_factors - first_new_factor,
                affected_components: affected.len(),
                total_components: self.components.num_components(),
                refreshed_vars: refreshed,
                triangle_budget_exhausted: self.triangles_skipped,
                warm_started,
                lbp,
            },
        }
    }

    /// Append the delta's variables and factors to the plan. Mirrors the
    /// batch builder factor by factor: every potential value is computed
    /// by the same functions over the same frozen signals, so the grown
    /// graph carries the identical factors as a batch build on the union
    /// (only node *ids* differ, which decoding never observes).
    fn extend_plan(&mut self, new_ids: &[TripleId], delta: &BlockingDelta) {
        let fs = self.config.features;
        let with_linking = matches!(
            self.config.variant,
            Variant::Full | Variant::LinkOnly | Variant::NoConsistency
        );
        let with_canon = matches!(
            self.config.variant,
            Variant::Full | Variant::CanoOnly | Variant::NoConsistency
        );
        let with_consistency = matches!(self.config.variant, Variant::Full);
        let groups = self.plan.groups;

        self.plan.np_link_vars.resize(self.okb.num_np_mentions(), None);
        self.plan.np_candidates.resize(self.okb.num_np_mentions(), Vec::new());
        self.plan.rp_link_vars.resize(self.okb.num_rp_mentions(), None);
        self.plan.rp_candidates.resize(self.okb.num_rp_mentions(), Vec::new());

        // ---------------- linking variables + F4/F5/F6 -------------------
        if with_linking {
            let gen = CandidateGen::new(self.ckb, self.config.candidates.clone());
            for &t in new_ids {
                for slot in [NpSlot::Subject, NpSlot::Object] {
                    let m = NpMention { triple: t, slot };
                    let phrase = self.okb.np_phrase(m).to_string();
                    let (cands, feats) =
                        self.np_values.entry(phrase.to_lowercase()).or_insert_with(|| {
                            let scored = gen.entity_candidates(&phrase);
                            let cands: Vec<EntityId> = scored.iter().map(|s| s.id).collect();
                            let feats: Vec<Vec<f64>> = cands
                                .iter()
                                .map(|&e| {
                                    entity_link_features(self.signals, self.ckb, &phrase, e, fs)
                                })
                                .collect();
                            (cands, feats)
                        });
                    if cands.is_empty() {
                        continue;
                    }
                    let var =
                        self.plan.graph.add_var_with_class(cands.len() as u32, classes::VAR_LINK);
                    let (group, class) = match slot {
                        NpSlot::Subject => (groups.alpha4, classes::F4),
                        NpSlot::Object => (groups.alpha6, classes::F6),
                    };
                    self.plan.graph.add_factor(
                        &[var],
                        Potential::Features { group, feats: feats.clone() },
                        class,
                    );
                    self.plan.np_link_vars[m.dense()] = Some(var);
                    self.plan.np_candidates[m.dense()] = cands.clone();
                }
                let m = RpMention(t);
                let phrase = self.okb.rp_phrase(m).to_string();
                let (cands, feats) =
                    self.rp_values.entry(phrase.to_lowercase()).or_insert_with(|| {
                        let scored = gen.relation_candidates(&phrase);
                        let cands: Vec<RelationId> = scored.iter().map(|s| s.id).collect();
                        let feats: Vec<Vec<f64>> = cands
                            .iter()
                            .map(|&r| {
                                relation_link_features(self.signals, self.ckb, &phrase, r, fs)
                            })
                            .collect();
                        (cands, feats)
                    });
                if !cands.is_empty() {
                    let var =
                        self.plan.graph.add_var_with_class(cands.len() as u32, classes::VAR_LINK);
                    self.plan.graph.add_factor(
                        &[var],
                        Potential::Features { group: groups.alpha5, feats: feats.clone() },
                        classes::F5,
                    );
                    self.plan.rp_link_vars[m.dense()] = Some(var);
                    self.plan.rp_candidates[m.dense()] = cands.clone();
                }
            }
        }

        // ---------------- canonicalization variables + F1/F2/F3 ----------
        if with_canon {
            let tables = transitivity_scores();
            for (fam, new_pairs) in
                [&delta.subj_pairs, &delta.pred_pairs, &delta.obj_pairs].into_iter().enumerate()
            {
                let (group, class, u_class, beta_idx, slot) = match fam {
                    0 => (groups.alpha1, classes::F1, classes::U1, 0usize, Some(NpSlot::Subject)),
                    1 => (groups.alpha2, classes::F2, classes::U2, 1, None),
                    _ => (groups.alpha3, classes::F3, classes::U3, 2, Some(NpSlot::Object)),
                };
                // Pair variables and their feature factors.
                let mut new_vars: Vec<VarId> = Vec::with_capacity(new_pairs.len());
                for &(ti, tj) in new_pairs {
                    let (pa, pb) = {
                        let (ta, tb) = (self.okb.triple(ti), self.okb.triple(tj));
                        match slot {
                            Some(NpSlot::Subject) => (ta.subject.clone(), tb.subject.clone()),
                            Some(NpSlot::Object) => (ta.object.clone(), tb.object.clone()),
                            None => (ta.predicate.clone(), tb.predicate.clone()),
                        }
                    };
                    let cache = if slot.is_some() {
                        &mut self.np_pair_sims
                    } else {
                        &mut self.rp_pair_sims
                    };
                    let sims = cache.entry(ordered_key(&pa, &pb)).or_insert_with(|| {
                        if slot.is_some() {
                            np_canon_features(self.signals, &pa, &pb, fs)
                        } else {
                            rp_canon_features(self.signals, &pa, &pb, fs)
                        }
                    });
                    let var = self.plan.graph.add_var_with_class(2, classes::VAR_CANON);
                    self.plan.graph.add_factor(&[var], pair_potential(group, sims), class);
                    new_vars.push(var);
                }

                // U1–U3 transitivity: close triangles that gained ≥1 new
                // edge, in sorted (i, j, k) order, against the session
                // budget.
                let tri = &mut self.tri[fam];
                for (&(ti, tj), &v) in new_pairs.iter().zip(&new_vars) {
                    tri.insert(ti, tj, v);
                }
                let mut found: FxHashSet<(u32, u32, u32)> = FxHashSet::default();
                for &(ti, tj) in new_pairs {
                    let (a, b) = (ti.0, tj.0);
                    let (na, nb) = match (tri.adj.get(&a), tri.adj.get(&b)) {
                        (Some(na), Some(nb)) => (na, nb),
                        _ => continue,
                    };
                    let smaller = if na.len() <= nb.len() { na } else { nb };
                    for &c in smaller {
                        if c == a || c == b {
                            continue;
                        }
                        let e1 = (a.min(c), a.max(c));
                        let e2 = (b.min(c), b.max(c));
                        if tri.edges.contains_key(&e1) && tri.edges.contains_key(&e2) {
                            let mut t3 = [a, b, c];
                            t3.sort_unstable();
                            found.insert((t3[0], t3[1], t3[2]));
                        }
                    }
                }
                let mut found: Vec<(u32, u32, u32)> = found.into_iter().collect();
                found.sort_unstable();
                for (i, j, k) in found {
                    if self.triangle_budget == 0 {
                        self.triangles_skipped = true;
                        break;
                    }
                    let (vij, vjk, vik) =
                        (tri.edges[&(i, j)], tri.edges[&(j, k)], tri.edges[&(i, k)]);
                    self.triangle_budget -= 1;
                    self.plan.graph.add_factor(
                        &[vij, vjk, vik],
                        Potential::Scores { group: groups.beta[beta_idx], scores: tables.clone() },
                        u_class,
                    );
                    self.plan.stats.triangles += 1;
                }

                // U5–U7 consistency for pair variables whose mentions
                // both carry linking variables.
                if with_consistency {
                    let (con_class, con_beta) = match fam {
                        0 => (classes::U5, 4usize),
                        1 => (classes::U6, 5),
                        _ => (classes::U7, 6),
                    };
                    for (&(ti, tj), &pair_var) in new_pairs.iter().zip(&new_vars) {
                        let (ma, mb) = match slot {
                            Some(s) => (
                                NpMention { triple: ti, slot: s }.dense(),
                                NpMention { triple: tj, slot: s }.dense(),
                            ),
                            None => (RpMention(ti).dense(), RpMention(tj).dense()),
                        };
                        let (va, vb) = match slot {
                            Some(_) => (self.plan.np_link_vars[ma], self.plan.np_link_vars[mb]),
                            None => (self.plan.rp_link_vars[ma], self.plan.rp_link_vars[mb]),
                        };
                        let (Some(va), Some(vb)) = (va, vb) else { continue };
                        let table = match slot {
                            Some(_) => equality_table(
                                &self.plan.np_candidates[ma],
                                &self.plan.np_candidates[mb],
                            ),
                            None => equality_table(
                                &self.plan.rp_candidates[ma],
                                &self.plan.rp_candidates[mb],
                            ),
                        };
                        let ka = self.plan.graph.cardinality(va) as usize;
                        let kb = self.plan.graph.cardinality(vb) as usize;
                        let mut high = Vec::with_capacity(ka * kb);
                        for &(a, b, same) in &table {
                            let x = usize::from(same);
                            high.push((a + ka * b + ka * kb * x) as u32);
                        }
                        self.plan.graph.add_factor(
                            &[va, vb, pair_var],
                            Potential::two_level(
                                groups.beta[con_beta],
                                ka * kb * 2,
                                high,
                                0.7,
                                0.3,
                            ),
                            con_class,
                        );
                        self.plan.stats.consistency_factors += 1;
                    }
                }

                // Record the pair variables and restore the batch order
                // (sorted by triple pair), which conflict resolution in
                // `decode` is sensitive to.
                let out = match fam {
                    0 => &mut self.plan.subj_pair_vars,
                    1 => &mut self.plan.pred_pair_vars,
                    _ => &mut self.plan.obj_pair_vars,
                };
                out.extend(new_pairs.iter().zip(&new_vars).map(|(&(a, b), &v)| (a, b, v)));
                out.sort_unstable_by_key(|&(a, b, _)| (a, b));
            }
        }

        // ---------------- U4 fact inclusion ------------------------------
        if with_linking {
            for &t in new_ids {
                let sm = NpMention { triple: t, slot: NpSlot::Subject }.dense();
                let om = NpMention { triple: t, slot: NpSlot::Object }.dense();
                let rm = RpMention(t).dense();
                let (Some(sv), Some(rv), Some(ov)) = (
                    self.plan.np_link_vars[sm],
                    self.plan.rp_link_vars[rm],
                    self.plan.np_link_vars[om],
                ) else {
                    continue;
                };
                let cs = &self.plan.np_candidates[sm];
                let cr = &self.plan.rp_candidates[rm];
                let co = &self.plan.np_candidates[om];
                let (ks, kr, ko) = (cs.len(), cr.len(), co.len());
                let mut high = Vec::new();
                for (oi, &o) in co.iter().enumerate() {
                    for (ri, &r) in cr.iter().enumerate() {
                        for (si, &s) in cs.iter().enumerate() {
                            if self.ckb.has_fact(s, r, o) {
                                high.push((si + ks * ri + ks * kr * oi) as u32);
                            }
                        }
                    }
                }
                self.plan.graph.add_factor(
                    &[sv, rv, ov],
                    Potential::two_level(groups.beta[3], ks * kr * ko, high, 0.9, 0.1),
                    classes::U4,
                );
                self.plan.stats.fact_factors += 1;
            }
        }
    }
}
